//! Quickstart: record a trace with the builder API, run the maximal
//! detector, and inspect the witness.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rvpredict::{check_schedule, RaceDetector, ThreadId, TraceBuilder, ViewExt};

fn main() {
    // 1. Record an execution. In a real deployment this comes from an
    //    instrumented run; here we write it down directly. Note the branch
    //    event: t2's second read is *not* control-dependent on its first,
    //    which is exactly what lets the maximal detector prove the race.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let l = b.new_lock("l");

    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);

    b.acquire(t1, l);
    b.write(t1, x, 1);
    b.write(t1, y, 1);
    b.release(t1, l);

    b.acquire(t2, l);
    b.read(t2, y, 1);
    b.release(t2, l);
    b.read(t2, x, 1);

    b.join(t1, t2);
    let trace = b.finish();

    println!("observed trace ({} events):", trace.len());
    for (i, e) in trace.events().iter().enumerate() {
        println!("  {i:>2}  {e}");
    }

    // 2. Detect. Every reported race is *sound*: it ships with a concrete
    //    reordering of the trace that any program producing this trace can
    //    also produce (paper Thm. 1/3).
    let report = RaceDetector::new().detect(&trace);
    println!("\n{report}");
    let view = trace.full_view();
    for race in &report.races {
        println!("  {}", race.display(&trace));
        assert_eq!(check_schedule(&view, &race.schedule), Ok(()));
        println!(
            "  witness validated: {} scheduled events",
            race.schedule.len()
        );
    }
    assert_eq!(
        report.n_races(),
        1,
        "the x accesses race; the y accesses do not"
    );
}
