//! A miniature of the paper's Table 1 over the fast benchmark classes
//! (example + contest + grande). For the full table including the
//! system-class rows, run the harness binary:
//!
//! ```sh
//! cargo run -p rvbench --release --bin table1
//! ```
//!
//! This example keeps to the small rows so it finishes in seconds:
//!
//! ```sh
//! cargo run --release --example eval_mini
//! ```

use rvpredict::{CpDetector, HbDetector, MaximalDetector, RaceDetectorTool, SaidDetector};
use rvsim::workloads;

fn main() {
    let rv = MaximalDetector::default();
    let said = SaidDetector::default();
    let cp = CpDetector::default();
    let hb = HbDetector::default();

    println!(
        "{:<16} {:>6} {:>7} {:>6} {:>6} {:>5}  {:>4} {:>4} {:>4} {:>4}",
        "program", "#Thrd", "#Event", "#RW", "#Sync", "#Br", "RV", "Said", "CP", "HB"
    );
    let (mut t_rv, mut t_said, mut t_cp, mut t_hb) = (0u128, 0u128, 0u128, 0u128);
    for w in workloads::small_suite() {
        let s = w.trace.stats();
        let time = |f: &dyn Fn() -> usize, acc: &mut u128| {
            let t0 = std::time::Instant::now();
            let n = f();
            *acc += t0.elapsed().as_micros();
            n
        };
        let n_rv = time(&|| rv.detect_races(&w.trace).n_races(), &mut t_rv);
        let n_said = time(&|| said.detect_races(&w.trace).n_races(), &mut t_said);
        let n_cp = time(&|| cp.detect_races(&w.trace).n_races(), &mut t_cp);
        let n_hb = time(&|| hb.detect_races(&w.trace).n_races(), &mut t_hb);
        println!(
            "{:<16} {:>6} {:>7} {:>6} {:>6} {:>5}  {:>4} {:>4} {:>4} {:>4}",
            w.name,
            s.threads,
            s.events,
            s.reads_writes,
            s.syncs,
            s.branches,
            n_rv,
            n_said,
            n_cp,
            n_hb
        );
        assert!(
            n_rv >= n_said && n_rv >= n_cp && n_rv >= n_hb,
            "{}: maximality",
            w.name
        );
    }
    println!(
        "\ntotal detection time: RV {:.1}ms, Said {:.1}ms, CP {:.1}ms, HB {:.1}ms",
        t_rv as f64 / 1000.0,
        t_said as f64 / 1000.0,
        t_cp as f64 / 1000.0,
        t_hb as f64 / 1000.0
    );
}
