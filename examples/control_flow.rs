//! The paper's Figure 2: two programs with *identical* read/write traces
//! that differ only in control flow. Without branch events no sound
//! technique can report the case-① race; with them, the maximal detector
//! separates the cases.
//!
//! ```sh
//! cargo run --example control_flow
//! ```

use rvpredict::{CpDetector, HbDetector, MaximalDetector, RaceDetectorTool, SaidDetector};
use rvsim::workloads::figures;

fn main() {
    let read = figures::figure2_read(); // ① r1 = y
    let looped = figures::figure2_loop(); // ② while (y == 0);

    println!("case ① trace (r1 = y):");
    for e in read.trace.events() {
        println!("   {e}");
    }
    println!("case ② trace (while (y == 0);):");
    for e in looped.trace.events() {
        println!("   {e}");
    }
    println!(
        "\nThe read/write projections are identical; case ② has one extra\n\
         branch event recording that the next operation was control-dependent\n\
         on the read of y.\n"
    );

    let tools: Vec<Box<dyn RaceDetectorTool>> = vec![
        Box::new(MaximalDetector::default()),
        Box::new(SaidDetector::default()),
        Box::new(CpDetector::default()),
        Box::new(HbDetector::default()),
    ];
    println!("{:<6} {:>8} {:>8}", "tool", "case ①", "case ②");
    for tool in &tools {
        println!(
            "{:<6} {:>8} {:>8}",
            tool.name(),
            tool.detect_races(&read.trace).n_races(),
            tool.detect_races(&looped.trace).n_races(),
        );
    }
    println!(
        "\n(1,4) is a real race in case ① — x is read regardless of what y\n\
         holds — and only the maximal technique reports it. In case ② the\n\
         loop pins the read of y to 1, and nobody reports it: dropping the\n\
         branch there would be unsound."
    );
}
