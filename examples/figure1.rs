//! The paper's Figure 1 end-to-end: run the program in the mini language,
//! collect the Figure 4 trace, show the Figure 5 constraint groups, and
//! compare all four detectors.
//!
//! ```sh
//! cargo run --example figure1
//! ```

use rvpredict::{
    encode, Cop, CpDetector, EncoderOptions, HbDetector, MaximalDetector, RaceDetectorTool,
    SaidDetector, ViewExt,
};
use rvsim::workloads::figures;

fn main() {
    // The Figure 1 program, executed in the paper's observed order
    // (the Figure 4 trace).
    let w = figures::figure1();
    println!("Figure 4 trace:");
    for (i, e) in w.trace.events().iter().enumerate() {
        println!("  {i:>2}  {e}");
    }

    // Figure 5: the constraint system for COP (3, 10).
    let view = w.trace.full_view();
    let name_of = |e: rvpredict::EventId| {
        view.event(e)
            .kind
            .var()
            .and_then(|v| w.trace.var_name(v))
            .unwrap_or("")
            .to_string()
    };
    let write_x = view
        .ids()
        .find(|&e| view.event(e).kind.is_write() && name_of(e) == "x")
        .expect("write of x");
    let read_x = view
        .ids()
        .find(|&e| view.event(e).kind.is_read() && name_of(e) == "x")
        .expect("read of x");
    let enc = encode(&view, Cop::new(write_x, read_x), EncoderOptions::default());
    println!("\nFigure 5 constraint system for ({write_x}, {read_x}):");
    println!("  {}", enc.describe());

    // Table-1-style comparison row.
    println!("\ndetector comparison (races by signature):");
    let tools: Vec<Box<dyn RaceDetectorTool>> = vec![
        Box::new(MaximalDetector::default()),
        Box::new(SaidDetector::default()),
        Box::new(CpDetector::default()),
        Box::new(HbDetector::default()),
    ];
    for tool in &tools {
        let r = tool.detect_races(&w.trace);
        println!("  {:<5} {} race(s)", tool.name(), r.n_races());
    }
    println!(
        "\nOnly the maximal technique proves (3,10): CP is blocked by the y-conflict\n\
         between the lock regions, HB by the release→acquire edge, and Said by\n\
         requiring line 8 to read y = 1."
    );
}
