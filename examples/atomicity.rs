//! Beyond races: predictive atomicity-violation (lost update) detection on
//! the same maximal causal model — the extension the paper names in §2.5
//! ("the same maximal causal model approach can be used to define other
//! notions").
//!
//! ```sh
//! cargo run --release --example atomicity
//! ```

use rvcore::AtomicityDetector;
use rvpredict::{RaceDetector, ThreadId, TraceBuilder};

fn main() {
    // Two threads increment a counter with unprotected read-modify-write
    // sequences. In the *observed* schedule the increments do not overlap,
    // so nothing went wrong — but the detector predicts both the races and
    // the lost update from this single benign run.
    let mut b = TraceBuilder::new();
    let counter = b.var("counter");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    // t1's increment (observed first, completes atomically by luck):
    b.read(t1, counter, 0);
    b.write(t1, counter, 1);
    // t2's increment:
    b.read(t2, counter, 1);
    b.write(t2, counter, 2);
    b.join(t1, t2);
    let trace = b.finish();

    println!("observed (benign) trace:");
    for (i, e) in trace.events().iter().enumerate() {
        println!("  {i:>2}  {e}");
    }

    let races = RaceDetector::new().detect(&trace);
    println!("\nraces: {races}");

    let report = AtomicityDetector::default().detect(&trace);
    println!(
        "atomicity: {} violation(s) from {} candidate interleavings (sat={}, unsat={})",
        report.violations.len(),
        report.candidates,
        report.sat,
        report.unsat
    );
    for v in &report.violations {
        println!(
            "  lost update: {} serialized between {} and {} — witness {}",
            trace.event(v.interleaved),
            trace.event(v.pair.first),
            trace.event(v.pair.second),
            v.schedule
        );
    }
    assert!(!report.violations.is_empty());
    println!(
        "\nThe witness schedule interleaves the remote access inside the\n\
         read-modify-write — the classic lost update, predicted from a run\n\
         in which it never happened."
    );
}
