//! Record a trace from a real multithreaded Rust program (OS threads, real
//! mutex contention) and run the maximal detector on it — the end-to-end
//! workflow an adopter would use.
//!
//! ```sh
//! cargo run --release --example instrumented
//! ```

use rvinstrument::{guard, spawn, Session, TracedMutex, TracedVar};
use rvpredict::RaceDetector;

fn main() {
    let mut session = Session::begin();

    // A tiny "server": a shared request counter protected by a lock, a
    // shutdown flag read without one (the bug), and a stats cell.
    let requests = TracedVar::new("requests", 0);
    let shutdown = TracedVar::new("shutdown", 0);
    let stats = TracedVar::new("stats", 0);
    let l = TracedMutex::new("state");

    let workers: Vec<_> = (0..3)
        .map(|_| {
            let requests = requests.clone();
            let shutdown = shutdown.clone();
            let l = l.clone();
            spawn(move || {
                for _ in 0..3 {
                    // BUG: the shutdown check is unprotected.
                    if guard(shutdown.load() != 0) {
                        return;
                    }
                    let _g = l.lock();
                    requests.fetch_add(1);
                }
            })
        })
        .collect();

    // Main flips the flag without the lock and pokes stats.
    stats.store(1);
    shutdown.store(1);
    for w in workers {
        w.join();
    }
    let served = {
        let _g = l.lock();
        requests.load()
    };

    let trace = session.finish();
    println!(
        "recorded {} events from 4 real threads; {} requests served",
        trace.len(),
        served
    );

    let report = RaceDetector::new().detect(&trace);
    println!("{report}");
    for race in &report.races {
        println!("  {}", race.display(&trace));
    }
    assert!(
        report.n_races() >= 1,
        "the unprotected shutdown flag must race with its writer"
    );
    println!("\nevery signature above carries real file:line locations from #[track_caller]");
}
