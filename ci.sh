#!/usr/bin/env sh
# Offline CI gate: everything here must pass with no network access.
#
#   ./ci.sh          # full gate
#   ./ci.sh quick    # skip the release build (debug tests + fmt only)
set -eu

say() { printf '\n== %s ==\n' "$1"; }

if [ "${1:-}" != "quick" ]; then
    say "release build"
    cargo build --release --workspace
fi

say "tests (workspace)"
cargo test --workspace -q

say "parallel equivalence (serial vs threaded driver)"
cargo test -q --test parallel_equivalence

say "robustness + fault injection (hardened: debug assertions + overflow checks)"
RUSTFLAGS="-C debug-assertions -C overflow-checks" \
    cargo test -q --test robustness --test parallel_equivalence

say "ignored tests"
cargo test --workspace -q -- --ignored

say "benches compile"
cargo build --benches -p rvbench

say "formatting"
cargo fmt --all --check

say "ci.sh: all green"
