//! The Said et al. baseline [30]: SMT-based predictive race detection with
//! whole-trace read-write consistency and no control-flow abstraction.
//!
//! This shares all of `rvcore`'s machinery — the only difference is the
//! [`ConsistencyMode::WholeTrace`] encoder mode, which (i) ignores branch
//! events and (ii) requires *every* read in the window to return its
//! original value. Sound, explores more reorderings than CP/HB, but
//! non-maximal: it cannot use feasible *incomplete* traces (paper §1's
//! discussion of Figure 2 case ① and Figure 1's (3,10)).

use std::time::Instant;

use rvcore::{ConsistencyMode, DetectorConfig, RaceDetector};
use rvtrace::Trace;

use crate::common::{RaceDetectorTool, ToolReport};

/// The Said et al. detector.
#[derive(Debug, Clone)]
pub struct SaidDetector {
    /// The underlying detector configuration (mode forced to whole-trace).
    pub config: DetectorConfig,
}

impl Default for SaidDetector {
    fn default() -> Self {
        // Whole-trace consistency is by far the heaviest encoding; on
        // derby-class traces it hits any budget (the paper reports Said
        // timing out after an hour there). The default trims the paper's
        // 60-second per-COP budget to 5 seconds to keep harness runs sane;
        // raise `config.solver_timeout` for paper-faithful patience.
        let config = DetectorConfig {
            solver_timeout: std::time::Duration::from_secs(5),
            ..DetectorConfig::said_baseline()
        };
        SaidDetector { config }
    }
}

impl SaidDetector {
    /// Creates the baseline with a custom window size.
    pub fn with_window(window_size: usize) -> Self {
        let config = DetectorConfig {
            window_size,
            ..DetectorConfig::said_baseline()
        };
        SaidDetector { config }
    }
}

impl RaceDetectorTool for SaidDetector {
    fn name(&self) -> &'static str {
        "Said"
    }

    fn detect_races(&self, trace: &Trace) -> ToolReport {
        let start = Instant::now();
        let mut config = self.config.clone();
        config.mode = ConsistencyMode::WholeTrace;
        let report = RaceDetector::with_config(config).detect(trace);
        ToolReport {
            signatures: report.signatures().into_iter().collect(),
            time: start.elapsed(),
            pairs_checked: report.stats.pairs_considered,
        }
    }
}

/// The paper's own technique under the same uniform interface, for the
/// Table 1 harness.
#[derive(Debug, Clone, Default)]
pub struct MaximalDetector {
    /// The underlying configuration.
    pub config: DetectorConfig,
}

impl MaximalDetector {
    /// Creates the detector with a custom window size.
    pub fn with_window(window_size: usize) -> Self {
        MaximalDetector {
            config: DetectorConfig {
                window_size,
                ..Default::default()
            },
        }
    }
}

impl RaceDetectorTool for MaximalDetector {
    fn name(&self) -> &'static str {
        "RV"
    }

    fn detect_races(&self, trace: &Trace) -> ToolReport {
        let start = Instant::now();
        let report = RaceDetector::with_config(self.config.clone()).detect(trace);
        ToolReport {
            signatures: report.signatures().into_iter().collect(),
            time: start.elapsed(),
            pairs_checked: report.stats.pairs_considered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{ThreadId, TraceBuilder};

    fn figure2_case_read() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1);
        b.read(t2, x, 1);
        b.finish()
    }

    #[test]
    fn said_misses_figure2_case_read() {
        let tr = figure2_case_read();
        let said = SaidDetector::default().detect_races(&tr);
        let rv = MaximalDetector::default().detect_races(&tr);
        assert_eq!(
            said.n_races(),
            0,
            "Said requires read(y)=1, blocking the reorder"
        );
        assert_eq!(rv.n_races(), 1, "the maximal technique finds (1,4)");
    }

    #[test]
    fn said_finds_plain_races() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t2 = b.fork(ThreadId::MAIN);
        b.write(ThreadId::MAIN, x, 1);
        b.write(t2, x, 2);
        let report = SaidDetector::default().detect_races(&b.finish());
        assert_eq!(report.n_races(), 1);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SaidDetector::default().name(), "Said");
        assert_eq!(MaximalDetector::default().name(), "RV");
    }
}
