//! The Happens-Before baseline detector (Lamport [22], as compared in
//! paper §5).
//!
//! A conflicting pair is an HB-race iff it is unordered by the
//! happens-before relation, which — unlike the paper's MHB — includes an
//! unconditional edge from every lock release to every subsequent acquire of
//! the same lock (plus volatile and wait/notify synchronization). Those
//! extra edges are exactly the "overly conservative" orderings the maximal
//! technique relaxes.

use std::time::Instant;

use rvtrace::{Trace, ViewExt};

use crate::common::{hb_clocks, hb_ordered, scan_conflicting_pairs, RaceDetectorTool, ToolReport};

/// The HB detector, windowed like all techniques in the paper's evaluation.
#[derive(Debug, Clone)]
pub struct HbDetector {
    /// Window size in events (paper §5: 10K for every technique).
    pub window_size: usize,
    /// Per-signature bound on pair checks.
    pub cap_per_signature: usize,
}

impl Default for HbDetector {
    fn default() -> Self {
        HbDetector {
            window_size: 10_000,
            cap_per_signature: 10,
        }
    }
}

impl RaceDetectorTool for HbDetector {
    fn name(&self) -> &'static str {
        "HB"
    }

    fn detect_races(&self, trace: &Trace) -> ToolReport {
        let start = Instant::now();
        let mut report = ToolReport::default();
        for view in trace.windows(self.window_size) {
            let clocks = hb_clocks(&view);
            let (racy, checked) = scan_conflicting_pairs(&view, self.cap_per_signature, |a, b| {
                !hb_ordered(&view, &clocks, a, b) && !hb_ordered(&view, &clocks, b, a)
            });
            report.signatures.extend(racy);
            report.pairs_checked += checked;
        }
        report.time = start.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{ThreadId, TraceBuilder};

    #[test]
    fn unprotected_race_found() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t2 = b.fork(ThreadId::MAIN);
        b.write(ThreadId::MAIN, x, 1);
        b.write(t2, x, 2);
        let report = HbDetector::default().detect_races(&b.finish());
        assert_eq!(report.n_races(), 1);
    }

    #[test]
    fn lock_edge_suppresses_figure1_race() {
        // Paper Figure 1: HB misses (3,10) because of the release→acquire
        // edge between the two critical sections.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, y, 1);
        b.release(t2, l);
        b.read(t2, x, 1);
        b.branch(t2);
        b.write(t2, z, 1);
        b.join(t1, t2);
        b.read(t1, z, 1);
        b.branch(t1);
        let report = HbDetector::default().detect_races(&b.finish());
        assert_eq!(report.n_races(), 0, "HB finds no race in Figure 1");
    }

    #[test]
    fn fork_join_ordering_respected() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        b.write(t1, x, 1);
        let t2 = b.fork(t1);
        b.write(t2, x, 2);
        b.join(t1, t2);
        b.write(t1, x, 3);
        let report = HbDetector::default().detect_races(&b.finish());
        assert_eq!(report.n_races(), 0);
    }

    #[test]
    fn volatile_sync_suppresses() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1);
        b.read(t2, x, 1);
        let report = HbDetector::default().detect_races(&b.finish());
        assert_eq!(
            report.n_races(),
            0,
            "HB conservatively orders via the volatile"
        );
    }
}
