//! Shared infrastructure for the baseline detectors: Lamport happens-before
//! clocks, conflicting-pair scanning, and the common tool interface.

use std::collections::BTreeSet;
use std::time::Duration;

use rvtrace::{EventId, EventKind, RaceSignature, Trace, VarId, VectorClock, View};

/// A uniform interface over all four detectors, for the evaluation harness
/// (paper Table 1 compares RV, Said, CP and HB on identical traces).
pub trait RaceDetectorTool {
    /// Short name for report tables ("RV", "Said", "CP", "HB").
    fn name(&self) -> &'static str;

    /// Runs the detector over the whole trace.
    fn detect_races(&self, trace: &Trace) -> ToolReport;
}

/// Result of one detector run.
#[derive(Debug, Clone, Default)]
pub struct ToolReport {
    /// Distinct race signatures found (Table 1 counts races per location
    /// pair).
    pub signatures: BTreeSet<RaceSignature>,
    /// Wall-clock detection time.
    pub time: Duration,
    /// Conflicting pairs examined (diagnostic).
    pub pairs_checked: usize,
}

impl ToolReport {
    /// Number of races (distinct signatures).
    pub fn n_races(&self) -> usize {
        self.signatures.len()
    }
}

/// Happens-before vector clocks for every event of a view.
///
/// Edges: program order, fork→begin, end→join, lock release→subsequent
/// acquire (same lock), volatile write→subsequent volatile read, and
/// notify→its wait's re-acquire. This is Lamport HB as used by the paper's
/// HB baseline [22].
pub fn hb_clocks(view: &View<'_>) -> Vec<VectorClock> {
    clocks_with_edges(view, true)
}

/// Like [`hb_clocks`] but *without* the unconditional lock
/// release→acquire edges — the "hard" synchronization base the CP detector
/// composes its conditional edges with.
pub fn hard_sync_clocks(view: &View<'_>) -> Vec<VectorClock> {
    clocks_with_edges(view, false)
}

fn clocks_with_edges(view: &View<'_>, include_lock_edges: bool) -> Vec<VectorClock> {
    let trace = view.trace();
    let n_threads = trace.n_threads();
    let mut clocks = Vec::with_capacity(view.len());
    let mut cur: Vec<VectorClock> = vec![VectorClock::new(n_threads); n_threads];
    let mut fork_clock: Vec<Option<VectorClock>> = vec![None; n_threads];
    let mut end_clock: Vec<Option<VectorClock>> = vec![None; n_threads];
    let mut release_clock: Vec<Option<VectorClock>> = vec![None; trace.n_locks()];
    let mut volatile_clock: Vec<Option<VectorClock>> = vec![None; trace.n_vars()];
    let mut notify_clock: std::collections::HashMap<EventId, VectorClock> =
        std::collections::HashMap::new();

    for id in view.ids() {
        let e = view.event(id);
        let ti = trace.thread_index(e.thread).expect("indexed");
        match e.kind {
            EventKind::Begin => {
                if let Some(fc) = fork_clock[ti].take() {
                    cur[ti].join(&fc);
                }
            }
            EventKind::Join { child } => {
                if let Some(ci) = trace.thread_index(child) {
                    if let Some(ec) = &end_clock[ci] {
                        let ec = ec.clone();
                        cur[ti].join(&ec);
                    }
                }
            }
            EventKind::Acquire { lock } => {
                if include_lock_edges {
                    if let Some(rc) = &release_clock[lock.index()] {
                        let rc = rc.clone();
                        cur[ti].join(&rc);
                    }
                }
                // A wait re-acquire also synchronizes with its notify.
                if let Some(wl) = trace.wait_link_of_acquire(id) {
                    if let Some(n) = wl.notify {
                        if let Some(nc) = notify_clock.get(&n) {
                            let nc = nc.clone();
                            cur[ti].join(&nc);
                        }
                    }
                }
            }
            EventKind::Read { var, .. } if trace.is_volatile(var) => {
                if let Some(vc) = &volatile_clock[var.index()] {
                    let vc = vc.clone();
                    cur[ti].join(&vc);
                }
            }
            _ => {}
        }
        cur[ti].tick(ti);
        clocks.push(cur[ti].clone());
        match e.kind {
            EventKind::Fork { child } => {
                if let Some(ci) = trace.thread_index(child) {
                    fork_clock[ci] = Some(cur[ti].clone());
                }
            }
            EventKind::End => end_clock[ti] = Some(cur[ti].clone()),
            EventKind::Release { lock } => {
                release_clock[lock.index()] = Some(cur[ti].clone());
            }
            EventKind::Write { var, .. } if trace.is_volatile(var) => {
                volatile_clock[var.index()] = Some(cur[ti].clone());
            }
            EventKind::Notify { .. } => {
                notify_clock.insert(id, cur[ti].clone());
            }
            _ => {}
        }
    }
    clocks
}

/// Whether `a` happens-before `b` under the given per-offset clocks.
pub fn hb_ordered(view: &View<'_>, clocks: &[VectorClock], a: EventId, b: EventId) -> bool {
    if a == b {
        return false;
    }
    let start = view.range().start;
    let ta = view
        .trace()
        .thread_index(view.event(a).thread)
        .expect("indexed");
    clocks[b.index() - start].get(ta) as usize > view.vpos(a)
}

/// Scans all conflicting pairs of a view (different threads, same variable,
/// at least one write, volatiles excluded) and collects the signatures for
/// which `is_race` holds on some pair. Once a signature is racy, its other
/// pairs are skipped; non-racy signatures are bounded by `cap` checks.
pub fn scan_conflicting_pairs(
    view: &View<'_>,
    cap: usize,
    mut is_race: impl FnMut(EventId, EventId) -> bool,
) -> (BTreeSet<RaceSignature>, usize) {
    let trace = view.trace();
    let mut racy: BTreeSet<RaceSignature> = BTreeSet::new();
    let mut tried: std::collections::HashMap<RaceSignature, usize> =
        std::collections::HashMap::new();
    let mut checked = 0usize;
    for var_idx in 0..trace.n_vars() as u32 {
        let var = VarId(var_idx);
        if trace.is_volatile(var) {
            continue;
        }
        let writes = view.writes_of(var);
        let reads = view.reads_of(var);
        let mut consider = |a: EventId, b: EventId, checked: &mut usize| {
            if view.event(a).thread == view.event(b).thread {
                return;
            }
            let sig = RaceSignature::of_cop(trace, rvtrace::Cop::new(a, b));
            if racy.contains(&sig) {
                return;
            }
            let tries = tried.entry(sig).or_insert(0);
            if *tries >= cap {
                return;
            }
            *tries += 1;
            *checked += 1;
            let (first, second) = if a <= b { (a, b) } else { (b, a) };
            if is_race(first, second) {
                racy.insert(sig);
            }
        };
        for (i, &w1) in writes.iter().enumerate() {
            for &w2 in &writes[i + 1..] {
                consider(w1, w2, &mut checked);
            }
            for &r in reads {
                if r != w1 {
                    consider(w1, r, &mut checked);
                }
            }
        }
    }
    (racy, checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{ThreadId, TraceBuilder, ViewExt};

    #[test]
    fn hb_lock_edge_orders_regions() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let w = b.write(t1, x, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        let r = b.read(t2, x, 1);
        b.release(t2, l);
        let tr = b.finish();
        let v = tr.full_view();
        let clocks = hb_clocks(&v);
        assert!(
            hb_ordered(&v, &clocks, w, r),
            "release→acquire orders the accesses"
        );
        assert!(!hb_ordered(&v, &clocks, r, w));
        // MHB alone does NOT order them (the paper's relaxation target).
        assert!(!v.mhb(w, r));
    }

    #[test]
    fn hb_volatile_edge() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let w = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1);
        let r = b.read(t2, x, 1);
        let tr = b.finish();
        let v = tr.full_view();
        let clocks = hb_clocks(&v);
        // volatile write→read edge orders the x accesses under HB.
        assert!(hb_ordered(&v, &clocks, w, r));
    }

    #[test]
    fn hb_notify_edge() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let tok = b.wait_begin(t1, l);
        b.acquire(t2, l);
        let w = b.write(t2, x, 1);
        let n = b.notify(t2, l);
        b.release(t2, l);
        b.wait_end(tok, Some(n));
        let r = b.read(t1, x, 1);
        b.release(t1, l);
        let tr = b.finish();
        let v = tr.full_view();
        let clocks = hb_clocks(&v);
        assert!(hb_ordered(&v, &clocks, w, r));
    }

    #[test]
    fn scan_caps_and_dedups() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let lw = b.loc("w");
        let lr = b.loc("r");
        for i in 0..5 {
            b.write_at(t1, x, i, lw);
        }
        for _ in 0..5 {
            b.read_at(t2, x, 4, lr);
        }
        let tr = b.finish();
        let v = tr.full_view();
        // Racy on the first try: only 1 check happens.
        let (racy, checked) = scan_conflicting_pairs(&v, 100, |_, _| true);
        assert_eq!(racy.len(), 1);
        assert_eq!(checked, 1);
        // Never racy: bounded by the cap.
        let (racy, checked) = scan_conflicting_pairs(&v, 7, |_, _| false);
        assert!(racy.is_empty());
        assert_eq!(checked, 7);
    }
}
