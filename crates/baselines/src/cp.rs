//! The Causally-Precedes baseline detector (Smaragdakis et al., POPL 2012;
//! the paper's CP comparison [35]).
//!
//! CP soundly *relaxes* HB: the unconditional release→acquire edge between
//! two critical sections on the same lock is kept only when
//!
//! * **(a)** the two sections contain conflicting accesses, or
//! * **(b)** they contain CP-ordered events,
//!
//! and the relation is closed under composition with HB on both sides
//! (**(c)**). Hard synchronization (program order, fork/join, volatiles,
//! wait/notify) stays unconditional. Operationally: `e₁ CP e₂` iff they are
//! ordered by hard synchronization alone, or there is an HB-path from `e₁`
//! to `e₂` traversing at least one conditional release→acquire edge from
//! the least fixpoint of rules (a)/(b).
//!
//! A conflicting pair is a CP-race iff it is unordered by CP in both
//! directions. `CP ⊆ HB`, so every HB-race is a CP-race; the converse fails
//! exactly on lock regions without conflicts — e.g. the paper's Figure 1,
//! where CP still orders (3,10) because the regions conflict on `y`.

use std::collections::HashMap;
use std::time::Instant;

use rvtrace::{EventId, Trace, VarId, VectorClock, View, ViewExt};

use crate::common::{
    hard_sync_clocks, hb_clocks, hb_ordered, scan_conflicting_pairs, RaceDetectorTool, ToolReport,
};

/// The CP detector.
#[derive(Debug, Clone)]
pub struct CpDetector {
    /// Window size in events (paper §5: 10K for every technique).
    pub window_size: usize,
    /// Per-signature bound on pair checks.
    pub cap_per_signature: usize,
}

impl Default for CpDetector {
    fn default() -> Self {
        CpDetector {
            window_size: 10_000,
            cap_per_signature: 10,
        }
    }
}

/// A closed critical section within a window, with an access summary.
#[derive(Debug)]
struct Span {
    acquire: EventId,
    release: EventId,
    /// `var → (has_read, has_write)`.
    accesses: HashMap<VarId, (bool, bool)>,
}

fn conflicting(a: &Span, b: &Span) -> bool {
    let (small, big) = if a.accesses.len() <= b.accesses.len() {
        (a, b)
    } else {
        (b, a)
    };
    small.accesses.iter().any(|(var, &(r1, w1))| {
        big.accesses
            .get(var)
            .map(|&(r2, w2)| (w1 && (r2 || w2)) || (w2 && (r1 || w1)))
            .unwrap_or(false)
    })
}

/// Dense bitset rows for edge-reachability.
#[derive(Debug, Clone)]
struct BitMatrix {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        BitMatrix {
            n,
            words,
            rows: vec![0; n * words],
        }
    }
    fn set(&mut self, i: usize, j: usize) {
        self.rows[i * self.words + j / 64] |= 1 << (j % 64);
    }
    fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i * self.words + j / 64] & (1 << (j % 64)) != 0
    }
    fn or_row(&mut self, dst: usize, src: usize) {
        let (d, s) = (dst * self.words, src * self.words);
        for k in 0..self.words {
            let v = self.rows[s + k];
            self.rows[d + k] |= v;
        }
    }
    /// Floyd–Warshall-style closure specialized to boolean reachability.
    fn close(&mut self) {
        for k in 0..self.n {
            for i in 0..self.n {
                if self.get(i, k) {
                    self.or_row(i, k);
                }
            }
        }
    }
    fn row_intersects(&self, i: usize, other: &[u64]) -> bool {
        let base = i * self.words;
        (0..self.words).any(|k| self.rows[base + k] & other[k] != 0)
    }
}

struct CpIndex<'v, 't> {
    view: &'v View<'t>,
    full_hb: Vec<VectorClock>,
    hard: Vec<VectorClock>,
    spans: Vec<Span>,
    /// Conditional edges as (source span, target span) — `release(src)` HB
    /// `acquire(dst)`.
    edges: Vec<(usize, usize)>,
    /// Edge chain reachability (reflexive).
    reach: BitMatrix,
}

impl<'v, 't> CpIndex<'v, 't> {
    fn build(view: &'v View<'t>) -> Self {
        let full_hb = hb_clocks(view);
        let hard = hard_sync_clocks(view);
        // Collect closed spans with their access summaries.
        let mut spans: Vec<Span> = Vec::new();
        let mut spans_by_lock: HashMap<rvtrace::LockId, Vec<usize>> = HashMap::new();
        for lock_idx in 0..view.trace().n_locks() as u32 {
            let lock = rvtrace::LockId(lock_idx);
            for cs in view.critical_sections(lock) {
                let thread_evs = view.thread_events(cs.thread);
                if thread_evs.is_empty() {
                    continue;
                }
                // Boundary-crossing regions (acquire before the window or
                // release after it) participate with in-window proxies:
                // dropping them would lose rule-(a) edges and make CP
                // over-report at window boundaries.
                let acq = cs.acquire.unwrap_or(thread_evs[0]);
                let rel = cs.release.unwrap_or(*thread_evs.last().expect("nonempty"));
                let mut accesses: HashMap<VarId, (bool, bool)> = HashMap::new();
                for &e in &thread_evs[view.vpos(acq)..=view.vpos(rel)] {
                    if let Some(var) = view.event(e).kind.var() {
                        let entry = accesses.entry(var).or_insert((false, false));
                        if view.event(e).kind.is_read() {
                            entry.0 = true;
                        } else {
                            entry.1 = true;
                        }
                    }
                }
                spans_by_lock.entry(lock).or_default().push(spans.len());
                spans.push(Span {
                    acquire: acq,
                    release: rel,
                    accesses,
                });
            }
        }

        let hb = |clocks: &[VectorClock], a: EventId, b: EventId| hb_ordered(view, clocks, a, b);

        // Rule (a) seeds.
        let mut edge_set: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        for ids in spans_by_lock.values() {
            for (ii, &i) in ids.iter().enumerate() {
                for &j in &ids[ii + 1..] {
                    // Spans on one lock are serialized; trace order = id order.
                    let (first, second) = if spans[i].acquire < spans[j].acquire {
                        (i, j)
                    } else {
                        (j, i)
                    };
                    if view.event(spans[first].acquire).thread
                        == view.event(spans[second].acquire).thread
                    {
                        continue;
                    }
                    if conflicting(&spans[first], &spans[second]) {
                        edge_set.insert((first, second));
                    }
                }
            }
        }

        // Rule (b) fixpoint.
        let mut edges: Vec<(usize, usize)> = edge_set.iter().copied().collect();
        let mut reach;
        loop {
            edges.sort_unstable();
            // Chain graph over edges: e → f when acquire(dst(e)) HB release(src(f)).
            let m = edges.len();
            reach = BitMatrix::new(m);
            for (ei, &(_, j)) in edges.iter().enumerate() {
                reach.set(ei, ei);
                for (fi, &(k, _)) in edges.iter().enumerate() {
                    if ei != fi {
                        let a_j = spans[j].acquire;
                        let r_k = spans[k].release;
                        if hb(&full_hb, a_j, r_k) || a_j == r_k {
                            reach.set(ei, fi);
                        }
                    }
                }
            }
            reach.close();
            // Try to derive new edges via rule (b).
            let mut changed = false;
            for ids in spans_by_lock.values() {
                for (pi, &p) in ids.iter().enumerate() {
                    for &q in &ids[pi + 1..] {
                        let (p, q) = if spans[p].acquire < spans[q].acquire {
                            (p, q)
                        } else {
                            (q, p)
                        };
                        if edge_set.contains(&(p, q)) {
                            continue;
                        }
                        if view.event(spans[p].acquire).thread
                            == view.event(spans[q].acquire).thread
                        {
                            continue;
                        }
                        // ∃ e, f: reach(e, f), acq_p HB rel(src(e)),
                        // acq(dst(f)) HB rel_q.
                        let mut target = vec![0u64; reach.words.max(1)];
                        let mut any_target = false;
                        for (fi, &(_, l)) in edges.iter().enumerate() {
                            if hb(&full_hb, spans[l].acquire, spans[q].release)
                                || spans[l].acquire == spans[q].release
                            {
                                target[fi / 64] |= 1 << (fi % 64);
                                any_target = true;
                            }
                        }
                        if !any_target {
                            continue;
                        }
                        let found = edges.iter().enumerate().any(|(ei, &(i, _))| {
                            (hb(&full_hb, spans[p].acquire, spans[i].release)
                                || spans[p].acquire == spans[i].release)
                                && reach.row_intersects(ei, &target)
                        });
                        if found {
                            edge_set.insert((p, q));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            edges = edge_set.iter().copied().collect();
        }

        CpIndex {
            view,
            full_hb,
            hard,
            spans,
            edges,
            reach,
        }
    }

    /// `a CP b` (directional).
    fn cp_ordered(&self, a: EventId, b: EventId) -> bool {
        if hb_ordered(self.view, &self.hard, a, b) {
            return true;
        }
        if !hb_ordered(self.view, &self.full_hb, a, b) {
            return false; // CP ⊆ HB
        }
        // HB-path with ≥1 conditional edge: a HB rel(src(e)), reach(e,f),
        // acq(dst(f)) HB b.
        let words = self.reach.words.max(1);
        let mut target = vec![0u64; words];
        let mut any = false;
        for (fi, &(_, l)) in self.edges.iter().enumerate() {
            let acq = self.spans[l].acquire;
            if acq == b || hb_ordered(self.view, &self.full_hb, acq, b) {
                target[fi / 64] |= 1 << (fi % 64);
                any = true;
            }
        }
        if !any {
            return false;
        }
        self.edges.iter().enumerate().any(|(ei, &(i, _))| {
            let rel = self.spans[i].release;
            (a == rel || hb_ordered(self.view, &self.full_hb, a, rel))
                && self.reach.row_intersects(ei, &target)
        })
    }
}

impl RaceDetectorTool for CpDetector {
    fn name(&self) -> &'static str {
        "CP"
    }

    fn detect_races(&self, trace: &Trace) -> ToolReport {
        let start = Instant::now();
        let mut report = ToolReport::default();
        for view in trace.windows(self.window_size) {
            let index = CpIndex::build(&view);
            let (racy, checked) = scan_conflicting_pairs(&view, self.cap_per_signature, |a, b| {
                !index.cp_ordered(a, b) && !index.cp_ordered(b, a)
            });
            report.signatures.extend(racy);
            report.pairs_checked += checked;
        }
        report.time = start.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{ThreadId, TraceBuilder};

    /// Paper Figure 1: the two critical sections conflict on y, so rule (a)
    /// orders them and CP misses (3,10) — exactly the paper's point.
    #[test]
    fn figure1_cp_misses_the_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, y, 1);
        b.release(t2, l);
        b.read(t2, x, 1);
        b.branch(t2);
        b.write(t2, z, 1);
        b.join(t1, t2);
        b.read(t1, z, 1);
        b.branch(t1);
        let report = CpDetector::default().detect_races(&b.finish());
        assert_eq!(report.n_races(), 0, "CP misses (3,10) per the paper");
    }

    /// The canonical CP-beats-HB shape: the racy access sits *inside* the
    /// first critical section and *after* the second, and the two regions
    /// do not conflict, so CP drops the lock edge HB relies on.
    #[test]
    fn cp_beats_hb_on_nonconflicting_regions() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let a = b.write(t1, x, 1); // racy half A, inside CS1 = {x}
        b.release(t1, l);
        b.acquire(t2, l);
        b.write(t2, z, 1); // CS2 = {z}: no conflict with CS1
        b.release(t2, l);
        let bb = b.read(t2, x, 1); // racy half B, after CS2
        let tr = b.finish();
        let cp = CpDetector::default().detect_races(&tr);
        let hb = crate::hb::HbDetector::default().detect_races(&tr);
        assert_eq!(
            cp.n_races(),
            1,
            "CP sees through the unrelated lock regions"
        );
        assert_eq!(hb.n_races(), 0, "HB is blocked by the release→acquire edge");
        let v = tr.full_view();
        let index = CpIndex::build(&v);
        assert!(
            index.edges.is_empty(),
            "no rule-(a) edge between {{x}} and {{z}} regions"
        );
        assert!(!index.cp_ordered(a, bb) && !index.cp_ordered(bb, a));
    }

    /// Conflicting regions chain through rule (b)/(c).
    #[test]
    fn cp_rule_b_chains() {
        // CS_A(l1) and CS_B(l1) conflict on y → rel_A CP acq_B.
        // CS_A2(l2) encloses... simpler: A(l1){y}, B(l1){y} conflict;
        // C(l2){z} before B's acquire in t2; D(l2){z} in t3 conflicts with C.
        // Then events in A CP events in B (rule a), and C/D conflict (rule a).
        let mut b = TraceBuilder::new();
        let y = b.var("y");
        let z = b.var("z");
        let l1 = b.new_lock("l1");
        let l2 = b.new_lock("l2");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l1);
        b.write(t1, y, 1);
        b.release(t1, l1);
        b.acquire(t2, l1);
        b.read(t2, y, 1);
        b.acquire(t2, l2);
        b.write(t2, z, 1);
        b.release(t2, l2);
        b.release(t2, l1);
        let tr = b.finish();
        let v = tr.full_view();
        let index = CpIndex::build(&v);
        assert_eq!(
            index.edges.len(),
            1,
            "one rule-(a) edge (the l1 regions conflict on y)"
        );
        // CP orders t1's write of y before t2's read of y.
        let w = rvtrace::EventId(2);
        let r = rvtrace::EventId(6);
        assert!(index.cp_ordered(w, r));
    }

    #[test]
    fn unprotected_race_found() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t2 = b.fork(ThreadId::MAIN);
        b.write(ThreadId::MAIN, x, 1);
        b.write(t2, x, 2);
        let report = CpDetector::default().detect_races(&b.finish());
        assert_eq!(report.n_races(), 1);
    }

    #[test]
    fn fork_join_still_orders() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        b.write(t1, x, 1);
        let t2 = b.fork(t1);
        b.write(t2, x, 2);
        b.join(t1, t2);
        b.write(t1, x, 3);
        let report = CpDetector::default().detect_races(&b.finish());
        assert_eq!(
            report.n_races(),
            0,
            "hard synchronization is unconditional in CP"
        );
    }
}
