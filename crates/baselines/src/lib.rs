//! # rvbaselines — the paper's comparison detectors
//!
//! Faithful implementations of the three *sound* techniques the paper
//! evaluates against (§5, Table 1):
//!
//! * [`HbDetector`] — Lamport happens-before [22]: vector clocks with
//!   unconditional release→acquire, fork/join, volatile, and wait/notify
//!   edges;
//! * [`CpDetector`] — Causally-Precedes [35] (Smaragdakis et al., POPL
//!   2012): relaxes the lock edges to those justified by rules (a)/(b),
//!   closed under HB composition (rule (c));
//! * [`SaidDetector`] — Said et al. [30]: the same SMT machinery as the
//!   maximal detector but with whole-trace read-write consistency and no
//!   branch events.
//!
//! All four techniques (including the paper's own, wrapped as
//! [`MaximalDetector`]) implement [`RaceDetectorTool`] so the evaluation
//! harness can run them on identical traces, as the paper does.
//!
//! # Examples
//!
//! ```
//! use rvbaselines::{HbDetector, MaximalDetector, RaceDetectorTool};
//! use rvtrace::{ThreadId, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! let t2 = b.fork(ThreadId::MAIN);
//! b.write(ThreadId::MAIN, x, 1);
//! b.write(t2, x, 2);
//! let trace = b.finish();
//!
//! assert_eq!(HbDetector::default().detect_races(&trace).n_races(), 1);
//! assert_eq!(MaximalDetector::default().detect_races(&trace).n_races(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
mod cp;
mod hb;
mod said;

pub use common::{
    hard_sync_clocks, hb_clocks, hb_ordered, scan_conflicting_pairs, RaceDetectorTool, ToolReport,
};
pub use cp::CpDetector;
pub use hb::HbDetector;
pub use said::{MaximalDetector, SaidDetector};
