//! CDCL SAT core with a theory hook (DPLL(T), eager theory assertion).
//!
//! A fairly standard conflict-driven clause-learning solver:
//! two-watched-literal propagation, first-UIP conflict analysis, VSIDS-style
//! decision ordering (lazy re-insertion heap), phase saving, and Luby
//! restarts. Theory literals are pushed to the [`TheoryClient`] as soon as
//! they are assigned; a theory conflict is turned into a learnt clause and
//! handled like a propositional conflict.

use crate::lit::{BVar, LBool, Lit};

/// Hook connecting the SAT core to a theory solver.
pub trait TheoryClient {
    /// Called when `lit` (a theory literal) becomes true.
    ///
    /// # Errors
    ///
    /// On theory inconsistency, returns the set of *currently true* literals
    /// whose conjunction is inconsistent (it must include at least one
    /// literal from the current decision level, which eager assertion
    /// guarantees). The offending assertion must not be recorded.
    fn assert_lit(&mut self, lit: Lit) -> Result<(), Vec<Lit>>;

    /// Whether `lit` is a theory literal (only those are passed to
    /// [`TheoryClient::assert_lit`]).
    fn is_theory_lit(&self, lit: Lit) -> bool;

    /// Called after backtracking: retract assertions of now-unassigned
    /// literals. `still_assigned` reports whether a variable is assigned.
    fn retract_unassigned(&mut self, still_assigned: &dyn Fn(BVar) -> bool);
}

/// A theory client with no theory literals (pure SAT solving).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoTheory;

impl TheoryClient for NoTheory {
    fn assert_lit(&mut self, _lit: Lit) -> Result<(), Vec<Lit>> {
        Ok(())
    }
    fn is_theory_lit(&self, _lit: Lit) -> bool {
        false
    }
    fn retract_unassigned(&mut self, _still_assigned: &dyn Fn(BVar) -> bool) {}
}

/// Which budget limit stopped an inconclusive solve. Callers use this to
/// report *why* a query came back undecided instead of silently folding a
/// timeout into "no answer".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StopReason {
    /// The conflict budget ([`Budget::max_conflicts`]) was exhausted.
    Conflicts,
    /// The wall-clock budget ([`Budget::timeout`]) was exhausted.
    Timeout,
    /// The query was cancelled via [`Sat::set_cancel`] (a competing
    /// strategy answered first). The solver stays usable; cancelled
    /// results carry no verdict and must be discarded by the caller.
    Cancelled,
}

/// Outcome of a (budgeted) solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatOutcome {
    /// A satisfying assignment was found.
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The budget ran out first; the reason says which limit tripped.
    Unknown(StopReason),
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts (propositional + theory).
    pub conflicts: u64,
    /// Conflicts reported by the theory.
    pub theory_conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added over the solver's lifetime (DB reduction may
    /// have deleted some since).
    pub learnt_clauses: u64,
}

impl SatStats {
    /// Component-wise difference since an `earlier` snapshot of the same
    /// solver. Every counter is cumulative and monotone over the solver's
    /// lifetime, so profiling a single query on a shared incremental
    /// solver is snapshot-before / `delta_since`-after. Differences
    /// saturate at zero, so a stale or foreign snapshot can under-report
    /// but never wrap.
    pub fn delta_since(&self, earlier: &SatStats) -> SatStats {
        SatStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            theory_conflicts: self
                .theory_conflicts
                .saturating_sub(earlier.theory_conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses.saturating_sub(earlier.learnt_clauses),
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f32,
}

type ClauseRef = u32;

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Limits for a solve call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Abort with [`SatOutcome::Unknown`] after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Abort after roughly this much wall-clock time.
    pub timeout: Option<std::time::Duration>,
}

impl Budget {
    /// No limits.
    pub const UNLIMITED: Budget = Budget {
        max_conflicts: None,
        timeout: None,
    };
}

/// The CDCL solver.
///
/// # Examples
///
/// ```
/// use rvsmt::sat::{Budget, NoTheory, Sat, SatOutcome};
/// use rvsmt::{BVar, Lit};
///
/// let mut s = Sat::new();
/// let (a, b) = (s.new_var(), s.new_var());
/// s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(vec![Lit::neg(a)]);
/// assert_eq!(s.solve(&mut NoTheory, &Budget::UNLIMITED), SatOutcome::Sat);
/// assert_eq!(s.value(b).as_bool(), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct Sat {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// How far into the trail theory literals have been asserted.
    theory_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    heap: std::collections::BinaryHeap<(OrdF64, BVar)>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Learnt clause refs (for DB reduction).
    learnts: Vec<ClauseRef>,
    cla_inc: f32,
    /// Grow-able learnt-DB size limit.
    max_learnts: usize,
    ok: bool,
    stats: SatStats,
    /// Cooperative cancellation token, polled at the same periodic
    /// points as the wall-clock budget. `None` (the default) costs
    /// nothing; when set and raised mid-search, the solve returns
    /// [`SatOutcome::Unknown`]`(`[`StopReason::Cancelled`]`)` and the
    /// solver stays usable.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

/// f64 ordered wrapper (activities are never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("activities are not NaN")
    }
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const RESCALE_LIMIT: f64 = 1e100;
const LUBY_UNIT: u64 = 512;
/// Backjumps deeper than this use chronological backtracking instead.
const CHRONO_THRESHOLD: u32 = 64;

impl Default for Sat {
    fn default() -> Self {
        Self::new()
    }
}

impl Sat {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Sat {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            theory_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            heap: std::collections::BinaryHeap::new(),
            seen: Vec::new(),
            learnts: Vec::new(),
            cla_inc: 1.0,
            max_learnts: 8192,
            ok: true,
            stats: SatStats::default(),
            cancel: None,
        }
    }

    /// Installs (or clears) a cooperative cancellation token. The token is
    /// polled at the same periodic checkpoints as the wall-clock budget;
    /// raising it makes the current (and any future) solve return
    /// [`SatOutcome::Unknown`]`(`[`StopReason::Cancelled`]`)`. Cloning a
    /// solver clones the token reference; call with `None` to detach.
    pub fn set_cancel(&mut self, token: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) {
        self.cancel = token;
    }

    #[inline]
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> BVar {
        let v = BVar(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push((OrdF64(0.0), v));
        v
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem + learnt clauses.
    pub fn n_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Sets the initial decision phase of a variable (overwritten by phase
    /// saving once the variable is assigned during search).
    #[inline]
    pub fn set_phase(&mut self, v: BVar, phase: bool) {
        self.phase[v.index()] = phase;
    }

    /// Current value of a variable.
    #[inline]
    pub fn value(&self, v: BVar) -> LBool {
        self.assign[v.index()]
    }

    /// Current value of a literal.
    #[inline]
    pub fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assign[l.var().index()];
        if l.is_neg() {
            v.negate()
        } else {
            v
        }
    }

    /// Adds a problem clause. Returns `false` if the solver became
    /// trivially unsatisfiable.
    ///
    /// Must be called before `solve` (at decision level 0).
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        debug_assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        if !self.ok {
            return false;
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology / satisfied / falsified-at-0 simplification.
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i] == !lits[i + 1] {
                return true; // tautology
            }
            i += 1;
        }
        lits.retain(|&l| self.lit_value(l) != LBool::False);
        if lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true;
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(lits[0], None);
                self.ok
            }
            _ => {
                self.attach(lits);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) -> ClauseRef {
        self.attach_full(lits, false)
    }

    fn attach_full(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        let cref = self.clauses.len() as ClauseRef;
        self.watches[(!lits[0]).code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.learnts.push(cref);
        }
        cref
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &l in &self.learnts {
                self.clauses[l as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Halves the learnt-clause database, keeping binary, locked (reason)
    /// and high-activity clauses. Call at decision level 0.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let locked: std::collections::HashSet<ClauseRef> =
            self.reason.iter().flatten().copied().collect();
        let mut candidates: Vec<ClauseRef> = self
            .learnts
            .iter()
            .copied()
            .filter(|&c| {
                let cl = &self.clauses[c as usize];
                !cl.deleted && cl.lits.len() > 2 && !locked.contains(&c)
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .expect("activities are not NaN")
        });
        for &c in candidates.iter().take(candidates.len() / 2) {
            self.clauses[c as usize].deleted = true;
            self.clauses[c as usize].lits.clear();
            self.clauses[c as usize].lits.shrink_to_fit();
        }
        self.learnts.retain(|&c| !self.clauses[c as usize].deleted);
        // Grow the ceiling geometrically but cap it: long incremental runs
        // (hundreds of assumption queries on one solver) must not let the
        // DB grow without bound.
        self.max_learnts = (self.max_learnts + self.max_learnts / 2).min(100_000);
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assign[v] = LBool::from_bool(!l.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = !l.is_neg();
        self.trail.push(l);
    }

    /// Unit propagation; returns a falsified clause on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let Watcher { cref, blocker } = ws[i];
                if self.lit_value(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                if self.clauses[cref as usize].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                let false_lit = !p;
                // Make sure the false literal is at position 1.
                {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref as usize].lits[0];
                if first != blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = None;
                {
                    let c = &self.clauses[cref as usize];
                    for (j, &l) in c.lits.iter().enumerate().skip(2) {
                        if self.lit_value(l) != LBool::False {
                            found = Some(j);
                            break;
                        }
                    }
                }
                if let Some(j) = found {
                    let c = &mut self.clauses[cref as usize];
                    c.lits.swap(1, j);
                    let new_watch = c.lits[1];
                    self.watches[(!new_watch).code()].push(Watcher {
                        cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore remaining watchers and bail.
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.code()] = ws;
        }
        None
    }

    /// Feeds newly assigned theory literals to the theory. On theory
    /// conflict, materializes the conflict as a learnt clause and returns it.
    fn theory_propagate<T: TheoryClient>(&mut self, theory: &mut T) -> Option<ClauseRef> {
        while self.theory_head < self.trail.len() {
            let l = self.trail[self.theory_head];
            self.theory_head += 1;
            if !theory.is_theory_lit(l) {
                continue;
            }
            if let Err(true_lits) = theory.assert_lit(l) {
                self.stats.theory_conflicts += 1;
                let lits: Vec<Lit> = true_lits.into_iter().map(|t| !t).collect();
                debug_assert!(lits.iter().all(|&x| self.lit_value(x) == LBool::False));
                // A virtual conflicting clause; attach so analysis can use it.
                let cref = self.clauses.len() as ClauseRef;
                if lits.len() >= 2 {
                    self.attach_conflict_clause(lits)
                } else {
                    self.clauses.push(Clause {
                        lits,
                        learnt: false,
                        deleted: false,
                        activity: 0.0,
                    });
                    cref
                };
                return Some(cref);
            }
        }
        None
    }

    /// Attaches a theory-conflict clause, placing the two highest-level
    /// literals in the watch positions to keep the invariant.
    fn attach_conflict_clause(&mut self, mut lits: Vec<Lit>) -> ClauseRef {
        let lvl = |s: &Self, l: Lit| s.level[l.var().index()];
        // Highest level first, second-highest second.
        let mut hi = 0;
        for j in 1..lits.len() {
            if lvl(self, lits[j]) > lvl(self, lits[hi]) {
                hi = j;
            }
        }
        lits.swap(0, hi);
        let mut hi2 = 1;
        for j in 2..lits.len() {
            if lvl(self, lits[j]) > lvl(self, lits[hi2]) {
                hi2 = j;
            }
        }
        lits.swap(1, hi2);
        self.attach(lits)
    }

    fn bump_var(&mut self, v: BVar) {
        let a = &mut self.activity[v.index()];
        *a += self.var_inc;
        if *a > RESCALE_LIMIT {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.assign[v.index()] == LBool::Undef {
            self.heap.push((OrdF64(self.activity[v.index()]), v));
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;
        let cur_level = self.decision_level();
        loop {
            self.bump_clause(cref);
            let clause_lits: Vec<Lit> = self.clauses[cref as usize].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in clause_lits.iter().skip(skip) {
                let v = q.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.level[v.index()] == cur_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Find the next seen literal of the conflict level on the
            // trail (with chronological backtracking the trail is not
            // level-sorted, so the level check is required).
            loop {
                index -= 1;
                let v = self.trail[index].var();
                if self.seen[v.index()] && self.level[v.index()] == cur_level {
                    break;
                }
            }
            let q = self.trail[index];
            self.seen[q.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(q);
                break;
            }
            cref = self.reason[q.var().index()].expect("non-decision has a reason");
            p = Some(q);
        }
        let uip = !p.expect("found UIP");
        learnt.insert(0, uip);
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backjump level: highest level among the non-asserting literals.
        let blevel = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Put a literal of blevel at position 1 (watch invariant).
        if learnt.len() > 1 {
            let mut m = 1;
            for j in 2..learnt.len() {
                if self.level[learnt[j].var().index()] > self.level[learnt[m].var().index()] {
                    m = j;
                }
            }
            learnt.swap(1, m);
        }
        (learnt, blevel)
    }

    fn cancel_until<T: TheoryClient>(&mut self, level: u32, theory: &mut T) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.heap.push((OrdF64(self.activity[v.index()]), v));
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = lim;
        self.theory_head = self.theory_head.min(lim);
        let assign = &self.assign;
        theory.retract_unassigned(&|v: BVar| assign[v.index()].is_defined());
    }

    fn pick_branch(&mut self) -> Option<BVar> {
        while let Some((_, v)) = self.heap.pop() {
            if self.assign[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// Runs CDCL search with the given theory and budget.
    pub fn solve<T: TheoryClient>(&mut self, theory: &mut T, budget: &Budget) -> SatOutcome {
        self.solve_assuming(theory, budget, &[])
    }

    /// Runs CDCL search under *assumptions*: the given literals are forced
    /// as the first decisions. Returns `Unsat` when the formula is
    /// unsatisfiable **under the assumptions** (the solver stays usable,
    /// and learnt clauses persist across calls — the incremental interface
    /// used to batch many race queries over one shared window encoding).
    pub fn solve_assuming<T: TheoryClient>(
        &mut self,
        theory: &mut T,
        budget: &Budget,
        assumptions: &[Lit],
    ) -> SatOutcome {
        if !self.ok {
            return SatOutcome::Unsat;
        }
        // Restart from a clean level for a fresh query.
        self.cancel_until(0, theory);
        if self.cancelled() {
            return SatOutcome::Unknown(StopReason::Cancelled);
        }
        let start = std::time::Instant::now();
        let base_conflicts = self.stats.conflicts;
        let mut luby_index = 0u64;
        let mut restart_budget = luby(luby_index) * LUBY_UNIT;
        let mut conflicts_since_restart = 0u64;
        loop {
            let conflict = self.propagate().or_else(|| self.theory_propagate(theory));
            match conflict {
                Some(cref) => {
                    self.stats.conflicts += 1;
                    conflicts_since_restart += 1;
                    // With chronological backtracking the conflict clause
                    // may contain no literal of the current decision level;
                    // normalize by backtracking to its maximum level first.
                    let max_level = self.clauses[cref as usize]
                        .lits
                        .iter()
                        .map(|l| self.level[l.var().index()])
                        .max()
                        .unwrap_or(0);
                    if max_level < self.decision_level() {
                        self.cancel_until(max_level, theory);
                    }
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SatOutcome::Unsat;
                    }
                    let (learnt, blevel) = self.analyze(cref);
                    // Chronological backtracking (Nadel & Ryvchin, SAT'18):
                    // on deep backjumps keep the trail and step back one
                    // level only; the learnt clause stays asserting. Unit
                    // learnt clauses are global facts and must land at
                    // level 0 (their literal has no reason clause).
                    let target = if learnt.len() == 1 {
                        0
                    } else if self.decision_level() - blevel > CHRONO_THRESHOLD {
                        self.decision_level() - 1
                    } else {
                        blevel
                    };
                    self.cancel_until(target, theory);
                    let asserting = learnt[0];
                    if learnt.len() == 1 {
                        self.enqueue(asserting, None);
                    } else {
                        let cref = self.attach_full(learnt, true);
                        self.stats.learnt_clauses += 1;
                        self.enqueue(asserting, Some(cref));
                    }
                    self.var_inc *= VAR_DECAY;
                    self.cla_inc *= 1.001;
                    if let Some(max) = budget.max_conflicts {
                        if self.stats.conflicts - base_conflicts >= max {
                            return SatOutcome::Unknown(StopReason::Conflicts);
                        }
                    }
                    if self.stats.conflicts.is_multiple_of(64) {
                        if self.cancelled() {
                            return SatOutcome::Unknown(StopReason::Cancelled);
                        }
                        if let Some(t) = budget.timeout {
                            if start.elapsed() >= t {
                                return SatOutcome::Unknown(StopReason::Timeout);
                            }
                        }
                    }
                }
                None => {
                    if conflicts_since_restart >= restart_budget {
                        self.stats.restarts += 1;
                        luby_index += 1;
                        restart_budget = luby(luby_index) * LUBY_UNIT;
                        conflicts_since_restart = 0;
                        self.cancel_until(0, theory);
                        if self.learnts.len() >= self.max_learnts {
                            self.reduce_db();
                        }
                        continue;
                    }
                    if self.stats.decisions.is_multiple_of(2048) {
                        if self.cancelled() {
                            return SatOutcome::Unknown(StopReason::Cancelled);
                        }
                        if let Some(t) = budget.timeout {
                            if start.elapsed() >= t {
                                return SatOutcome::Unknown(StopReason::Timeout);
                            }
                        }
                    }
                    // Force pending assumptions before free decisions.
                    if (self.decision_level() as usize) < assumptions.len() {
                        let a = assumptions[self.decision_level() as usize];
                        match self.lit_value(a) {
                            LBool::True => {
                                // Already implied: open a dummy level so the
                                // remaining assumptions line up.
                                self.trail_lim.push(self.trail.len());
                            }
                            LBool::False => return SatOutcome::Unsat,
                            LBool::Undef => {
                                self.stats.decisions += 1;
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(a, None);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch() {
                        None => return SatOutcome::Sat,
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let lit = Lit::new(v, !self.phase[v.index()]);
                            self.enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }

    /// Exports the problem clauses in DIMACS CNF format (for debugging with
    /// external solvers).
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "p cnf {} {}", self.n_vars(), self.clauses.len());
        for c in &self.clauses {
            for &l in &c.lits {
                let v = l.var().0 as i64 + 1;
                let _ = write!(s, "{} ", if l.is_neg() { -v } else { v });
            }
            let _ = writeln!(s, "0");
        }
        s
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i.
    let mut k = 1u64;
    loop {
        if i + 1 == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        if i + 1 < (1 << k) - 1 {
            i -= (1 << (k - 1)) - 1;
            k = 1;
            continue;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> Lit {
        Lit::pos(BVar(v))
    }
    fn n(v: u32) -> Lit {
        Lit::neg(BVar(v))
    }

    fn solver_with_vars(k: usize) -> Sat {
        let mut s = Sat::new();
        for _ in 0..k {
            s.new_var();
        }
        s
    }

    #[test]
    fn luby_sequence() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn trivial_sat_and_values() {
        let mut s = solver_with_vars(2);
        s.add_clause(vec![p(0), p(1)]);
        s.add_clause(vec![n(0)]);
        assert_eq!(s.solve(&mut NoTheory, &Budget::UNLIMITED), SatOutcome::Sat);
        assert_eq!(s.value(BVar(0)).as_bool(), Some(false));
        assert_eq!(s.value(BVar(1)).as_bool(), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(vec![p(0)]);
        assert!(!s.add_clause(vec![n(0)]));
        assert_eq!(
            s.solve(&mut NoTheory, &Budget::UNLIMITED),
            SatOutcome::Unsat
        );
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = solver_with_vars(1);
        assert!(!s.add_clause(vec![]));
        assert_eq!(
            s.solve(&mut NoTheory, &Budget::UNLIMITED),
            SatOutcome::Unsat
        );
    }

    #[test]
    fn tautology_ignored() {
        let mut s = solver_with_vars(1);
        assert!(s.add_clause(vec![p(0), n(0)]));
        assert_eq!(s.solve(&mut NoTheory, &Budget::UNLIMITED), SatOutcome::Sat);
    }

    /// Pigeonhole PHP(4,3): 4 pigeons, 3 holes — classic small UNSAT
    /// instance requiring real conflict analysis.
    #[test]
    fn pigeonhole_unsat() {
        const PIGEONS: u32 = 4;
        const HOLES: u32 = 3;
        let var = |pi: u32, h: u32| BVar(pi * HOLES + h);
        let mut s = solver_with_vars((PIGEONS * HOLES) as usize);
        for pi in 0..PIGEONS {
            s.add_clause((0..HOLES).map(|h| Lit::pos(var(pi, h))).collect());
        }
        for h in 0..HOLES {
            for a in 0..PIGEONS {
                for b in a + 1..PIGEONS {
                    s.add_clause(vec![Lit::neg(var(a, h)), Lit::neg(var(b, h))]);
                }
            }
        }
        assert_eq!(
            s.solve(&mut NoTheory, &Budget::UNLIMITED),
            SatOutcome::Unsat
        );
        assert!(s.stats().conflicts > 0);
    }

    /// A satisfiable chain forcing propagation through implications.
    #[test]
    fn implication_chain() {
        let k = 50;
        let mut s = solver_with_vars(k);
        for i in 0..k - 1 {
            s.add_clause(vec![n(i as u32), p(i as u32 + 1)]);
        }
        s.add_clause(vec![p(0)]);
        assert_eq!(s.solve(&mut NoTheory, &Budget::UNLIMITED), SatOutcome::Sat);
        for i in 0..k {
            assert_eq!(s.value(BVar(i as u32)).as_bool(), Some(true));
        }
    }

    #[test]
    fn budget_unknown() {
        // PHP(7,6) is hard enough to exceed a 1-conflict budget.
        const PIGEONS: u32 = 7;
        const HOLES: u32 = 6;
        let var = |pi: u32, h: u32| BVar(pi * HOLES + h);
        let mut s = solver_with_vars((PIGEONS * HOLES) as usize);
        for pi in 0..PIGEONS {
            s.add_clause((0..HOLES).map(|h| Lit::pos(var(pi, h))).collect());
        }
        for h in 0..HOLES {
            for a in 0..PIGEONS {
                for b in a + 1..PIGEONS {
                    s.add_clause(vec![Lit::neg(var(a, h)), Lit::neg(var(b, h))]);
                }
            }
        }
        let budget = Budget {
            max_conflicts: Some(1),
            timeout: None,
        };
        assert_eq!(
            s.solve(&mut NoTheory, &budget),
            SatOutcome::Unknown(StopReason::Conflicts)
        );
    }

    #[test]
    fn dimacs_export() {
        let mut s = solver_with_vars(2);
        s.add_clause(vec![p(0), n(1)]);
        let d = s.to_dimacs();
        assert!(d.starts_with("p cnf 2 1"));
        assert!(d.contains("1 -2 0"));
    }

    /// Regression: a unit learnt clause discovered at a deep decision level
    /// must land at level 0 even under chronological backtracking (it has
    /// no reason clause; leaving it mid-trail corrupts conflict analysis).
    #[test]
    fn chrono_unit_learnt_lands_at_level_zero() {
        let pad = 2 * super::CHRONO_THRESHOLD as usize;
        let mut s = solver_with_vars(pad + 2);
        let a = BVar(pad as u32);
        let b = BVar(pad as u32 + 1);
        // Decisions default to the saved phase; make everything decide true.
        for v in 0..pad + 2 {
            s.set_phase(BVar(v as u32), true);
        }
        // a ⇒ b and a ⇒ ¬b: deciding a (after `pad` free decisions) yields
        // the unit learnt clause ¬a.
        s.add_clause(vec![Lit::neg(a), Lit::pos(b)]);
        s.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
        assert_eq!(s.solve(&mut NoTheory, &Budget::UNLIMITED), SatOutcome::Sat);
        assert_eq!(s.value(a).as_bool(), Some(false));
    }

    /// DB reduction keeps the solver correct on instances with heavy
    /// learning (PHP(7,6) generates thousands of learnt clauses).
    #[test]
    fn reduce_db_preserves_unsat() {
        const PIGEONS: u32 = 7;
        const HOLES: u32 = 6;
        let var = |pi: u32, h: u32| BVar(pi * HOLES + h);
        let mut s = solver_with_vars((PIGEONS * HOLES) as usize);
        for pi in 0..PIGEONS {
            s.add_clause((0..HOLES).map(|h| Lit::pos(var(pi, h))).collect());
        }
        for h in 0..HOLES {
            for a in 0..PIGEONS {
                for b in a + 1..PIGEONS {
                    s.add_clause(vec![Lit::neg(var(a, h)), Lit::neg(var(b, h))]);
                }
            }
        }
        assert_eq!(
            s.solve(&mut NoTheory, &Budget::UNLIMITED),
            SatOutcome::Unsat
        );
    }

    /// Random 3-SAT at low clause density: all should be SAT, and the model
    /// must satisfy every clause.
    #[test]
    fn random_3sat_models_verified() {
        let mut seed = 0x243f6a8885a308d3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _round in 0..10 {
            let nv = 30u32;
            let nc = 60;
            let mut s = solver_with_vars(nv as usize);
            let mut clauses = Vec::new();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nv as u64) as u32;
                    let neg = next() % 2 == 0;
                    c.push(Lit::new(BVar(v), neg));
                }
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if s.solve(&mut NoTheory, &Budget::UNLIMITED) == SatOutcome::Sat {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.lit_value(l) == LBool::True),
                        "model violates clause"
                    );
                }
            }
        }
    }
}
