//! The SMT solver facade: compile a [`FormulaBuilder`]'s assertions to CNF
//! (polarity-aware Tseitin), bind difference atoms to the IDL theory, run
//! CDCL(T), and extract integer/boolean models.

use std::collections::HashMap;

use crate::formula::{Atom, FormulaBuilder, IntVar, Term, TermId};
use crate::idl::{Idl, IdlStats};
use crate::lit::{BVar, LBool, Lit};
use crate::sat::{Budget, Sat, SatOutcome, SatStats, StopReason, TheoryClient};

/// Outcome of an SMT solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtResult {
    /// Satisfiable; a model is available.
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted before a verdict (the paper's per-COP solver
    /// timeout). The [`StopReason`] says which limit tripped, so callers
    /// can account for the undecided query honestly instead of treating it
    /// as "no race found".
    Unknown(StopReason),
}

/// Aggregated statistics of a solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmtStats {
    /// SAT-core statistics.
    pub sat: SatStats,
    /// Theory statistics.
    pub idl: IdlStats,
    /// Number of CNF clauses generated from the input formula.
    pub input_clauses: usize,
    /// Number of SAT variables.
    pub vars: usize,
}

/// The IDL theory client: maps theory SAT variables to difference atoms and
/// keeps the theory's assertion stack aligned with the trail.
#[derive(Debug, Clone)]
struct IdlTheory {
    idl: Idl,
    atom_of_var: Vec<Option<Atom>>,
    fed: Vec<Lit>,
}

impl TheoryClient for IdlTheory {
    fn assert_lit(&mut self, lit: Lit) -> Result<(), Vec<Lit>> {
        let atom = self.atom_of_var[lit.var().index()].expect("theory lit has atom");
        let constraint = if lit.is_neg() { atom.negated() } else { atom };
        self.idl.assert(constraint, lit)?;
        self.fed.push(lit);
        Ok(())
    }

    fn is_theory_lit(&self, lit: Lit) -> bool {
        self.atom_of_var
            .get(lit.var().index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    fn retract_unassigned(&mut self, still_assigned: &dyn Fn(BVar) -> bool) {
        while let Some(&l) = self.fed.last() {
            if still_assigned(l.var()) {
                break;
            }
            self.fed.pop();
            self.idl.truncate(self.fed.len());
        }
    }
}

/// A one-shot SMT solver over a [`FormulaBuilder`]'s asserted terms.
///
/// # Examples
///
/// ```
/// use rvsmt::{Budget, FormulaBuilder, SmtResult, Solver};
///
/// let mut f = FormulaBuilder::new();
/// let (a, b, c) = (f.int_var(), f.int_var(), f.int_var());
/// // (a < b ∨ b < a) ∧ b < c ∧ c < a   — forces b < a.
/// let t1 = f.lt(a, b);
/// let t2 = f.lt(b, a);
/// let or = f.or2(t1, t2);
/// f.assert_term(or);
/// let t3 = f.lt(b, c);
/// f.assert_term(t3);
/// let t4 = f.lt(c, a);
/// f.assert_term(t4);
///
/// let mut s = Solver::new(&f);
/// assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
/// let m = |v| s.int_value(v);
/// assert!(m(b) < m(c) && m(c) < m(a));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    sat: Sat,
    theory: IdlTheory,
    bool_term_vars: HashMap<TermId, BVar>,
    input_clauses: usize,
    trivially_unsat: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PolKey {
    term: TermId,
    negated: bool,
}

struct Compiler<'a> {
    fb: &'a FormulaBuilder,
    sat: &'a mut Sat,
    atom_of_var: &'a mut Vec<Option<Atom>>,
    var_of_term: HashMap<TermId, BVar>,
    /// Which (term, polarity-direction) definitional clauses were emitted.
    emitted: std::collections::HashSet<PolKey>,
    const_true: Option<BVar>,
    clauses: usize,
    ok: bool,
}

impl<'a> Compiler<'a> {
    fn add_clause(&mut self, lits: Vec<Lit>) {
        self.clauses += 1;
        if !self.sat.add_clause(lits) {
            self.ok = false;
        }
    }

    fn const_true_lit(&mut self) -> Lit {
        let v = match self.const_true {
            Some(v) => v,
            None => {
                let v = self.sat.new_var();
                self.const_true = Some(v);
                self.add_clause(vec![Lit::pos(v)]);
                v
            }
        };
        Lit::pos(v)
    }

    fn var_for(&mut self, t: TermId) -> BVar {
        if let Some(&v) = self.var_of_term.get(&t) {
            return v;
        }
        let v = self.sat.new_var();
        if let Term::Atom(a) = self.fb.term(t) {
            if self.atom_of_var.len() <= v.index() {
                self.atom_of_var.resize(v.index() + 1, None);
            }
            self.atom_of_var[v.index()] = Some(*a);
        }
        self.var_of_term.insert(t, v);
        v
    }

    /// Returns a literal equisatisfiable with `t` under the given polarity
    /// (Plaisted–Greenbaum: only the needed definitional direction is
    /// emitted).
    fn lit_of(&mut self, t: TermId, positive: bool) -> Lit {
        match self.fb.term(t) {
            Term::True => self.const_true_lit(),
            Term::False => !self.const_true_lit(),
            Term::Bool(_) | Term::Atom(_) => Lit::pos(self.var_for(t)),
            Term::Not(inner) => {
                let inner = *inner;
                !self.lit_of(inner, !positive)
            }
            Term::And(cs) => {
                let cs: Vec<TermId> = cs.to_vec();
                let lt = Lit::pos(self.var_for(t));
                let key = PolKey {
                    term: t,
                    negated: !positive,
                };
                if self.emitted.insert(key) {
                    if positive {
                        // lt ⇒ every conjunct.
                        for &c in &cs {
                            let lc = self.lit_of(c, true);
                            self.add_clause(vec![!lt, lc]);
                        }
                    } else {
                        // ¬lt ⇒ some conjunct false.
                        let mut clause = vec![lt];
                        for &c in &cs {
                            let lc = self.lit_of(c, false);
                            clause.push(!lc);
                        }
                        self.add_clause(clause);
                    }
                }
                lt
            }
            Term::Or(cs) => {
                let cs: Vec<TermId> = cs.to_vec();
                let lt = Lit::pos(self.var_for(t));
                let key = PolKey {
                    term: t,
                    negated: !positive,
                };
                if self.emitted.insert(key) {
                    if positive {
                        // lt ⇒ some disjunct.
                        let mut clause = vec![!lt];
                        for &c in &cs {
                            let lc = self.lit_of(c, true);
                            clause.push(lc);
                        }
                        self.add_clause(clause);
                    } else {
                        // ¬lt ⇒ every disjunct false.
                        for &c in &cs {
                            let lc = self.lit_of(c, false);
                            self.add_clause(vec![lt, !lc]);
                        }
                    }
                }
                lt
            }
        }
    }

    /// Asserts a root term, decomposing top-level ∧/∨ without auxiliary
    /// variables.
    fn assert_root(&mut self, t: TermId) {
        match self.fb.term(t) {
            Term::True => {}
            Term::False => {
                self.add_clause(vec![]);
            }
            Term::And(cs) => {
                for &c in &cs.to_vec() {
                    self.assert_root(c);
                }
            }
            Term::Or(cs) => {
                let cs = cs.to_vec();
                let mut clause = Vec::with_capacity(cs.len());
                for c in cs {
                    clause.push(self.lit_of(c, true));
                }
                self.add_clause(clause);
            }
            _ => {
                let l = self.lit_of(t, true);
                self.add_clause(vec![l]);
            }
        }
    }
}

impl Solver {
    /// Compiles the builder's asserted roots into a fresh solver.
    pub fn new(fb: &FormulaBuilder) -> Self {
        let mut sat = Sat::new();
        let mut atom_of_var: Vec<Option<Atom>> = Vec::new();
        let mut compiler = Compiler {
            fb,
            sat: &mut sat,
            atom_of_var: &mut atom_of_var,
            var_of_term: HashMap::new(),
            emitted: std::collections::HashSet::new(),
            const_true: None,
            clauses: 0,
            ok: true,
        };
        for &root in fb.asserted() {
            compiler.assert_root(root);
        }
        let input_clauses = compiler.clauses;
        let trivially_unsat = !compiler.ok;
        let var_of_term = std::mem::take(&mut compiler.var_of_term);
        drop(compiler);
        atom_of_var.resize(sat.n_vars(), None);
        let bool_term_vars = var_of_term
            .into_iter()
            .filter(|(t, _)| matches!(fb.term(*t), Term::Bool(_)))
            .collect();
        Solver {
            sat,
            theory: IdlTheory {
                idl: Idl::new(fb.n_int_vars()),
                atom_of_var,
                fed: Vec::new(),
            },
            bool_term_vars,
            input_clauses,
            trivially_unsat,
        }
    }

    /// Decides the formula within the budget.
    pub fn solve(&mut self, budget: &Budget) -> SmtResult {
        self.solve_assuming(budget, &[])
    }

    /// Decides the formula under assumptions (free boolean variable terms
    /// asserted true for this query only). The solver remains usable after
    /// `Unsat`, and learnt clauses persist across queries — the incremental
    /// interface for batching many related queries over one encoding.
    ///
    /// # Panics
    ///
    /// Panics if an assumption term is not a free boolean variable created
    /// with [`FormulaBuilder::bool_var`], or never occurred in the compiled
    /// formula.
    pub fn solve_assuming(&mut self, budget: &Budget, assumptions: &[TermId]) -> SmtResult {
        if self.trivially_unsat {
            return SmtResult::Unsat;
        }
        let lits: Vec<Lit> = assumptions
            .iter()
            .map(|t| {
                let v = self
                    .bool_term_vars
                    .get(t)
                    .expect("assumption must be a bool var occurring in the formula");
                Lit::pos(*v)
            })
            .collect();
        match self.sat.solve_assuming(&mut self.theory, budget, &lits) {
            SatOutcome::Sat => SmtResult::Sat,
            SatOutcome::Unsat => SmtResult::Unsat,
            SatOutcome::Unknown(reason) => SmtResult::Unknown(reason),
        }
    }

    /// Seeds the SAT decision phases of all theory atoms from a predicate
    /// (e.g. the atom's truth value under a known near-model, such as the
    /// original trace order in race detection). A good seed makes the first
    /// descent land close to a model.
    pub fn hint_atom_phases(&mut self, f: impl Fn(&Atom) -> bool) {
        for (v, atom) in self.theory.atom_of_var.iter().enumerate() {
            if let Some(a) = atom {
                self.sat.set_phase(crate::lit::BVar(v as u32), f(a));
            }
        }
    }

    /// The model value of an integer variable (call only after
    /// [`SmtResult::Sat`]; unconstrained variables read as `0`).
    pub fn int_value(&self, v: IntVar) -> i64 {
        self.theory.idl.value(v)
    }

    /// The model value of a free boolean variable term (`None` if the
    /// variable was eliminated during compilation).
    pub fn bool_value(&self, t: TermId) -> Option<bool> {
        let v = self.bool_term_vars.get(&t)?;
        match self.sat.value(*v) {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> SmtStats {
        SmtStats {
            sat: self.sat.stats(),
            idl: self.theory.idl.stats(),
            input_clauses: self.input_clauses,
            vars: self.sat.n_vars(),
        }
    }

    /// Installs (or clears) a cooperative cancellation token on the
    /// underlying SAT core (see [`rvsmt::sat::Sat::set_cancel`]): raising
    /// it makes in-flight and future queries stop with
    /// [`rvsmt::sat::StopReason::Cancelled`]. Used by portfolio callers
    /// racing a cloned solver against a cheaper screen.
    pub fn set_cancel(&mut self, token: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) {
        self.sat.set_cancel(token);
    }

    /// DIMACS dump of the propositional skeleton (debugging aid).
    pub fn to_dimacs(&self) -> String {
        self.sat.to_dimacs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_ordering_chain_sat() {
        let mut f = FormulaBuilder::new();
        let vars: Vec<IntVar> = (0..10).map(|_| f.int_var()).collect();
        for w in vars.windows(2) {
            let t = f.lt(w[0], w[1]);
            f.assert_term(t);
        }
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
        for w in vars.windows(2) {
            assert!(s.int_value(w[0]) < s.int_value(w[1]));
        }
    }

    #[test]
    fn ordering_cycle_unsat() {
        let mut f = FormulaBuilder::new();
        let vars: Vec<IntVar> = (0..5).map(|_| f.int_var()).collect();
        for w in vars.windows(2) {
            let t = f.lt(w[0], w[1]);
            f.assert_term(t);
        }
        let t = f.lt(vars[4], vars[0]);
        f.assert_term(t);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Unsat);
    }

    #[test]
    fn disjunction_forces_theory_choice() {
        // Mimics a lock constraint: (r1 < a2) ∨ (r2 < a1), with MHB edges
        // a1 < r1, a2 < r2 and a cross requirement r2 < r1.
        let mut f = FormulaBuilder::new();
        let a1 = f.int_var();
        let r1 = f.int_var();
        let a2 = f.int_var();
        let r2 = f.int_var();
        for (x, y) in [(a1, r1), (a2, r2), (r2, r1)] {
            let t = f.lt(x, y);
            f.assert_term(t);
        }
        let d1 = f.lt(r1, a2);
        let d2 = f.lt(r2, a1);
        let d = f.or2(d1, d2);
        f.assert_term(d);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
        // Only the second disjunct is consistent: r2 < a1.
        assert!(s.int_value(r2) < s.int_value(a1));
        assert!(s.int_value(a2) < s.int_value(r2));
    }

    #[test]
    fn both_lock_orders_blocked_unsat() {
        // (r1 < a2 ∨ r2 < a1) ∧ a2 < r1 ∧ a1 < r2 ∧ a1 < r1 ∧ a2 < r2 — the
        // two regions overlap both ways: unsatisfiable.
        let mut f = FormulaBuilder::new();
        let a1 = f.int_var();
        let r1 = f.int_var();
        let a2 = f.int_var();
        let r2 = f.int_var();
        for (x, y) in [(a1, r1), (a2, r2), (a2, r1), (a1, r2)] {
            let t = f.lt(x, y);
            f.assert_term(t);
        }
        let d1 = f.lt(r1, a2);
        let d2 = f.lt(r2, a1);
        let d = f.or2(d1, d2);
        f.assert_term(d);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Unsat);
    }

    #[test]
    fn bool_definitions_and_implications() {
        // cf ⇒ (x < y); cf asserted — model must order x < y.
        let mut f = FormulaBuilder::new();
        let x = f.int_var();
        let y = f.int_var();
        let cf = f.bool_var();
        let body = f.lt(x, y);
        let imp = f.implies(cf, body);
        f.assert_term(imp);
        f.assert_term(cf);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
        assert_eq!(s.bool_value(cf), Some(true));
        assert!(s.int_value(x) < s.int_value(y));
    }

    #[test]
    fn nested_structure() {
        // (p ∧ (x<y ∨ y<x)) ∨ (¬p ∧ x<y), assert x>y: forces p true, y<x.
        let mut f = FormulaBuilder::new();
        let x = f.int_var();
        let y = f.int_var();
        let p = f.bool_var();
        let xy = f.lt(x, y);
        let yx = f.lt(y, x);
        let either = f.or2(xy, yx);
        let left = f.and2(p, either);
        let np = f.not(p);
        let right = f.and2(np, xy);
        let root = f.or2(left, right);
        f.assert_term(root);
        f.assert_term(yx);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
        assert_eq!(s.bool_value(p), Some(true));
        assert!(s.int_value(y) < s.int_value(x));
    }

    #[test]
    fn false_root_unsat() {
        let mut f = FormulaBuilder::new();
        let ff = f.ff();
        f.assert_term(ff);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Unsat);
    }

    #[test]
    fn true_root_sat_empty() {
        let mut f = FormulaBuilder::new();
        let tt = f.tt();
        f.assert_term(tt);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
    }

    #[test]
    fn negated_atom_assertion() {
        // ¬(x < y) ∧ ¬(y < x) means x == y: satisfiable with equal values.
        let mut f = FormulaBuilder::new();
        let x = f.int_var();
        let y = f.int_var();
        let xy = f.lt(x, y);
        let yx = f.lt(y, x);
        let nxy = f.not(xy);
        let nyx = f.not(yx);
        f.assert_term(nxy);
        f.assert_term(nyx);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
        assert_eq!(s.int_value(x), s.int_value(y));
    }

    #[test]
    fn adjacency_via_substitution_pattern() {
        // The detector substitutes O_a := O_b for the race constraint; here
        // we emulate adjacency of a and b among {p1, a, b, p2} with
        // p1 < a = b < p2 by sharing one IntVar.
        let mut f = FormulaBuilder::new();
        let p1 = f.int_var();
        let ab = f.int_var();
        let p2 = f.int_var();
        let t1 = f.lt(p1, ab);
        let t2 = f.lt(ab, p2);
        f.assert_term(t1);
        f.assert_term(t2);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
        assert!(s.int_value(p1) < s.int_value(ab) && s.int_value(ab) < s.int_value(p2));
    }

    #[test]
    fn stats_populated() {
        let mut f = FormulaBuilder::new();
        let x = f.int_var();
        let y = f.int_var();
        let t = f.lt(x, y);
        f.assert_term(t);
        let mut s = Solver::new(&f);
        let _ = s.solve(&Budget::UNLIMITED);
        let st = s.stats();
        assert!(st.input_clauses >= 1);
        assert!(st.vars >= 1);
        assert!(st.idl.asserts >= 1);
    }

    #[test]
    fn assumptions_are_per_query() {
        // sel1 ⇒ x < y ; sel2 ⇒ y < x. Each selector alone is SAT, both
        // directions queried on ONE solver; conjoined they are UNSAT under
        // assumptions but the solver stays usable.
        let mut f = FormulaBuilder::new();
        let x = f.int_var();
        let y = f.int_var();
        let sel1 = f.bool_var();
        let sel2 = f.bool_var();
        let xy = f.lt(x, y);
        let yx = f.lt(y, x);
        let i1 = f.implies(sel1, xy);
        f.assert_term(i1);
        let i2 = f.implies(sel2, yx);
        f.assert_term(i2);
        let mut s = Solver::new(&f);
        assert_eq!(
            s.solve_assuming(&Budget::UNLIMITED, &[sel1]),
            SmtResult::Sat
        );
        assert!(s.int_value(x) < s.int_value(y));
        assert_eq!(
            s.solve_assuming(&Budget::UNLIMITED, &[sel2]),
            SmtResult::Sat
        );
        assert!(s.int_value(y) < s.int_value(x));
        assert_eq!(
            s.solve_assuming(&Budget::UNLIMITED, &[sel1, sel2]),
            SmtResult::Unsat
        );
        // Unsat under assumptions is not permanent.
        assert_eq!(
            s.solve_assuming(&Budget::UNLIMITED, &[sel1]),
            SmtResult::Sat
        );
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
    }

    #[test]
    fn assumption_selectors_emulate_adjacency() {
        // The batch race encoding: sel ⇒ (O_b − O_a ≤ 1 ∧ O_a − O_b ≤ −1).
        let mut f = FormulaBuilder::new();
        let a = f.int_var();
        let b = f.int_var();
        let c = f.int_var();
        let sel = f.bool_var();
        let up = f.diff_le(b, a, 1);
        let lo = f.diff_le(a, b, -1);
        let eq = f.and2(up, lo);
        let imp = f.implies(sel, eq);
        f.assert_term(imp);
        // a < c < b makes adjacency impossible.
        let t1 = f.lt(a, c);
        f.assert_term(t1);
        let t2 = f.lt(c, b);
        f.assert_term(t2);
        let mut s = Solver::new(&f);
        assert_eq!(
            s.solve(&Budget::UNLIMITED),
            SmtResult::Sat,
            "without the selector"
        );
        assert_eq!(
            s.solve_assuming(&Budget::UNLIMITED, &[sel]),
            SmtResult::Unsat
        );
    }

    /// Randomized DPLL(T) exercise: random strict-order constraints over a
    /// permutation's transitive pairs are always SAT, and models must
    /// respect every asserted atom.
    #[test]
    fn random_order_constraints_model_check() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 20usize;
            let mut f = FormulaBuilder::new();
            let vars: Vec<IntVar> = (0..n).map(|_| f.int_var()).collect();
            let mut pairs = Vec::new();
            for _ in 0..40 {
                let i = (next() % n as u64) as usize;
                let j = (next() % n as u64) as usize;
                if i < j {
                    let t = f.lt(vars[i], vars[j]);
                    f.assert_term(t);
                    pairs.push((i, j));
                }
            }
            let mut s = Solver::new(&f);
            assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
            for (i, j) in pairs {
                assert!(s.int_value(vars[i]) < s.int_value(vars[j]));
            }
        }
    }
}
