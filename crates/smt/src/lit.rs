//! Boolean variables, literals and three-valued assignments.

use std::fmt;
use std::ops::Not;

/// A boolean variable of the SAT core, a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BVar(pub u32);

impl BVar {
    /// Dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A literal: a boolean variable or its negation, encoded as `2·var + sign`.
///
/// # Examples
///
/// ```
/// use rvsmt::{BVar, Lit};
/// let v = BVar(3);
/// let p = Lit::pos(v);
/// assert_eq!(!p, Lit::neg(v));
/// assert_eq!((!p).var(), v);
/// assert!((!p).is_neg());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: BVar) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: BVar) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    #[inline]
    pub fn new(v: BVar, negated: bool) -> Lit {
        Lit((v.0 << 1) | negated as u32)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// True when the literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense code (`2·var + sign`), usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(c: usize) -> Lit {
        Lit(c as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬")?;
        }
        write!(f, "{}", self.var())
    }
}

/// Three-valued assignment state of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts from a concrete boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Whether the value is assigned.
    #[inline]
    pub fn is_defined(self) -> bool {
        self != LBool::Undef
    }

    /// The concrete boolean, if assigned.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Negation (`Undef` stays `Undef`).
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding_roundtrips() {
        let v = BVar(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_code(p.code()), p);
        assert_eq!(Lit::new(v, true), n);
        assert_eq!(format!("{p} {n}"), "b7 ¬b7");
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert!(LBool::False.is_defined());
        assert!(!LBool::Undef.is_defined());
        assert_eq!(LBool::True.as_bool(), Some(true));
        assert_eq!(LBool::Undef.as_bool(), None);
    }
}
