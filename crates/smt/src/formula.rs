//! Hash-consed first-order formulas over Integer Difference Logic.
//!
//! The race-detection encoding (paper §3.2) only ever produces boolean
//! combinations of *difference atoms* `Oₓ − O_y ≤ k` over integer order
//! variables, plus auxiliary boolean definition variables. A
//! [`FormulaBuilder`] owns an arena of hash-consed [`Term`]s with
//! simplifying smart constructors; the [`Solver`](crate::Solver) compiles the
//! asserted terms to CNF and decides them with DPLL(T).

use std::collections::HashMap;
use std::fmt;

/// An integer theory variable (an event order variable `O_e` in the race
/// encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntVar(pub u32);

impl IntVar {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IntVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// A difference-logic atom `x − y ≤ k`.
///
/// Atoms are kept in a canonical polarity (`x.0 < y.0`); the builder wraps
/// the other polarity in a negation so that an atom and its complement share
/// one SAT variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Left variable.
    pub x: IntVar,
    /// Right variable.
    pub y: IntVar,
    /// The bound: the atom asserts `x − y ≤ k`.
    pub k: i64,
}

impl Atom {
    /// The semantic negation: `¬(x − y ≤ k)` is `y − x ≤ −k−1`.
    pub fn negated(&self) -> Atom {
        Atom {
            x: self.y,
            y: self.x,
            k: -self.k - 1,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.k == -1 {
            write!(f, "{} < {}", self.x, self.y)
        } else {
            write!(f, "{} - {} ≤ {}", self.x, self.y, self.k)
        }
    }
}

/// Identifier of a hash-consed term within its [`FormulaBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub(crate) u32);

impl TermId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A formula node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A free boolean variable (e.g. a `cf` definition variable).
    Bool(u32),
    /// A difference-logic atom.
    Atom(Atom),
    /// Negation.
    Not(TermId),
    /// N-ary conjunction (flattened, sorted, deduplicated).
    And(Box<[TermId]>),
    /// N-ary disjunction (flattened, sorted, deduplicated).
    Or(Box<[TermId]>),
}

/// Arena and smart constructors for formulas.
///
/// # Examples
///
/// ```
/// use rvsmt::FormulaBuilder;
///
/// let mut f = FormulaBuilder::new();
/// let (a, b, c) = (f.int_var(), f.int_var(), f.int_var());
/// let ab = f.lt(a, b);
/// let bc = f.lt(b, c);
/// let t = f.and2(ab, bc);
/// f.assert_term(t);
/// assert_eq!(f.asserted().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct FormulaBuilder {
    terms: Vec<Term>,
    cache: HashMap<Term, TermId>,
    n_ints: u32,
    n_bools: u32,
    asserted: Vec<TermId>,
}

impl FormulaBuilder {
    /// Creates an empty builder (with the constants pre-interned).
    pub fn new() -> Self {
        let mut b = FormulaBuilder::default();
        b.intern(Term::True);
        b.intern(Term::False);
        b
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.cache.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.cache.insert(t, id);
        id
    }

    /// The constant `true`.
    #[inline]
    pub fn tt(&self) -> TermId {
        TermId(0)
    }

    /// The constant `false`.
    #[inline]
    pub fn ff(&self) -> TermId {
        TermId(1)
    }

    /// The term with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this builder.
    #[inline]
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of interned terms.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Allocates a fresh integer (order) variable.
    pub fn int_var(&mut self) -> IntVar {
        let v = IntVar(self.n_ints);
        self.n_ints += 1;
        v
    }

    /// Number of integer variables allocated.
    pub fn n_int_vars(&self) -> usize {
        self.n_ints as usize
    }

    /// Allocates a fresh free boolean variable, as a term.
    pub fn bool_var(&mut self) -> TermId {
        let v = self.n_bools;
        self.n_bools += 1;
        self.intern(Term::Bool(v))
    }

    /// Number of free boolean variables allocated.
    pub fn n_bool_vars(&self) -> usize {
        self.n_bools as usize
    }

    /// The atom `x − y ≤ k`. Constant-folds `x == y`; canonicalizes polarity
    /// so an atom and its negation share a node.
    pub fn diff_le(&mut self, x: IntVar, y: IntVar, k: i64) -> TermId {
        if x == y {
            return if k >= 0 { self.tt() } else { self.ff() };
        }
        if x.0 < y.0 {
            self.intern(Term::Atom(Atom { x, y, k }))
        } else {
            // x − y ≤ k  ⇔  ¬(y − x ≤ −k−1)
            let canon = self.intern(Term::Atom(Atom {
                x: y,
                y: x,
                k: -k - 1,
            }));
            self.not(canon)
        }
    }

    /// The strict order `x < y` (`x − y ≤ −1`).
    pub fn lt(&mut self, x: IntVar, y: IntVar) -> TermId {
        self.diff_le(x, y, -1)
    }

    /// The non-strict order `x ≤ y`.
    pub fn le(&mut self, x: IntVar, y: IntVar) -> TermId {
        self.diff_le(x, y, 0)
    }

    /// Negation, with `¬¬t = t` and constant folding.
    pub fn not(&mut self, t: TermId) -> TermId {
        match self.term(t) {
            Term::True => self.ff(),
            Term::False => self.tt(),
            Term::Not(inner) => *inner,
            _ => self.intern(Term::Not(t)),
        }
    }

    fn nary(&mut self, op_and: bool, ts: Vec<TermId>) -> TermId {
        let (absorb, neutral) = if op_and {
            (self.ff(), self.tt())
        } else {
            (self.tt(), self.ff())
        };
        let mut flat = Vec::with_capacity(ts.len());
        let mut stack: Vec<TermId> = ts;
        stack.reverse();
        while let Some(t) = stack.pop() {
            if t == absorb {
                return absorb;
            }
            if t == neutral {
                continue;
            }
            match self.term(t) {
                Term::And(cs) if op_and => stack.extend(cs.iter().rev().copied()),
                Term::Or(cs) if !op_and => stack.extend(cs.iter().rev().copied()),
                _ => flat.push(t),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // t ∧ ¬t = ⊥ ; t ∨ ¬t = ⊤.
        for &t in &flat {
            if let Term::Not(inner) = self.term(t) {
                if flat.binary_search(inner).is_ok() {
                    return absorb;
                }
            }
        }
        match flat.len() {
            0 => neutral,
            1 => flat[0],
            _ => {
                let node = if op_and {
                    Term::And(flat.into())
                } else {
                    Term::Or(flat.into())
                };
                self.intern(node)
            }
        }
    }

    /// N-ary conjunction with flattening, deduplication and constant folding.
    pub fn and_n(&mut self, ts: Vec<TermId>) -> TermId {
        self.nary(true, ts)
    }

    /// Binary conjunction.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and_n(vec![a, b])
    }

    /// N-ary disjunction with flattening, deduplication and constant folding.
    pub fn or_n(&mut self, ts: Vec<TermId>) -> TermId {
        self.nary(false, ts)
    }

    /// Binary disjunction.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or_n(vec![a, b])
    }

    /// Implication `a ⇒ b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or2(na, b)
    }

    /// Asserts a term at top level (a root of the formula to be decided).
    pub fn assert_term(&mut self, t: TermId) {
        self.asserted.push(t);
    }

    /// The asserted roots.
    pub fn asserted(&self) -> &[TermId] {
        &self.asserted
    }

    /// Pretty-prints a term (for tests and debugging dumps).
    pub fn display(&self, t: TermId) -> String {
        match self.term(t) {
            Term::True => "⊤".into(),
            Term::False => "⊥".into(),
            Term::Bool(v) => format!("p{v}"),
            Term::Atom(a) => format!("{a}"),
            Term::Not(inner) => format!("¬({})", self.display(*inner)),
            Term::And(cs) => {
                let parts: Vec<_> = cs.iter().map(|&c| self.display(c)).collect();
                format!("({})", parts.join(" ∧ "))
            }
            Term::Or(cs) => {
                let parts: Vec<_> = cs.iter().map(|&c| self.display(c)).collect();
                format!("({})", parts.join(" ∨ "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_folding() {
        let mut f = FormulaBuilder::new();
        let x = f.int_var();
        assert_eq!(f.diff_le(x, x, 0), f.tt());
        assert_eq!(f.diff_le(x, x, -1), f.ff());
        let tt = f.tt();
        let ff = f.ff();
        assert_eq!(f.not(tt), ff);
        assert_eq!(f.not(ff), tt);
    }

    #[test]
    fn atom_polarity_canonicalization() {
        let mut f = FormulaBuilder::new();
        let a = f.int_var();
        let b = f.int_var();
        let t1 = f.lt(a, b); // canonical (a.0 < b.0)
        let t2 = f.lt(b, a); // wraps as ¬(a − b ≤ 0)
        assert!(matches!(f.term(t1), Term::Atom(_)));
        assert!(matches!(f.term(t2), Term::Not(_)));
        // ¬(b < a) = a − b ≤ 0 — shares the atom node inside t2.
        let t3 = f.not(t2);
        assert!(matches!(f.term(t3), Term::Atom(at) if at.k == 0));
    }

    #[test]
    fn atom_negation_involution() {
        let a = Atom {
            x: IntVar(0),
            y: IntVar(1),
            k: 3,
        };
        assert_eq!(a.negated().negated(), a);
        assert_eq!(
            a.negated(),
            Atom {
                x: IntVar(1),
                y: IntVar(0),
                k: -4
            }
        );
    }

    #[test]
    fn and_or_flatten_dedup() {
        let mut f = FormulaBuilder::new();
        let p = f.bool_var();
        let q = f.bool_var();
        let pq = f.and2(p, q);
        let t = f.and2(pq, p); // flattens to {p, q}
        assert_eq!(t, pq);
        let tt = f.tt();
        assert_eq!(f.and2(p, tt), p);
        let ff = f.ff();
        assert_eq!(f.and2(p, ff), ff);
        assert_eq!(f.or2(p, tt), tt);
        assert_eq!(f.or2(p, ff), p);
        assert_eq!(f.and_n(vec![]), tt);
        assert_eq!(f.or_n(vec![]), ff);
    }

    #[test]
    fn complement_detection() {
        let mut f = FormulaBuilder::new();
        let p = f.bool_var();
        let np = f.not(p);
        assert_eq!(f.and2(p, np), f.ff());
        assert_eq!(f.or2(p, np), f.tt());
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut f = FormulaBuilder::new();
        let p = f.bool_var();
        let q = f.bool_var();
        let t1 = f.or2(p, q);
        let t2 = f.or2(q, p);
        assert_eq!(t1, t2); // sorted canonical form
        let n = f.n_terms();
        let _ = f.or2(p, q);
        assert_eq!(f.n_terms(), n);
    }

    #[test]
    fn display_renders() {
        let mut f = FormulaBuilder::new();
        let a = f.int_var();
        let b = f.int_var();
        let p = f.bool_var();
        let lt = f.lt(a, b);
        let t = f.implies(p, lt);
        // Children are kept sorted by term id: the atom precedes ¬p.
        assert_eq!(f.display(t), "(O0 < O1 ∨ ¬(p0))");
    }
}
