//! Integer Difference Logic theory solver.
//!
//! Maintains a set of difference constraints `x − y ≤ k` (asserted as graph
//! edges `y → x` with weight `k`) together with a *potential function* `π`
//! satisfying `π(x) − π(y) ≤ k` for every active constraint — i.e. a live
//! model. Adding a constraint triggers an incremental single-source
//! relaxation (Cotton & Maler, *Fast and flexible difference constraint
//! propagation*, SAT 2006); infeasibility manifests as a negative cycle,
//! reported as the set of constraint *tags* (SAT literals) on the cycle.
//!
//! Retraction is stack-like ([`Idl::truncate`]): removing constraints keeps
//! the current potential feasible, so backtracking is O(edges removed).

use crate::formula::{Atom, IntVar};
use crate::lit::Lit;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy)]
struct Edge {
    /// Source node (the `y` of `x − y ≤ k`).
    u: u32,
    /// Target node (the `x`).
    v: u32,
    w: i64,
    /// The SAT literal whose assertion installed this edge.
    tag: Lit,
}

/// Incremental difference-logic solver over `n` integer variables.
///
/// # Examples
///
/// ```
/// use rvsmt::{Atom, Idl, IntVar, Lit, BVar};
///
/// let mut idl = Idl::new(3);
/// let tag = |i| Lit::pos(BVar(i));
/// let (a, b, c) = (IntVar(0), IntVar(1), IntVar(2));
/// // a < b < c is satisfiable…
/// idl.assert(Atom { x: a, y: b, k: -1 }, tag(0)).unwrap();
/// idl.assert(Atom { x: b, y: c, k: -1 }, tag(1)).unwrap();
/// assert!(idl.value(a) < idl.value(b) && idl.value(b) < idl.value(c));
/// // …but closing the cycle c < a is not.
/// let conflict = idl.assert(Atom { x: c, y: a, k: -1 }, tag(2)).unwrap_err();
/// assert_eq!(conflict.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Idl {
    n: usize,
    out: Vec<Vec<u32>>,
    edges: Vec<Edge>,
    pot: Vec<i64>,
    // Scratch space for the relaxation, reset lazily via `touched`.
    gamma: Vec<i64>,
    parent: Vec<u32>,
    processed: Vec<bool>,
    touched: Vec<u32>,
    /// Potentials mutated during the current repair, for rollback on
    /// conflict: the old potential stays feasible for the old edges, the
    /// half-repaired one need not be.
    saved_pot: Vec<(u32, i64)>,
    stats: IdlStats,
}

/// Counters exposed for benchmarking and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdlStats {
    /// Constraints asserted (including re-assertions after backtracking).
    pub asserts: u64,
    /// Relaxation node visits.
    pub relaxations: u64,
    /// Negative cycles found.
    pub conflicts: u64,
}

const NO_PARENT: u32 = u32::MAX;

impl Idl {
    /// Creates a solver over `n` integer variables, all initially `0`.
    pub fn new(n: usize) -> Self {
        Idl {
            n,
            out: vec![Vec::new(); n],
            edges: Vec::new(),
            pot: vec![0; n],
            gamma: vec![0; n],
            parent: vec![NO_PARENT; n],
            processed: vec![false; n],
            touched: Vec::new(),
            saved_pot: Vec::new(),
            stats: IdlStats::default(),
        }
    }

    /// Number of currently active constraints.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Counters.
    #[inline]
    pub fn stats(&self) -> IdlStats {
        self.stats
    }

    /// The current model value of `v` (meaningful whenever the constraint
    /// set is consistent, i.e. after every successful [`Idl::assert`]).
    #[inline]
    pub fn value(&self, v: IntVar) -> i64 {
        self.pot[v.index()]
    }

    fn reset_scratch(&mut self) {
        for &t in &self.touched {
            self.gamma[t as usize] = 0;
            self.parent[t as usize] = NO_PARENT;
            self.processed[t as usize] = false;
        }
        self.touched.clear();
        self.saved_pot.clear();
    }

    /// Asserts `atom` (`x − y ≤ k`), tagged with the SAT literal that caused
    /// it.
    ///
    /// # Errors
    ///
    /// If the constraint closes a negative cycle, returns the tags of all
    /// constraints on the cycle (including `tag`); their conjunction is
    /// theory-inconsistent and the caller should learn its negation. The
    /// constraint is *not* installed in that case.
    pub fn assert(&mut self, atom: Atom, tag: Lit) -> Result<(), Vec<Lit>> {
        self.stats.asserts += 1;
        let (u, v, w) = (atom.y.index(), atom.x.index(), atom.k);
        debug_assert!(u < self.n && v < self.n, "IntVar out of range");
        let new_edge = Edge {
            u: u as u32,
            v: v as u32,
            w,
            tag,
        };
        if self.pot[v] <= self.pot[u] + w {
            self.install(new_edge);
            return Ok(());
        }
        // Repair potentials by relaxing from v.
        self.reset_scratch();
        let mut heap: BinaryHeap<(Reverse<i64>, u32)> = BinaryHeap::new();
        self.gamma[v] = self.pot[u] + w - self.pot[v]; // < 0
        self.parent[v] = NO_PARENT; // reached via the new edge
        self.touched.push(v as u32);
        heap.push((Reverse(self.gamma[v]), v as u32));
        while let Some((Reverse(g), s)) = heap.pop() {
            let s = s as usize;
            if self.processed[s] || g != self.gamma[s] {
                continue;
            }
            if s == u {
                // Reaching the source of the new edge with negative slack
                // closes a negative cycle. Roll the half-repaired potential
                // back: it may violate still-active edges.
                let conflict = self.collect_cycle(u, tag);
                self.stats.conflicts += 1;
                for &(node, old) in self.saved_pot.iter().rev() {
                    self.pot[node as usize] = old;
                }
                self.reset_scratch();
                return Err(conflict);
            }
            self.processed[s] = true;
            self.saved_pot.push((s as u32, self.pot[s]));
            self.pot[s] += self.gamma[s];
            self.gamma[s] = 0;
            self.stats.relaxations += 1;
            for i in 0..self.out[s].len() {
                let eid = self.out[s][i];
                let e = self.edges[eid as usize];
                let t = e.v as usize;
                if self.processed[t] {
                    continue;
                }
                let cand = self.pot[s] + e.w - self.pot[t];
                if cand < self.gamma[t] {
                    if self.gamma[t] == 0 && self.parent[t] == NO_PARENT {
                        self.touched.push(t as u32);
                    }
                    self.gamma[t] = cand;
                    self.parent[t] = eid;
                    heap.push((Reverse(cand), t as u32));
                }
            }
        }
        self.reset_scratch();
        debug_assert!(self.pot[v] <= self.pot[u] + w);
        self.install(new_edge);
        Ok(())
    }

    fn install(&mut self, e: Edge) {
        let eid = self.edges.len() as u32;
        self.out[e.u as usize].push(eid);
        self.edges.push(e);
    }

    /// Walks parent pointers from `u` back to the new edge's target,
    /// collecting the cycle's tags.
    fn collect_cycle(&self, u: usize, new_tag: Lit) -> Vec<Lit> {
        let mut tags = vec![new_tag];
        let mut cur = u;
        loop {
            let pe = self.parent[cur];
            if pe == NO_PARENT {
                break; // reached v, which was seeded by the new edge
            }
            let e = self.edges[pe as usize];
            tags.push(e.tag);
            cur = e.u as usize;
        }
        tags
    }

    /// Retracts constraints until only the first `n_edges` remain (stack
    /// discipline: constraints are removed most-recent-first).
    ///
    /// # Panics
    ///
    /// Panics if `n_edges` exceeds the current count.
    pub fn truncate(&mut self, n_edges: usize) {
        assert!(n_edges <= self.edges.len());
        while self.edges.len() > n_edges {
            let e = self.edges.pop().expect("nonempty");
            let popped = self.out[e.u as usize].pop();
            debug_assert_eq!(popped, Some(self.edges.len() as u32));
        }
    }

    /// Checks the potential against every active constraint (test helper).
    pub fn is_consistent_model(&self) -> bool {
        self.edges
            .iter()
            .all(|e| self.pot[e.v as usize] <= self.pot[e.u as usize] + e.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::BVar;

    fn tag(i: u32) -> Lit {
        Lit::pos(BVar(i))
    }

    fn le(x: u32, y: u32, k: i64) -> Atom {
        Atom {
            x: IntVar(x),
            y: IntVar(y),
            k,
        }
    }

    #[test]
    fn chain_is_satisfiable() {
        let mut idl = Idl::new(5);
        for i in 0..4 {
            idl.assert(le(i, i + 1, -1), tag(i)).unwrap();
        }
        assert!(idl.is_consistent_model());
        for i in 0..4usize {
            assert!(idl.value(IntVar(i as u32)) < idl.value(IntVar(i as u32 + 1)));
        }
    }

    #[test]
    fn direct_contradiction() {
        let mut idl = Idl::new(2);
        idl.assert(le(0, 1, -1), tag(0)).unwrap(); // O0 < O1
        let confl = idl.assert(le(1, 0, -1), tag(1)).unwrap_err(); // O1 < O0
        assert_eq!(confl.len(), 2);
        assert!(confl.contains(&tag(0)) && confl.contains(&tag(1)));
        // The failed assert is not installed; the solver stays usable.
        assert_eq!(idl.n_edges(), 1);
        assert!(idl.is_consistent_model());
    }

    #[test]
    fn long_negative_cycle_reports_all_tags() {
        let mut idl = Idl::new(4);
        idl.assert(le(0, 1, -1), tag(0)).unwrap();
        idl.assert(le(1, 2, -1), tag(1)).unwrap();
        idl.assert(le(2, 3, -1), tag(2)).unwrap();
        let confl = idl.assert(le(3, 0, -1), tag(3)).unwrap_err();
        assert_eq!(confl.len(), 4);
        for i in 0..4 {
            assert!(confl.contains(&tag(i)), "missing tag {i}");
        }
    }

    #[test]
    fn zero_weight_cycle_is_fine_negative_is_not() {
        let mut idl = Idl::new(2);
        idl.assert(le(0, 1, 0), tag(0)).unwrap(); // O0 ≤ O1
        idl.assert(le(1, 0, 0), tag(1)).unwrap(); // O1 ≤ O0 (equality) — fine
        assert!(idl.is_consistent_model());
        let confl = idl.assert(le(1, 0, -1), tag(2)).unwrap_err();
        assert!(confl.contains(&tag(0)) && confl.contains(&tag(2)));
    }

    #[test]
    fn truncate_backtracks() {
        let mut idl = Idl::new(3);
        idl.assert(le(0, 1, -1), tag(0)).unwrap();
        let mark = idl.n_edges();
        idl.assert(le(1, 2, -1), tag(1)).unwrap();
        idl.assert(le(2, 0, 5), tag(2)).unwrap();
        idl.truncate(mark);
        assert_eq!(idl.n_edges(), 1);
        // Previously cyclic additions are fine after retraction.
        idl.assert(le(1, 0, -3), tag(3)).unwrap_err(); // still conflicts with tag(0)? O1-O0≤-3 & O0-O1≤-1 → cycle −4
        assert!(idl.is_consistent_model());
        idl.assert(le(2, 1, -1), tag(4)).unwrap();
        assert!(idl.value(IntVar(2)) < idl.value(IntVar(1)));
    }

    #[test]
    fn bounds_with_slack() {
        let mut idl = Idl::new(3);
        idl.assert(le(0, 1, 10), tag(0)).unwrap();
        idl.assert(le(1, 2, -20), tag(1)).unwrap();
        idl.assert(le(2, 0, 15), tag(2)).unwrap(); // cycle weight 10−20+15 = 5 ≥ 0
        assert!(idl.is_consistent_model());
        let (a, b, c) = (
            idl.value(IntVar(0)),
            idl.value(IntVar(1)),
            idl.value(IntVar(2)),
        );
        assert!(a - b <= 10 && b - c <= -20 && c - a <= 15);
        // Tightening the cycle below zero conflicts.
        let confl = idl.assert(le(2, 0, 5), tag(3)).unwrap_err();
        assert!(confl.contains(&tag(3)));
        assert!(idl.is_consistent_model());
    }

    #[test]
    fn model_survives_many_random_consistent_inserts() {
        // Assert a random forest of forward constraints over a line graph:
        // i < j for random i < j is always satisfiable.
        let mut idl = Idl::new(50);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for t in 0..500 {
            let i = (next() % 50) as u32;
            let j = (next() % 50) as u32;
            if i < j {
                idl.assert(le(i, j, -1), tag(t)).unwrap();
            }
        }
        assert!(idl.is_consistent_model());
    }
}
