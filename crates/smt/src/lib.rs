//! # rvsmt — a DPLL(T) solver for Integer Difference Logic
//!
//! The race-detection encoding of *Maximal Sound Predictive Race Detection
//! with Control Flow Abstraction* (PLDI 2014) produces, after the paper's
//! `O_a := O_b` substitution (§4), formulas in **Integer Difference Logic**:
//! boolean combinations of atoms `O_x − O_y ≤ k` over integer order
//! variables. The paper discharges them with Z3 or Yices; this crate is a
//! from-scratch implementation of the same decision procedure:
//!
//! * [`FormulaBuilder`] — hash-consed formula arena with simplifying
//!   constructors;
//! * polarity-aware Tseitin compilation to CNF;
//! * [`sat::Sat`] — a CDCL SAT core (two-watched literals, 1UIP learning,
//!   VSIDS, phase saving, Luby restarts) with a theory hook;
//! * [`Idl`] — an incremental difference-logic theory solver using
//!   Cotton–Maler potential repair with negative-cycle explanations;
//! * [`Solver`] — the DPLL(T) facade with budgets (the paper uses a
//!   60-second per-COP timeout) and model extraction.
//!
//! # Examples
//!
//! ```
//! use rvsmt::{Budget, FormulaBuilder, SmtResult, Solver};
//!
//! // Is there an order with e1 < e2 and (e2 < e3 or e3 < e1), given e3 < e2?
//! let mut f = FormulaBuilder::new();
//! let (e1, e2, e3) = (f.int_var(), f.int_var(), f.int_var());
//! let c1 = f.lt(e1, e2);
//! f.assert_term(c1);
//! let d1 = f.lt(e2, e3);
//! let d2 = f.lt(e3, e1);
//! let d = f.or2(d1, d2);
//! f.assert_term(d);
//! let c2 = f.lt(e3, e2);
//! f.assert_term(c2);
//!
//! let mut solver = Solver::new(&f);
//! assert_eq!(solver.solve(&Budget::UNLIMITED), SmtResult::Sat);
//! assert!(solver.int_value(e3) < solver.int_value(e1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod formula;
mod idl;
mod lit;
pub mod sat;
mod solver;

pub use formula::{Atom, FormulaBuilder, IntVar, Term, TermId};
pub use idl::{Idl, IdlStats};
pub use lit::{BVar, LBool, Lit};
pub use sat::{Budget, SatOutcome, SatStats, StopReason};
pub use solver::{SmtResult, SmtStats, Solver};
