//! The sequentially consistent interpreter.
//!
//! Executes a [`Program`] under a seeded (or fixed) scheduler, one statement
//! per step, emitting an instrumented [`Trace`]: reads/writes of shared
//! globals, lock operations, fork/join, wait/notify, and `branch` events at
//! every conditional test and at every array access with a non-constant
//! index (paper §4).

use std::collections::HashMap;

use rvtrace::{EventId, Loc, LockId, ThreadId, Trace, TraceBuilder, VarId, WaitToken};

use crate::rng::SmallRng;

use crate::ast::{Addr, Expr, Local, LockRef, ProcId, Stmt, StmtKind};
use crate::program::Program;

/// Thread-interleaving policy.
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Uniformly random among ready threads, seeded (reproducible).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// An explicit sequence of thread indices (in order of creation;
    /// 0 = main). Each entry schedules one step of that thread.
    Fixed(Vec<u32>),
}

/// Execution limits and policy.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// The scheduler.
    pub scheduler: Scheduler,
    /// Stop after this many steps (the trace stays a consistent prefix).
    pub max_steps: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            scheduler: Scheduler::Random { seed: 42 },
            max_steps: 1_000_000,
        }
    }
}

impl ExecConfig {
    /// Random scheduling with the given seed.
    pub fn seeded(seed: u64) -> Self {
        ExecConfig {
            scheduler: Scheduler::Random { seed },
            ..Default::default()
        }
    }
}

/// How an execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All threads ran to completion.
    Completed,
    /// The step limit was reached (trace truncated but consistent).
    StepLimit,
    /// No thread was ready (deadlock or lost notification).
    Deadlock,
    /// A fixed schedule ran out of entries before completion.
    ScheduleExhausted,
}

/// The result of executing a program.
#[derive(Debug)]
pub struct Execution {
    /// The instrumented trace.
    pub trace: Trace,
    /// Steps taken.
    pub steps: usize,
    /// How the run ended.
    pub outcome: Outcome,
}

/// Execution errors (only fixed schedules can fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The fixed schedule named a thread that is not ready at that step.
    FixedScheduleBlocked {
        /// The step index.
        step: usize,
        /// The offending thread index.
        thread: u32,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::FixedScheduleBlocked { step, thread } => {
                write!(f, "step {step}: scheduled thread {thread} is not ready")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[derive(Debug)]
struct Frame<'p> {
    block: &'p [Stmt],
    pc: usize,
    /// True when this frame is a while-loop body: completion re-tests the
    /// loop condition (the parent's pc was not advanced).
    _loop_body: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Lock(LockRef),
    Join(ProcId),
    WaitNotify(LockRef),
    Reacquire(LockRef),
    Done,
}

struct TState<'p> {
    tid: ThreadId,
    frames: Vec<Frame<'p>>,
    locals: HashMap<u32, i64>,
    status: Status,
    wait_token: Option<WaitToken>,
    wake_notify: Option<EventId>,
}

struct Interp<'p> {
    program: &'p Program,
    builder: TraceBuilder,
    threads: Vec<TState<'p>>,
    /// Lock holder (thread index) and reentrancy depth.
    holders: Vec<Option<(usize, u32)>>,
    /// Concrete values of all trace variables.
    store: Vec<i64>,
    proc_thread: Vec<Option<usize>>,
}

/// Executes the program under the given configuration.
///
/// # Errors
///
/// Only [`Scheduler::Fixed`] runs can fail, when the schedule names a thread
/// that is blocked or finished.
///
/// # Examples
///
/// ```
/// use rvsim::{execute, ExecConfig, Program, GlobalId, ProcId, stmts::*};
///
/// let p = Program::new(
///     vec![scalar("x", 0)],
///     0,
///     vec![fork(ProcId(0)), store(GlobalId(0), 1.into()), join(ProcId(0))],
///     vec![vec![store(GlobalId(0), 2.into())]],
/// );
/// let exec = execute(&p, &ExecConfig::seeded(7)).unwrap();
/// assert_eq!(exec.outcome, rvsim::Outcome::Completed);
/// assert!(exec.trace.stats().reads_writes == 2);
/// ```
pub fn execute(program: &Program, config: &ExecConfig) -> Result<Execution, ExecError> {
    let mut builder = TraceBuilder::new();
    // Register locations first so Loc ids equal Stmt::loc.
    for name in &program.loc_names {
        builder.loc(name);
    }
    // Register variables so ids match the program layout.
    let mut store = Vec::new();
    for decl in &program.globals {
        match decl.array_len {
            None => {
                let v = if decl.volatile {
                    builder.volatile_var(&decl.name)
                } else {
                    builder.var(&decl.name)
                };
                builder.initial(v, decl.initial);
                store.push(decl.initial);
            }
            Some(len) => {
                for i in 0..len {
                    let name = format!("{}[{i}]", decl.name);
                    let v = if decl.volatile {
                        builder.volatile_var(&name)
                    } else {
                        builder.var(&name)
                    };
                    builder.initial(v, decl.initial);
                    store.push(decl.initial);
                }
            }
        }
    }
    for _ in 0..program.n_locks {
        builder.new_lock("l");
    }

    let mut interp = Interp {
        program,
        builder,
        threads: vec![TState {
            tid: ThreadId::MAIN,
            frames: vec![Frame {
                block: &program.main,
                pc: 0,
                _loop_body: false,
            }],
            locals: HashMap::new(),
            status: Status::Ready,
            wait_token: None,
            wake_notify: None,
        }],
        holders: vec![None; program.n_locks as usize],
        store,
        proc_thread: vec![None; program.procs.len()],
    };

    let mut rng = match &config.scheduler {
        Scheduler::Random { seed } => Some(SmallRng::seed_from_u64(*seed)),
        Scheduler::Fixed(_) => None,
    };
    let mut fixed_pos = 0usize;
    let mut steps = 0usize;
    let outcome = loop {
        if steps >= config.max_steps {
            break Outcome::StepLimit;
        }
        let ready: Vec<usize> = (0..interp.threads.len())
            .filter(|&i| interp.is_ready(i))
            .collect();
        if ready.is_empty() {
            if interp.threads.iter().all(|t| t.status == Status::Done) {
                break Outcome::Completed;
            }
            break Outcome::Deadlock;
        }
        let chosen = match &config.scheduler {
            Scheduler::Random { .. } => {
                let r = rng.as_mut().expect("random scheduler has rng");
                ready[r.gen_range(0..ready.len())]
            }
            Scheduler::Fixed(seq) => {
                if fixed_pos >= seq.len() {
                    break Outcome::ScheduleExhausted;
                }
                let want = seq[fixed_pos] as usize;
                fixed_pos += 1;
                if !ready.contains(&want) {
                    return Err(ExecError::FixedScheduleBlocked {
                        step: steps,
                        thread: seq[fixed_pos - 1],
                    });
                }
                want
            }
        };
        interp.step(chosen);
        steps += 1;
    };
    Ok(Execution {
        trace: interp.builder.finish(),
        steps,
        outcome,
    })
}

impl<'p> Interp<'p> {
    fn is_ready(&self, i: usize) -> bool {
        let t = &self.threads[i];
        match t.status {
            Status::Ready => true,
            Status::Done | Status::WaitNotify(_) => false,
            Status::Lock(l) => match self.holders[l.0 as usize] {
                None => true,
                Some((h, _)) => h == i,
            },
            Status::Reacquire(l) => self.holders[l.0 as usize].is_none(),
            Status::Join(p) => self.proc_thread[p.0 as usize]
                .map(|ti| self.threads[ti].status == Status::Done)
                .unwrap_or(false),
        }
    }

    fn eval(locals: &HashMap<u32, i64>, e: &Expr) -> i64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Local(Local(l)) => locals.get(l).copied().unwrap_or(0),
            Expr::Add(a, b) => Self::eval(locals, a).wrapping_add(Self::eval(locals, b)),
            Expr::Sub(a, b) => Self::eval(locals, a).wrapping_sub(Self::eval(locals, b)),
            Expr::Mul(a, b) => Self::eval(locals, a).wrapping_mul(Self::eval(locals, b)),
            Expr::Mod(a, b) => {
                let d = Self::eval(locals, b);
                if d == 0 {
                    0
                } else {
                    Self::eval(locals, a).rem_euclid(d)
                }
            }
            Expr::Eq(a, b) => i64::from(Self::eval(locals, a) == Self::eval(locals, b)),
            Expr::Ne(a, b) => i64::from(Self::eval(locals, a) != Self::eval(locals, b)),
            Expr::Lt(a, b) => i64::from(Self::eval(locals, a) < Self::eval(locals, b)),
            Expr::And(a, b) => i64::from(Self::eval(locals, a) != 0 && Self::eval(locals, b) != 0),
            Expr::Or(a, b) => i64::from(Self::eval(locals, a) != 0 || Self::eval(locals, b) != 0),
            Expr::Not(a) => i64::from(Self::eval(locals, a) == 0),
        }
    }

    /// Resolves an address to a trace variable, reporting whether the
    /// access needs an implicit branch event (non-constant array index).
    fn resolve(&self, i: usize, addr: &Addr) -> (VarId, bool) {
        match addr {
            Addr::Var(g) => (VarId(self.program.base_var(*g)), false),
            Addr::Elem(g, idx_expr) => {
                let idx = Self::eval(&self.threads[i].locals, idx_expr);
                let len = self.program.globals[g.0 as usize]
                    .array_len
                    .expect("Elem addresses an array") as i64;
                let idx = idx.rem_euclid(len.max(1)) as u32;
                let implicit = !matches!(idx_expr, Expr::Const(_));
                (VarId(self.program.base_var(*g) + idx), implicit)
            }
        }
    }

    fn step(&mut self, i: usize) {
        // Complete a pending blocking operation first.
        match self.threads[i].status {
            Status::Lock(l) => {
                let depth = self.holders[l.0 as usize].map(|(_, d)| d).unwrap_or(0);
                self.holders[l.0 as usize] = Some((i, depth + 1));
                let tid = self.threads[i].tid;
                self.builder.acquire(tid, LockId(l.0));
                self.threads[i].status = Status::Ready;
                return;
            }
            Status::Reacquire(l) => {
                self.holders[l.0 as usize] = Some((i, 1));
                let token = self.threads[i]
                    .wait_token
                    .take()
                    .expect("waiting thread has token");
                let notify = self.threads[i].wake_notify.take();
                self.builder.wait_end(token, notify);
                self.threads[i].status = Status::Ready;
                return;
            }
            Status::Join(p) => {
                let child = self.proc_thread[p.0 as usize].expect("joined proc was forked");
                let (parent_tid, child_tid) = (self.threads[i].tid, self.threads[child].tid);
                self.builder.join(parent_tid, child_tid);
                self.threads[i].status = Status::Ready;
                return;
            }
            Status::Ready => {}
            Status::WaitNotify(_) | Status::Done => unreachable!("not schedulable"),
        }

        // Pop completed frames.
        while let Some(f) = self.threads[i].frames.last() {
            if f.pc < f.block.len() {
                break;
            }
            self.threads[i].frames.pop();
        }
        let Some(frame) = self.threads[i].frames.last() else {
            let tid = self.threads[i].tid;
            self.builder.end(tid);
            self.threads[i].status = Status::Done;
            return;
        };
        let stmt: &'p Stmt = &frame.block[frame.pc];
        let loc = Loc(stmt.loc);
        let tid = self.threads[i].tid;

        match &stmt.kind {
            StmtKind::Compute(Local(l), e) => {
                let v = Self::eval(&self.threads[i].locals, e);
                self.threads[i].locals.insert(*l, v);
                self.advance(i);
            }
            StmtKind::Load(Local(l), addr) => {
                let (var, implicit) = self.resolve(i, addr);
                if implicit {
                    self.builder.branch_at(tid, loc);
                }
                let v = self.store[var.index()];
                self.builder.read_at(tid, var, v, loc);
                self.threads[i].locals.insert(*l, v);
                self.advance(i);
            }
            StmtKind::Store(addr, e) => {
                let (var, implicit) = self.resolve(i, addr);
                if implicit {
                    self.builder.branch_at(tid, loc);
                }
                let v = Self::eval(&self.threads[i].locals, e);
                self.builder.write_at(tid, var, v, loc);
                self.store[var.index()] = v;
                self.advance(i);
            }
            StmtKind::Lock(l) => {
                match self.holders[l.0 as usize] {
                    None => {
                        self.holders[l.0 as usize] = Some((i, 1));
                        self.builder.acquire(tid, LockId(l.0));
                    }
                    Some((h, d)) if h == i => {
                        self.holders[l.0 as usize] = Some((i, d + 1));
                        self.builder.acquire(tid, LockId(l.0)); // filtered (reentrant)
                    }
                    Some(_) => {
                        // Block; the acquire event is emitted when granted.
                        self.threads[i].status = Status::Lock(*l);
                        self.advance(i);
                        return;
                    }
                }
                self.advance(i);
            }
            StmtKind::Unlock(l) => {
                let (h, d) = self.holders[l.0 as usize].expect("unlock of held lock");
                assert_eq!(h, i, "unlock by non-holder");
                self.builder.release(tid, LockId(l.0));
                self.holders[l.0 as usize] = if d > 1 { Some((i, d - 1)) } else { None };
                self.advance(i);
            }
            StmtKind::Fork(p) => {
                let child_tid = self.builder.fork(tid);
                assert!(
                    self.proc_thread[p.0 as usize].is_none(),
                    "procedure p{} forked twice",
                    p.0
                );
                self.proc_thread[p.0 as usize] = Some(self.threads.len());
                self.threads.push(TState {
                    tid: child_tid,
                    frames: vec![Frame {
                        block: &self.program.procs[p.0 as usize],
                        pc: 0,
                        _loop_body: false,
                    }],
                    locals: HashMap::new(),
                    status: Status::Ready,
                    wait_token: None,
                    wake_notify: None,
                });
                self.advance(i);
            }
            StmtKind::Join(p) => {
                let child = self.proc_thread[p.0 as usize].expect("join of unforked proc");
                self.advance(i);
                if self.threads[child].status == Status::Done {
                    let child_tid = self.threads[child].tid;
                    self.builder.join(tid, child_tid);
                } else {
                    self.threads[i].status = Status::Join(*p);
                }
            }
            StmtKind::If { cond, then_, else_ } => {
                let c = Self::eval(&self.threads[i].locals, cond) != 0;
                self.builder.branch_at(tid, loc);
                self.advance(i);
                let block: &'p [Stmt] = if c { then_ } else { else_ };
                self.threads[i].frames.push(Frame {
                    block,
                    pc: 0,
                    _loop_body: false,
                });
            }
            StmtKind::While { cond, body } => {
                let c = Self::eval(&self.threads[i].locals, cond) != 0;
                self.builder.branch_at(tid, loc);
                if c {
                    // Do not advance: re-test after the body completes.
                    let block: &'p [Stmt] = body;
                    self.threads[i].frames.push(Frame {
                        block,
                        pc: 0,
                        _loop_body: true,
                    });
                } else {
                    self.advance(i);
                }
            }
            StmtKind::Wait(l) => {
                let (h, d) = self.holders[l.0 as usize].expect("wait requires the lock");
                assert_eq!(h, i, "wait by non-holder");
                assert_eq!(d, 1, "wait requires outermost lock level");
                let token = self.builder.wait_begin(tid, LockId(l.0));
                self.holders[l.0 as usize] = None;
                self.threads[i].wait_token = Some(token);
                self.threads[i].status = Status::WaitNotify(*l);
                self.advance(i);
            }
            StmtKind::Notify(l) => {
                let (h, _) = self.holders[l.0 as usize].expect("notify requires the lock");
                assert_eq!(h, i, "notify by non-holder");
                let n = self.builder.notify(tid, LockId(l.0));
                self.wake_one(*l, n);
                self.advance(i);
            }
            StmtKind::NotifyAll(l) => {
                let (h, _) = self.holders[l.0 as usize].expect("notifyAll requires the lock");
                assert_eq!(h, i, "notifyAll by non-holder");
                // One notify event per waiter (paper §4).
                let waiters: Vec<usize> = (0..self.threads.len())
                    .filter(|&j| self.threads[j].status == Status::WaitNotify(*l))
                    .collect();
                if waiters.is_empty() {
                    self.builder.notify(tid, LockId(l.0));
                }
                for _ in &waiters {
                    let n = self.builder.notify(tid, LockId(l.0));
                    self.wake_one(*l, n);
                }
                self.advance(i);
            }
        }
    }

    fn wake_one(&mut self, l: LockRef, n: EventId) {
        if let Some(j) =
            (0..self.threads.len()).find(|&j| self.threads[j].status == Status::WaitNotify(l))
        {
            self.threads[j].status = Status::Reacquire(l);
            self.threads[j].wake_notify = Some(n);
        }
    }

    fn advance(&mut self, i: usize) {
        let f = self.threads[i].frames.last_mut().expect("active frame");
        f.pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GlobalId;
    use crate::program::stmts::*;
    use rvtrace::check_consistency;

    fn x() -> GlobalId {
        GlobalId(0)
    }

    #[test]
    fn straight_line_program() {
        let p = Program::new(
            vec![scalar("x", 0)],
            0,
            vec![store(x(), 1.into()), load(Local(0), x())],
            vec![],
        );
        let e = execute(&p, &ExecConfig::default()).unwrap();
        assert_eq!(e.outcome, Outcome::Completed);
        assert!(check_consistency(&e.trace).is_empty());
        assert_eq!(e.trace.stats().reads_writes, 2);
    }

    #[test]
    fn fork_join_and_locks_consistent() {
        let l = LockRef(0);
        let p = Program::new(
            vec![scalar("x", 0)],
            1,
            vec![
                fork(ProcId(0)),
                lock(l),
                store(x(), 1.into()),
                unlock(l),
                join(ProcId(0)),
                load(Local(0), x()),
            ],
            vec![vec![lock(l), store(x(), 2.into()), unlock(l)]],
        );
        for seed in 0..20 {
            let e = execute(&p, &ExecConfig::seeded(seed)).unwrap();
            assert_eq!(e.outcome, Outcome::Completed, "seed {seed}");
            assert!(check_consistency(&e.trace).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn if_emits_branch_and_takes_right_arm() {
        let p = Program::new(
            vec![scalar("x", 0)],
            0,
            vec![
                compute(Local(0), 1.into()),
                if_(
                    Expr::Local(Local(0)),
                    vec![store(x(), 10.into())],
                    vec![store(x(), 20.into())],
                ),
                load(Local(1), x()),
            ],
            vec![],
        );
        let e = execute(&p, &ExecConfig::default()).unwrap();
        assert_eq!(e.trace.stats().branches, 1);
        // The read observes 10 (then-arm).
        let last_read = e
            .trace
            .events()
            .iter()
            .rev()
            .find(|ev| ev.kind.is_read())
            .unwrap();
        assert_eq!(last_read.kind.value().unwrap().0, 10);
    }

    #[test]
    fn while_loops_and_terminates() {
        // for (i = 0; i < 5; i++) x := i
        let i = Local(0);
        let p = Program::new(
            vec![scalar("x", 0)],
            0,
            vec![
                compute(i, 0.into()),
                while_(
                    Expr::lt(i.into(), 5.into()),
                    vec![
                        store(x(), Expr::Local(i)),
                        compute(i, Expr::add(i.into(), 1.into())),
                    ],
                ),
            ],
            vec![],
        );
        let e = execute(&p, &ExecConfig::default()).unwrap();
        assert_eq!(e.outcome, Outcome::Completed);
        assert_eq!(e.trace.stats().branches, 6); // 5 true tests + 1 false
        assert_eq!(e.trace.stats().reads_writes, 5);
    }

    #[test]
    fn array_access_emits_implicit_branch() {
        let a = GlobalId(0);
        let p = Program::new(
            vec![array("a", 4, 0)],
            0,
            vec![
                compute(Local(0), 2.into()),
                store_elem(a, Expr::Local(Local(0)), 7.into()), // non-const index
                store_elem(a, 1.into(), 9.into()),              // const index
            ],
            vec![],
        );
        let e = execute(&p, &ExecConfig::default()).unwrap();
        assert_eq!(
            e.trace.stats().branches,
            1,
            "only the non-constant index branches"
        );
        // a[2] and a[1] are distinct trace variables.
        let vars: Vec<_> = e
            .trace
            .events()
            .iter()
            .filter_map(|ev| ev.kind.var())
            .collect();
        assert_eq!(vars.len(), 2);
        assert_ne!(vars[0], vars[1]);
    }

    #[test]
    fn wait_notify_roundtrip() {
        let l = LockRef(0);
        let r0 = Local(0);
        // Main does the classic guarded wait (while x == 0 wait), so a
        // notify that fires before the wait is not lost.
        let p = Program::new(
            vec![scalar("x", 0)],
            1,
            vec![
                fork(ProcId(0)),
                lock(l),
                load(r0, x()),
                while_(Expr::eq(r0.into(), 0.into()), vec![wait(l), load(r0, x())]),
                unlock(l),
                join(ProcId(0)),
            ],
            vec![vec![lock(l), store(x(), 1.into()), notify(l), unlock(l)]],
        );
        let mut saw_link = false;
        for seed in 0..20 {
            let e = execute(&p, &ExecConfig::seeded(seed)).unwrap();
            assert_eq!(e.outcome, Outcome::Completed, "seed {seed}");
            assert!(check_consistency(&e.trace).is_empty());
            if let Some(wl) = e.trace.wait_links().first() {
                assert!(wl.notify.is_some());
                saw_link = true;
            }
        }
        assert!(saw_link, "at least one schedule should actually wait");
    }

    #[test]
    fn lock_contention_blocks_and_resumes() {
        let l = LockRef(0);
        let p = Program::new(
            vec![scalar("x", 0)],
            1,
            vec![
                fork(ProcId(0)),
                lock(l),
                store(x(), 1.into()),
                store(x(), 2.into()),
                unlock(l),
                join(ProcId(0)),
            ],
            vec![vec![lock(l), store(x(), 3.into()), unlock(l)]],
        );
        for seed in 0..30 {
            let e = execute(&p, &ExecConfig::seeded(seed)).unwrap();
            assert_eq!(e.outcome, Outcome::Completed);
            assert!(check_consistency(&e.trace).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn fixed_schedule_controls_interleaving() {
        let p = Program::new(
            vec![scalar("x", 0)],
            0,
            vec![fork(ProcId(0)), store(x(), 1.into())],
            vec![vec![store(x(), 2.into())]],
        );
        // main forks, child writes, main writes, both end.
        let cfg = ExecConfig {
            scheduler: Scheduler::Fixed(vec![0, 1, 0, 1, 0]),
            max_steps: 100,
        };
        let e = execute(&p, &cfg).unwrap();
        assert_eq!(e.outcome, Outcome::Completed);
        let writes: Vec<_> = e
            .trace
            .events()
            .iter()
            .filter(|ev| ev.kind.is_write())
            .map(|ev| ev.kind.value().unwrap().0)
            .collect();
        assert_eq!(writes, vec![2, 1], "child write scheduled first");
    }

    #[test]
    fn fixed_schedule_blocked_errors() {
        let p = Program::new(vec![scalar("x", 0)], 0, vec![store(x(), 1.into())], vec![]);
        let cfg = ExecConfig {
            scheduler: Scheduler::Fixed(vec![1]),
            max_steps: 10,
        };
        assert!(matches!(
            execute(&p, &cfg),
            Err(ExecError::FixedScheduleBlocked { .. })
        ));
    }

    #[test]
    fn step_limit_truncates_infinite_loop() {
        let p = Program::new(
            vec![scalar("x", 0)],
            0,
            vec![while_(Expr::Const(1), vec![store(x(), 1.into())])],
            vec![],
        );
        let cfg = ExecConfig {
            max_steps: 50,
            ..Default::default()
        };
        let e = execute(&p, &cfg).unwrap();
        assert_eq!(e.outcome, Outcome::StepLimit);
        assert!(check_consistency(&e.trace).is_empty());
        assert!(!e.trace.is_empty());
    }

    #[test]
    fn deadlock_detected() {
        let (l1, l2) = (LockRef(0), LockRef(1));
        let p = Program::new(
            vec![scalar("x", 0)],
            2,
            vec![fork(ProcId(0)), lock(l1), lock(l2), unlock(l2), unlock(l1)],
            vec![vec![lock(l2), lock(l1), unlock(l1), unlock(l2)]],
        );
        // Force the classic interleaving: main takes l1, child takes l2.
        let cfg = ExecConfig {
            scheduler: Scheduler::Fixed(vec![0, 0, 1, 1, 0, 1]),
            max_steps: 100,
        };
        match execute(&p, &cfg) {
            Ok(e) => assert_eq!(e.outcome, Outcome::Deadlock),
            Err(err) => panic!("unexpected: {err}"),
        }
    }
}
