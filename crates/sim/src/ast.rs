//! The mini concurrent language.
//!
//! A small imperative language in the spirit of the paper's Theorem 2 proof
//! language, extended with loops, conditionals and arrays so that realistic
//! workloads can be written in it:
//!
//! * shared (global) scalars and arrays, read/written only through
//!   `Load`/`Store` statements (each emits a trace event);
//! * thread-local variables combined by event-free expressions;
//! * locks, fork/join, wait/notify;
//! * `If`/`While` whose conditions are local expressions — evaluating one
//!   emits a `branch` event (the paper's control-flow abstraction);
//! * array accesses with a non-constant index emit an *implicit* `branch`
//!   event before the access (paper §4).

use std::fmt;

/// Index of a thread-local variable within its procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Local(pub u32);

/// Index of a global (shared) declaration in [`Program::globals`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Index of a lock in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockRef(pub u32);

/// Index of a procedure in [`Program::procs`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

/// An event-free expression over thread-local variables and constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Value of a local.
    Local(Local),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean remainder (modulo 0 evaluates to 0 rather than trapping).
    Mod(Box<Expr>, Box<Expr>),
    /// Equality (1/0).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality (1/0).
    Ne(Box<Expr>, Box<Expr>),
    /// Less-than (1/0).
    Lt(Box<Expr>, Box<Expr>),
    /// Logical and over 0/non-0.
    And(Box<Expr>, Box<Expr>),
    /// Logical or over 0/non-0.
    Or(Box<Expr>, Box<Expr>),
    /// Logical not over 0/non-0.
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience: `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }
    /// Convenience: `a + b`.
    #[allow(clippy::should_implement_trait)] // static constructor, not ops::Add
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    /// Convenience: `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Lt(Box::new(a), Box::new(b))
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Const(v)
    }
}

impl From<Local> for Expr {
    fn from(l: Local) -> Expr {
        Expr::Local(l)
    }
}

/// A shared-memory address: a scalar global or one array element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A scalar global.
    Var(GlobalId),
    /// `array[index]`; a non-constant index emits an implicit branch event
    /// before the access (paper §4).
    Elem(GlobalId, Expr),
}

/// The operation of a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `local := addr` — emits a read event.
    Load(Local, Addr),
    /// `addr := expr` — emits a write event.
    Store(Addr, Expr),
    /// `local := expr` — thread-local, emits no event.
    Compute(Local, Expr),
    /// Acquire a lock (blocking).
    Lock(LockRef),
    /// Release a lock.
    Unlock(LockRef),
    /// Fork the given procedure as a new thread. Each procedure may be
    /// forked at most once per execution.
    Fork(ProcId),
    /// Block until the forked procedure's thread terminates.
    Join(ProcId),
    /// `if (cond) { then } else { else_ }` — emits a branch event when the
    /// condition is evaluated.
    If {
        /// Condition over locals (non-zero = true).
        cond: Expr,
        /// Taken when the condition is non-zero.
        then_: Vec<Stmt>,
        /// Taken when the condition is zero.
        else_: Vec<Stmt>,
    },
    /// `while (cond) { body }` — emits a branch event at every test.
    While {
        /// Condition over locals (non-zero = continue).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Release the lock and block until notified (Java `wait()`).
    Wait(LockRef),
    /// Wake one waiter (Java `notify()`).
    Notify(LockRef),
    /// Wake all waiters (Java `notifyAll()`).
    NotifyAll(LockRef),
}

/// One statement: an operation plus its static location (assigned by
/// [`Program::new`](crate::Program::new); used for race signatures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The operation.
    pub kind: StmtKind,
    /// The static location id (0 until the program is finalized).
    pub loc: u32,
}

impl Stmt {
    /// Wraps a kind with an unassigned location.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt { kind, loc: 0 }
    }
}

impl From<StmtKind> for Stmt {
    fn from(kind: StmtKind) -> Stmt {
        Stmt::new(kind)
    }
}

impl fmt::Display for StmtKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmtKind::Load(l, a) => write!(f, "r{} := {a:?}", l.0),
            StmtKind::Store(a, e) => write!(f, "{a:?} := {e:?}"),
            StmtKind::Compute(l, e) => write!(f, "r{} := {e:?}", l.0),
            StmtKind::Lock(l) => write!(f, "lock l{}", l.0),
            StmtKind::Unlock(l) => write!(f, "unlock l{}", l.0),
            StmtKind::Fork(p) => write!(f, "fork p{}", p.0),
            StmtKind::Join(p) => write!(f, "join p{}", p.0),
            StmtKind::If { .. } => write!(f, "if (...)"),
            StmtKind::While { .. } => write!(f, "while (...)"),
            StmtKind::Wait(l) => write!(f, "wait l{}", l.0),
            StmtKind::Notify(l) => write!(f, "notify l{}", l.0),
            StmtKind::NotifyAll(l) => write!(f, "notifyAll l{}", l.0),
        }
    }
}

/// Declaration of a shared global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Debug name.
    pub name: String,
    /// Array length (`None` for scalars).
    pub array_len: Option<u32>,
    /// Whether the global is volatile (paper §4: conflicting volatile
    /// accesses are not data races).
    pub volatile: bool,
    /// Initial value of the scalar / every element.
    pub initial: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_sugar() {
        let e = Expr::eq(Expr::from(Local(0)), 1.into());
        assert_eq!(
            e,
            Expr::Eq(Box::new(Expr::Local(Local(0))), Box::new(Expr::Const(1)))
        );
        let a = Expr::add(1.into(), 2.into());
        assert!(matches!(a, Expr::Add(_, _)));
    }

    #[test]
    fn stmt_wrapping() {
        let s: Stmt = StmtKind::Lock(LockRef(0)).into();
        assert_eq!(s.loc, 0);
        assert_eq!(format!("{}", s.kind), "lock l0");
    }
}
