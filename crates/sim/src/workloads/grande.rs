//! Fork/join numeric kernels in the style of the Java Grande rows of
//! Table 1 (`crypt`, `lufact`, `series`): larger loops, mostly disjoint
//! array work, few races.

use crate::ast::{Expr, GlobalId, Local, ProcId, Stmt};
use crate::program::{stmts::*, Program};

use super::Workload;

fn fork_join_main(n: usize, mut extra: Vec<Stmt>) -> Vec<Stmt> {
    let mut main: Vec<Stmt> = (0..n as u32).map(ProcId).map(fork).collect();
    main.extend((0..n as u32).map(ProcId).map(join));
    main.append(&mut extra);
    main
}

/// `crypt`: workers transform disjoint slices of a shared array; a shared
/// progress counter is bumped without synchronization (the planted race).
pub fn crypt(n_workers: usize, slice: u32) -> Program {
    let data = GlobalId(0);
    let progress = GlobalId(1);
    let (r, i) = (Local(0), Local(1));
    let len = n_workers as u32 * slice;
    let worker = |w: usize| {
        let lo = (w as u32 * slice) as i64;
        let hi = lo + slice as i64;
        vec![
            compute(i, lo.into()),
            while_(
                Expr::lt(i.into(), hi.into()),
                vec![
                    load_elem(r, data, i.into()),
                    store_elem(
                        data,
                        i.into(),
                        Expr::add(Expr::Mul(Box::new(r.into()), Box::new(3.into())), 1.into()),
                    ),
                    compute(i, Expr::add(i.into(), 1.into())),
                ],
            ),
            load(r, progress),
            store(progress, Expr::add(r.into(), 1.into())), // racy progress
        ]
    };
    Program::new(
        vec![array("data", len, 1), scalar("progress", 0)],
        0,
        fork_join_main(n_workers, vec![load(Local(2), progress)]),
        (0..n_workers).map(worker).collect(),
    )
}

/// `lufact`: workers eliminate disjoint row blocks but all read the pivot
/// value; the pivot is written by worker 0 *without* the lock the readers
/// use (the planted race), while a properly locked counter stays clean.
pub fn lufact(n_workers: usize, rows: u32) -> Program {
    let matrix = GlobalId(0);
    let pivot = GlobalId(1);
    let done = GlobalId(2);
    let l = crate::ast::LockRef(0);
    let (r, p, i) = (Local(0), Local(1), Local(2));
    let worker = |w: usize| {
        let lo = (w as u32 * rows) as i64;
        let hi = lo + rows as i64;
        let mut body = Vec::new();
        if w == 0 {
            body.push(store(pivot, 5.into())); // unprotected pivot write
        }
        body.extend([
            load(p, pivot), // unprotected pivot read — races with worker 0
            compute(i, lo.into()),
            while_(
                Expr::lt(i.into(), hi.into()),
                vec![
                    load_elem(r, matrix, i.into()),
                    store_elem(
                        matrix,
                        i.into(),
                        Expr::Sub(Box::new(r.into()), Box::new(p.into())),
                    ),
                    compute(i, Expr::add(i.into(), 1.into())),
                ],
            ),
            lock(l),
            load(r, done),
            store(done, Expr::add(r.into(), 1.into())),
            unlock(l),
        ]);
        body
    };
    Program::new(
        vec![
            array("matrix", n_workers as u32 * rows, 9),
            scalar("pivot", 1),
            scalar("done", 0),
        ],
        1,
        fork_join_main(n_workers, vec![load(Local(3), done)]),
        (0..n_workers).map(worker).collect(),
    )
}

/// `series`: fully disciplined fork/join reduction — every shared update is
/// lock-protected, so the trace is race-free (a negative control, like the
/// race-free Grande rows of Table 1).
pub fn series(n_workers: usize, terms: u32) -> Program {
    let sum = GlobalId(0);
    let l = crate::ast::LockRef(0);
    let (r, acc, i) = (Local(0), Local(1), Local(2));
    let worker = vec![
        compute(acc, 0.into()),
        compute(i, 0.into()),
        while_(
            Expr::lt(i.into(), (terms as i64).into()),
            vec![
                compute(acc, Expr::add(acc.into(), Expr::add(i.into(), 1.into()))),
                compute(i, Expr::add(i.into(), 1.into())),
            ],
        ),
        lock(l),
        load(r, sum),
        store(sum, Expr::add(r.into(), Expr::Local(acc))),
        unlock(l),
    ];
    Program::new(
        vec![scalar("sum", 0)],
        1,
        fork_join_main(n_workers, vec![load(Local(3), sum)]),
        (0..n_workers).map(|_| worker.clone()).collect(),
    )
}

/// All grande-class workloads at their Table 1 default sizes.
pub fn all() -> Vec<Workload> {
    vec![
        Workload::run("crypt", &crypt(3, 8), 21),
        Workload::run("lufact", &lufact(3, 6), 22),
        Workload::run("series", &series(3, 8), 23),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::check_consistency;

    #[test]
    fn grande_traces_consistent_and_sized() {
        for w in all() {
            assert!(check_consistency(&w.trace).is_empty(), "{}", w.name);
            assert!(w.trace.stats().events > 50, "{}: too small", w.name);
        }
    }

    #[test]
    fn series_sum_is_correct() {
        // 3 workers × Σ(1..=8) = 3 × 36 = 108 when execution completes.
        let w = Workload::run("series", &series(3, 8), 4);
        let last = w
            .trace
            .events()
            .iter()
            .rev()
            .find(|e| e.kind.is_read())
            .unwrap();
        assert_eq!(last.kind.value().unwrap().0, 108);
    }
}
