//! Parameterized server-style workload generators standing in for the
//! real-system rows of Table 1 (`ftpserver`, `jigsaw`, `derby`, `sunflow`,
//! `xalan`, `lusearch`, `eclipse`).
//!
//! We cannot run the instrumented Java systems, so each row is substituted
//! by a generated program whose trace profile matches the class of the
//! original: many threads, a mix of disciplined lock-protected state,
//! computed array indexing (implicit branches), guarded reads (real control
//! dependence), unprotected "racy" state (planted races), volatile
//! handshakes without control dependence (the Figure 2 ① pattern only the
//! maximal technique catches), and optionally a wait/notify handshake. The
//! `scale` knob multiplies per-worker iterations, scaling traces from
//! thousands to millions of events.

use crate::ast::{Expr, GlobalId, Local, LockRef, ProcId, Stmt};
use crate::program::{stmts::*, Program};
use crate::rng::SmallRng;

use super::Workload;

/// Shape parameters for a generated system workload.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// Row name.
    pub name: &'static str,
    /// Number of worker threads.
    pub threads: usize,
    /// Per-worker loop iterations.
    pub iterations: usize,
    /// Lock-protected shared scalars (consistent lock discipline).
    pub protected: u32,
    /// Unprotected shared scalars (planted races).
    pub racy: u32,
    /// Volatile flags used for handshakes without control dependence.
    pub volatiles: u32,
    /// Figure 1 pattern pairs (lock regions conflicting on `fy` with a racy
    /// `fx` that only the maximal technique can prove; §1).
    pub fig1_pairs: u32,
    /// Shared arrays (accessed with computed indexes → implicit branches).
    pub arrays: u32,
    /// Elements per array.
    pub array_len: u32,
    /// Number of locks (protected scalar `s` uses lock `s % locks`).
    pub locks: u32,
    /// Include a guarded wait/notify handshake between main and a worker.
    pub wait_notify: bool,
    /// Generator seed (also used for scheduling).
    pub seed: u64,
}

impl SystemProfile {
    /// Scales per-worker iterations by `factor`.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.iterations = ((self.iterations as f64 * factor).round() as usize).max(1);
        self
    }
}

/// The seven real-system analog profiles, at a default size of a few
/// thousand events each (pass larger `scale` values to the binary harness
/// for paper-sized runs).
pub fn profiles() -> Vec<SystemProfile> {
    vec![
        SystemProfile {
            name: "ftpserver",
            threads: 10,
            iterations: 12,
            protected: 8,
            racy: 5,
            volatiles: 2,
            fig1_pairs: 2,
            arrays: 2,
            array_len: 8,
            locks: 6,
            wait_notify: false,
            seed: 101,
        },
        SystemProfile {
            name: "jigsaw",
            threads: 10,
            iterations: 10,
            protected: 10,
            racy: 3,
            volatiles: 2,
            fig1_pairs: 2,
            arrays: 2,
            array_len: 8,
            locks: 8,
            wait_notify: false,
            seed: 102,
        },
        SystemProfile {
            name: "derby",
            threads: 8,
            iterations: 24,
            protected: 16,
            racy: 6,
            volatiles: 2,
            fig1_pairs: 2,
            arrays: 3,
            array_len: 8,
            locks: 12,
            wait_notify: false,
            seed: 103,
        },
        SystemProfile {
            name: "sunflow",
            threads: 8,
            iterations: 16,
            protected: 4,
            racy: 2,
            volatiles: 1,
            fig1_pairs: 2,
            arrays: 4,
            array_len: 16,
            locks: 2,
            wait_notify: false,
            seed: 104,
        },
        SystemProfile {
            name: "xalan",
            threads: 8,
            iterations: 16,
            protected: 8,
            racy: 3,
            volatiles: 2,
            fig1_pairs: 2,
            arrays: 2,
            array_len: 8,
            locks: 8,
            wait_notify: false,
            seed: 105,
        },
        SystemProfile {
            name: "lusearch",
            threads: 8,
            iterations: 16,
            protected: 4,
            racy: 8,
            volatiles: 2,
            fig1_pairs: 2,
            arrays: 2,
            array_len: 8,
            locks: 4,
            wait_notify: false,
            seed: 106,
        },
        SystemProfile {
            name: "eclipse",
            threads: 12,
            iterations: 16,
            protected: 12,
            racy: 4,
            volatiles: 3,
            fig1_pairs: 2,
            arrays: 2,
            array_len: 8,
            locks: 10,
            wait_notify: true,
            seed: 107,
        },
    ]
}

/// Global layout: protected scalars, racy scalars, volatile flags, shadow
/// scalars (one per volatile, for the Figure 2 ① pattern), Figure 1 pattern
/// pairs (fx/fy), then arrays.
struct Layout {
    protected: u32,
    racy: u32,
    volatiles: u32,
    fig1_pairs: u32,
    arrays: u32,
}

impl Layout {
    fn protected(&self, i: u32) -> GlobalId {
        GlobalId(i % self.protected.max(1))
    }
    fn racy(&self, i: u32) -> GlobalId {
        GlobalId(self.protected + i % self.racy.max(1))
    }
    fn volatile(&self, i: u32) -> GlobalId {
        GlobalId(self.protected + self.racy + i % self.volatiles.max(1))
    }
    fn shadow(&self, i: u32) -> GlobalId {
        GlobalId(self.protected + self.racy + self.volatiles + i % self.volatiles.max(1))
    }
    fn fig1_x(&self, i: u32) -> GlobalId {
        GlobalId(self.protected + self.racy + 2 * self.volatiles + 2 * (i % self.fig1_pairs.max(1)))
    }
    fn fig1_y(&self, i: u32) -> GlobalId {
        GlobalId(
            self.protected + self.racy + 2 * self.volatiles + 2 * (i % self.fig1_pairs.max(1)) + 1,
        )
    }
    fn cp_x(&self, i: u32) -> GlobalId {
        GlobalId(
            self.protected
                + self.racy
                + 2 * self.volatiles
                + 2 * self.fig1_pairs
                + 2 * (i % self.fig1_pairs.max(1)),
        )
    }
    fn cp_z(&self, i: u32) -> GlobalId {
        GlobalId(
            self.protected
                + self.racy
                + 2 * self.volatiles
                + 2 * self.fig1_pairs
                + 2 * (i % self.fig1_pairs.max(1))
                + 1,
        )
    }
    fn array(&self, i: u32) -> GlobalId {
        GlobalId(
            self.protected
                + self.racy
                + 2 * self.volatiles
                + 4 * self.fig1_pairs
                + i % self.arrays.max(1),
        )
    }
    /// The wait/notify handshake flag (the slot after the arrays).
    fn hs_flag(&self) -> GlobalId {
        GlobalId(
            self.protected + self.racy + 2 * self.volatiles + 4 * self.fig1_pairs + self.arrays,
        )
    }
}

/// The Figure 1 pattern, writer half: a critical section writing `fx` then
/// `fy` (a constant, so Said et al. can re-match reads across writers).
fn fig1_writer(lay: &Layout, l: LockRef, k: u32) -> Vec<Stmt> {
    vec![
        lock(l),
        store(lay.fig1_x(k), 3.into()),
        store(lay.fig1_y(k), 7.into()),
        unlock(l),
    ]
}

/// The Figure 1 pattern, reader half: a critical section reading `fy`, then
/// an unprotected read of `fx` with no intervening branch — the race only
/// the maximal technique proves (CP is blocked by the `fy` conflict, HB by
/// the lock edge).
fn fig1_reader(lay: &Layout, l: LockRef, k: u32) -> Vec<Stmt> {
    vec![
        lock(l),
        load(Local(7), lay.fig1_y(k)),
        unlock(l),
        load(Local(5), lay.fig1_x(k)),
    ]
}

/// The CP pattern, writer half: early-phase critical sections that write
/// `cx` and nothing else.
fn cp_writer(lay: &Layout, l: LockRef, k: u32, worker: usize, iterations: usize) -> Vec<Stmt> {
    let half = (iterations / 2) as i64;
    vec![if_(
        Expr::lt(Expr::Local(Local(1)), half.into()),
        vec![
            lock(l),
            store(lay.cp_x(k), (worker as i64).into()),
            unlock(l),
        ],
        vec![],
    )]
}

/// The CP pattern, reader half: late-phase critical sections touching only
/// `cz`, followed by an unprotected read of `cx`. Instances are HB-ordered
/// through the lock edge (writers run early, readers late), but the regions
/// do not conflict, so CP sees the race (POPL'12) — and so do Said and RV.
fn cp_reader(lay: &Layout, l: LockRef, k: u32, iterations: usize) -> Vec<Stmt> {
    let half = (iterations / 2) as i64;
    vec![if_(
        Expr::lt(Expr::Const(half - 1), Expr::Local(Local(1))),
        vec![
            lock(l),
            store(lay.cp_z(k), 1.into()),
            unlock(l),
            load(Local(6), lay.cp_x(k)),
        ],
        vec![],
    )]
}

/// Builds the program for a profile.
pub fn program_for(p: &SystemProfile) -> Program {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let lay = Layout {
        protected: p.protected,
        racy: p.racy,
        volatiles: p.volatiles,
        fig1_pairs: p.fig1_pairs,
        arrays: p.arrays,
    };
    let mut globals = Vec::new();
    for i in 0..p.protected {
        globals.push(scalar(&format!("prot{i}"), 0));
    }
    for i in 0..p.racy {
        globals.push(scalar(&format!("racy{i}"), 0));
    }
    for i in 0..p.volatiles {
        globals.push(volatile_scalar(&format!("vol{i}"), 0));
    }
    for i in 0..p.volatiles {
        globals.push(scalar(&format!("shadow{i}"), 0));
    }
    for i in 0..p.fig1_pairs {
        globals.push(scalar(&format!("fx{i}"), 0));
        globals.push(scalar(&format!("fy{i}"), 0));
    }
    for i in 0..p.fig1_pairs {
        globals.push(scalar(&format!("cx{i}"), 0));
        globals.push(scalar(&format!("cz{i}"), 0));
    }
    for i in 0..p.arrays {
        globals.push(array(&format!("arr{i}"), p.array_len, 0));
    }
    globals.push(scalar("hs_flag", 0));

    let (r, i, w) = (Local(0), Local(1), Local(2));
    // Dedicated locks: the Figure-1 and CP patterns must not share locks
    // with the general traffic, or rule-(b)/(c) chains through conflicting
    // neighbour regions would re-order them for CP anyway.
    let fig1_lock = |k: u32| LockRef(p.locks + k % p.fig1_pairs.max(1));
    let cp_lock = |k: u32| LockRef(p.locks + p.fig1_pairs + k % p.fig1_pairs.max(1));
    let hs_lock = LockRef(p.locks + 2 * p.fig1_pairs); // handshake lock

    let mut procs: Vec<Vec<Stmt>> = Vec::new();
    for worker in 0..p.threads {
        let mut ops: Vec<Stmt> = Vec::new();
        // One guaranteed pattern op per worker so every profile exercises
        // the Figure-1 and CP shapes regardless of the random draw.
        {
            let k = (worker as u32 / 4) % p.fig1_pairs.max(1);
            match worker % 4 {
                0 => ops.extend(fig1_writer(&lay, fig1_lock(k), k)),
                1 => ops.extend(fig1_reader(&lay, fig1_lock(k), k)),
                2 => ops.extend(cp_writer(&lay, cp_lock(k), k, worker, p.iterations)),
                _ => ops.extend(cp_reader(&lay, cp_lock(k), k, p.iterations)),
            }
        }
        for _ in 0..3 {
            match rng.gen_range(0..100) {
                // Disciplined lock-protected read-modify-write.
                0..=29 => {
                    let s = rng.gen_range(0..p.protected.max(1));
                    let g = lay.protected(s);
                    let l = LockRef(s % p.locks.max(1));
                    ops.extend([
                        lock(l),
                        load(r, g),
                        store(g, Expr::add(r.into(), 1.into())),
                        unlock(l),
                    ]);
                }
                // Array update with a computed index (implicit branch),
                // under the array's own consistent lock (race-free).
                30..=49 => {
                    let ai = rng.gen_range(0..p.arrays.max(1));
                    let a = lay.array(ai);
                    let l = LockRef(ai % p.locks.max(1));
                    let idx = Expr::Mod(
                        Box::new(Expr::add(i.into(), (rng.gen_range(0..7) as i64).into())),
                        Box::new((p.array_len as i64).into()),
                    );
                    ops.extend([
                        lock(l),
                        load_elem(r, a, idx.clone()),
                        store_elem(a, idx, Expr::add(r.into(), 1.into())),
                        unlock(l),
                    ]);
                }
                // Unprotected racy access (the planted races).
                50..=58 => {
                    let g = lay.racy(rng.gen_range(0..p.racy.max(1)));
                    ops.extend([load(r, g), store(g, Expr::add(r.into(), 1.into()))]);
                }
                // The CP pattern (see `cp_writer`/`cp_reader`).
                59..=62 => {
                    let k = rng.gen_range(0..p.fig1_pairs.max(1));
                    if worker % 2 == 0 {
                        ops.extend(cp_writer(&lay, cp_lock(k), k, worker, p.iterations));
                    } else {
                        ops.extend(cp_reader(&lay, cp_lock(k), k, p.iterations));
                    }
                }
                // Guarded read: real control dependence through a branch;
                // the guarded access stays under its var's consistent lock
                // so only the control flow (not a race) is exercised.
                63..=76 => {
                    let v = lay.volatile(rng.gen_range(0..p.volatiles.max(1)));
                    let gi = rng.gen_range(0..p.protected.max(1));
                    let g = lay.protected(gi);
                    let l = LockRef(gi % p.locks.max(1));
                    ops.extend([
                        load(r, v),
                        if_(
                            Expr::eq(r.into(), (worker as i64).into()),
                            vec![lock(l), load(Local(3), g), unlock(l)],
                            vec![],
                        ),
                    ]);
                }
                // The Figure 1 pattern (see `fig1_writer`/`fig1_reader`).
                77..=88 => {
                    let k = rng.gen_range(0..p.fig1_pairs.max(1));
                    if worker % 2 == 0 {
                        ops.extend(fig1_writer(&lay, fig1_lock(k), k));
                    } else {
                        ops.extend(fig1_reader(&lay, fig1_lock(k), k));
                    }
                }
                // Figure 2 ① pattern: volatile handshake with NO control
                // dependence — only the maximal technique sees the shadow
                // race through the volatile HB edge.
                _ => {
                    let k = rng.gen_range(0..p.volatiles.max(1));
                    if worker % 2 == 0 {
                        ops.extend([
                            store(lay.shadow(k), (worker as i64).into()),
                            store(lay.volatile(k), 1.into()),
                        ]);
                    } else {
                        ops.extend([load(r, lay.volatile(k)), load(Local(4), lay.shadow(k))]);
                    }
                }
            }
        }
        let mut body = vec![compute(w, (worker as i64).into()), compute(i, 0.into())];
        body.push(while_(Expr::lt(i.into(), (p.iterations as i64).into()), {
            let mut inner = ops;
            inner.push(compute(i, Expr::add(i.into(), 1.into())));
            inner
        }));
        if p.wait_notify && worker == 0 {
            // The signaller half of the handshake.
            body.extend([
                lock(hs_lock),
                store(lay.hs_flag(), 1.into()),
                notify(hs_lock),
                unlock(hs_lock),
            ]);
        }
        procs.push(body);
    }

    // Two dedicated CP-demonstration threads: the writer's tiny loop of
    // cx-writing critical sections finishes long before the reader's
    // compute-delayed, non-conflicting cz region and unprotected cx read,
    // so every dynamic instance is HB-ordered through the lock edge while
    // CP (and Said, and RV) see the race. The reader performs no shared
    // reads before the pattern, keeping the maximal encoding satisfiable.
    let cpd_lock = LockRef(p.locks + 2 * p.fig1_pairs + 1);
    procs.push(vec![
        compute(i, 0.into()),
        while_(
            Expr::lt(i.into(), 3.into()),
            vec![
                lock(cpd_lock),
                store(lay.cp_x(0), 9.into()),
                unlock(cpd_lock),
                compute(i, Expr::add(i.into(), 1.into())),
            ],
        ),
    ]);
    let delay = (p.iterations as i64 * 40).max(200);
    procs.push(vec![
        compute(i, 0.into()),
        while_(
            Expr::lt(i.into(), delay.into()),
            vec![compute(i, Expr::add(i.into(), 1.into()))],
        ),
        lock(cpd_lock),
        store(lay.cp_z(0), 1.into()),
        unlock(cpd_lock),
        load(Local(6), lay.cp_x(0)),
    ]);

    let n_procs = procs.len() as u32;
    let mut main: Vec<Stmt> = (0..n_procs).map(ProcId).map(fork).collect();
    if p.wait_notify {
        // Guarded wait: no lost-notification deadlock.
        main.extend([
            lock(hs_lock),
            load(r, lay.hs_flag()),
            while_(
                Expr::eq(r.into(), 0.into()),
                vec![wait(hs_lock), load(r, lay.hs_flag())],
            ),
            unlock(hs_lock),
        ]);
    }
    main.extend((0..n_procs).map(ProcId).map(join));
    for g in 0..p.protected.min(4) {
        main.push(load(Local(5), lay.protected(g)));
    }
    let n_locks = p.locks + 2 * p.fig1_pairs + 2;
    Program::new(globals, n_locks.max(1), main, procs)
}

/// Generates the workload for a profile.
pub fn generate(p: &SystemProfile) -> Workload {
    Workload::run(p.name, &program_for(p), p.seed.wrapping_mul(0x9e37_79b9))
}

/// All seven system-class workloads at default scale.
pub fn all() -> Vec<Workload> {
    profiles().iter().map(generate).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::check_consistency;

    #[test]
    fn system_traces_consistent() {
        for p in profiles() {
            let w = generate(&p);
            assert!(check_consistency(&w.trace).is_empty(), "{}", w.name);
            let s = w.trace.stats();
            assert!(s.threads >= p.threads, "{}", w.name);
            assert!(s.branches > 0, "{}: no branch events", w.name);
            assert!(s.syncs > 0, "{}", w.name);
        }
    }

    #[test]
    fn scaling_multiplies_events() {
        let p = profiles().remove(0);
        let small = generate(&p);
        let big = generate(&p.clone().scaled(3.0));
        assert!(
            big.trace.len() > small.trace.len() * 2,
            "scale 3 should ~triple events: {} vs {}",
            big.trace.len(),
            small.trace.len()
        );
    }

    #[test]
    fn eclipse_has_wait_notify() {
        let p = profiles()
            .into_iter()
            .find(|p| p.name == "eclipse")
            .unwrap();
        let w = generate(&p);
        // The handshake may or may not actually wait depending on the
        // schedule, but the flag accesses must be present.
        assert!(w.trace.data().var_names.values().any(|n| n == "hs_flag"));
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profiles().remove(2);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.trace.events(), b.trace.events());
    }
}
