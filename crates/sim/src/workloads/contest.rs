//! Small racy benchmarks in the style of the IBM Contest suite rows of
//! Table 1 (`account`, `airline`, …): classic concurrency-bug patterns
//! with a handful of threads and known planted races.

use crate::ast::{Expr, GlobalId, Local, LockRef, ProcId, Stmt};
use crate::program::{stmts::*, Program};

use super::Workload;

fn worker_ids(n: usize) -> Vec<ProcId> {
    (0..n as u32).map(ProcId).collect()
}

fn fork_all(n: usize) -> Vec<Stmt> {
    worker_ids(n).into_iter().map(fork).collect()
}

fn join_all(n: usize) -> Vec<Stmt> {
    worker_ids(n).into_iter().map(join).collect()
}

/// `account`: deposits under a lock, but an unprotected audit read of the
/// balance races with the deposit writes.
pub fn account(n_threads: usize, deposits: usize) -> Program {
    let balance = GlobalId(0);
    let l = LockRef(0);
    let r = Local(0);
    let i = Local(1);
    let deposit_loop = vec![
        compute(i, 0.into()),
        while_(
            Expr::lt(i.into(), (deposits as i64).into()),
            vec![
                lock(l),
                load(r, balance),
                store(balance, Expr::add(r.into(), 10.into())),
                unlock(l),
                compute(i, Expr::add(i.into(), 1.into())),
            ],
        ),
    ];
    let mut main = fork_all(n_threads);
    main.push(load(Local(2), balance)); // unprotected audit — racy
    main.extend(join_all(n_threads));
    main.push(load(Local(3), balance)); // post-join read — race-free
    Program::new(
        vec![scalar("balance", 0)],
        1,
        main,
        (0..n_threads).map(|_| deposit_loop.clone()).collect(),
    )
}

/// `airline`: the classic check-then-act bug — agents read the seat count
/// without the lock before decrementing it under the lock.
pub fn airline(n_agents: usize, seats: i64) -> Program {
    let seat_count = GlobalId(0);
    let l = LockRef(0);
    let r = Local(0);
    let agent = vec![
        load(r, seat_count), // unprotected check — races with the writes
        if_(
            Expr::lt(0.into(), r.into()),
            vec![
                lock(l),
                load(r, seat_count),
                store(
                    seat_count,
                    Expr::Sub(Box::new(r.into()), Box::new(1.into())),
                ),
                unlock(l),
            ],
            vec![],
        ),
    ];
    let mut main = fork_all(n_agents);
    main.extend(join_all(n_agents));
    main.push(load(Local(1), seat_count));
    Program::new(
        vec![scalar("seats", seats)],
        1,
        main,
        (0..n_agents).map(|_| agent.clone()).collect(),
    )
}

/// `allocation`: lock-protected bitmap allocation plus an unprotected
/// statistics counter (the planted race).
pub fn allocation(n_threads: usize, blocks: u32) -> Program {
    let bitmap = GlobalId(0);
    let stats = GlobalId(1);
    let l = LockRef(0);
    let (r, i, s) = (Local(0), Local(1), Local(2));
    let body = vec![
        compute(i, 0.into()),
        while_(
            Expr::lt(i.into(), (blocks as i64).into()),
            vec![
                lock(l),
                load_elem(r, bitmap, i.into()),
                if_(
                    Expr::eq(r.into(), 0.into()),
                    vec![store_elem(bitmap, i.into(), 1.into())],
                    vec![],
                ),
                unlock(l),
                load(s, stats),
                store(stats, Expr::add(s.into(), 1.into())), // racy counter
                compute(i, Expr::add(i.into(), 1.into())),
            ],
        ),
    ];
    let mut main = fork_all(n_threads);
    main.extend(join_all(n_threads));
    Program::new(
        vec![array("bitmap", blocks, 0), scalar("stats", 0)],
        1,
        main,
        (0..n_threads).map(|_| body.clone()).collect(),
    )
}

/// `bubblesort`: two workers bubble-sort overlapping segments of a shared
/// array; the overlap element is accessed without synchronization.
pub fn bubblesort(len: u32) -> Program {
    let a = GlobalId(0);
    let l = LockRef(0);
    let (ri, rj, i) = (Local(0), Local(1), Local(2));
    // Worker sorting [lo, hi): adjacent-swap passes under the lock, but the
    // boundary read at `hi` is unprotected.
    let worker = |lo: i64, hi: i64| {
        vec![
            compute(i, lo.into()),
            while_(
                Expr::lt(i.into(), (hi - 1).into()),
                vec![
                    lock(l),
                    load_elem(ri, a, i.into()),
                    load_elem(rj, a, Expr::add(i.into(), 1.into())),
                    if_(
                        Expr::lt(rj.into(), ri.into()),
                        vec![
                            store_elem(a, i.into(), rj.into()),
                            store_elem(a, Expr::add(i.into(), 1.into()), ri.into()),
                        ],
                        vec![],
                    ),
                    unlock(l),
                    compute(i, Expr::add(i.into(), 1.into())),
                ],
            ),
            // Unprotected peek at the boundary element — the planted race.
            load_elem(ri, a, (hi - 1).into()),
        ]
    };
    let half = (len / 2) as i64;
    let mut main: Vec<Stmt> = Vec::new();
    // Initialize the array descending so swaps actually happen.
    for k in 0..len as i64 {
        main.push(store_elem(a, k.into(), (len as i64 - k).into()));
    }
    main.extend(fork_all(2));
    main.extend(join_all(2));
    Program::new(
        vec![array("a", len, 0)],
        1,
        main,
        vec![worker(0, half + 1), worker(half, len as i64)],
    )
}

/// `bufwriter`: writers append under a lock; the reader polls the size
/// field and indexes the buffer without the lock (an implicit-branch race,
/// §4).
pub fn bufwriter(writers: usize, appends: usize) -> Program {
    let buf = GlobalId(0);
    let size = GlobalId(1);
    let l = LockRef(0);
    let (r, i) = (Local(0), Local(1));
    let cap = 16u32;
    let writer = vec![
        compute(i, 0.into()),
        while_(
            Expr::lt(i.into(), (appends as i64).into()),
            vec![
                lock(l),
                load(r, size),
                store_elem(buf, r.into(), 7.into()),
                store(size, Expr::add(r.into(), 1.into())),
                unlock(l),
                compute(i, Expr::add(i.into(), 1.into())),
            ],
        ),
    ];
    let mut main = fork_all(writers);
    // The reader polls without the lock: racy size read, racy buf[size-1].
    main.push(load(r, size));
    main.push(if_(
        Expr::lt(0.into(), r.into()),
        vec![load_elem(
            Local(2),
            buf,
            Expr::Sub(Box::new(r.into()), Box::new(1.into())),
        )],
        vec![],
    ));
    main.extend(join_all(writers));
    Program::new(
        vec![array("buf", cap, 0), scalar("size", 0)],
        1,
        main,
        (0..writers).map(|_| writer.clone()).collect(),
    )
}

/// `critical`: one thread updates the counter under the lock, the other
/// forgets the lock entirely.
pub fn critical() -> Program {
    let c = GlobalId(0);
    let l = LockRef(0);
    let r = Local(0);
    let good = vec![
        lock(l),
        load(r, c),
        store(c, Expr::add(r.into(), 1.into())),
        unlock(l),
    ];
    let bad = vec![load(r, c), store(c, Expr::add(r.into(), 1.into()))];
    let mut main = fork_all(2);
    main.extend(join_all(2));
    main.push(load(Local(1), c));
    Program::new(vec![scalar("counter", 0)], 1, main, vec![good, bad])
}

/// `mergesort`: workers fill disjoint halves (race-free) but both bump an
/// unsynchronized `done` counter.
pub fn mergesort(len: u32) -> Program {
    let a = GlobalId(0);
    let done = GlobalId(1);
    let (r, i) = (Local(0), Local(1));
    let worker = |lo: i64, hi: i64| {
        vec![
            compute(i, lo.into()),
            while_(
                Expr::lt(i.into(), hi.into()),
                vec![
                    store_elem(
                        a,
                        i.into(),
                        Expr::Mul(Box::new(i.into()), Box::new(2.into())),
                    ),
                    compute(i, Expr::add(i.into(), 1.into())),
                ],
            ),
            load(r, done),
            store(done, Expr::add(r.into(), 1.into())), // racy done-count
        ]
    };
    let half = (len / 2) as i64;
    let mut main = fork_all(2);
    main.extend(join_all(2));
    // Sequential merge after the joins: race-free.
    main.push(load_elem(r, a, 0.into()));
    main.push(load_elem(r, a, half.into()));
    Program::new(
        vec![array("a", len, 0), scalar("done", 0)],
        1,
        main,
        vec![worker(0, half), worker(half, len as i64)],
    )
}

/// `pingpong`: a volatile-flag handshake protects the counter (no race
/// there), but a statistics variable crosses the handshake without any
/// control dependence — the Figure 2 case-① pattern that only the maximal
/// technique detects.
pub fn pingpong(rounds: i64) -> Program {
    let turn = GlobalId(0); // volatile
    let counter = GlobalId(1);
    let stats = GlobalId(2);
    let (r, i) = (Local(0), Local(1));
    let player = |me: i64, other: i64| {
        vec![
            compute(i, 0.into()),
            while_(
                Expr::lt(i.into(), rounds.into()),
                vec![
                    load(r, turn),
                    while_(
                        Expr::Ne(Box::new(r.into()), Box::new(me.into())),
                        vec![load(r, turn)],
                    ),
                    load(r, counter),
                    store(counter, Expr::add(r.into(), 1.into())),
                    store(turn, other.into()),
                    compute(i, Expr::add(i.into(), 1.into())),
                ],
            ),
        ]
    };
    let mut p0 = player(0, 1);
    // Player 0 additionally writes `stats` at the end; its last turn-read
    // guards nothing afterwards in player 1's prefix read of `stats`.
    p0.push(store(stats, 1.into()));
    let mut p1 = vec![load(Local(2), stats)]; // read before any turn-read: racy
    p1.extend(player(1, 0));
    let mut main = fork_all(2);
    main.extend(join_all(2));
    Program::new(
        vec![
            volatile_scalar("turn", 0),
            scalar("counter", 0),
            scalar("stats", 0),
        ],
        0,
        main,
        vec![p0, p1],
    )
}

/// All contest-class workloads at their Table 1 default sizes.
pub fn all() -> Vec<Workload> {
    vec![
        Workload::run("account", &account(3, 4), 11),
        Workload::run("airline", &airline(3, 6), 12),
        Workload::run("allocation", &allocation(2, 4), 13),
        Workload::run("bubblesort", &bubblesort(8), 14),
        Workload::run("bufwriter", &bufwriter(2, 5), 15),
        Workload::run("critical", &critical(), 16),
        Workload::run("mergesort", &mergesort(8), 17),
        Workload::run("pingpong", &pingpong(2), 18),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::check_consistency;

    #[test]
    fn all_contest_workloads_consistent() {
        for w in all() {
            assert!(
                check_consistency(&w.trace).is_empty(),
                "inconsistent trace from {}",
                w.name
            );
        }
    }

    #[test]
    fn contest_profiles_have_sync_and_branches() {
        for w in all() {
            let s = w.trace.stats();
            assert!(s.threads >= 2, "{}", w.name);
            assert!(s.syncs > 0, "{}", w.name);
        }
    }

    #[test]
    fn account_deposits_add_up_when_complete() {
        let w = Workload::run("account", &account(2, 3), 5);
        // Final read (last read of balance in the main thread) sees 2*3*10.
        let last = w
            .trace
            .events()
            .iter()
            .rev()
            .find(|e| e.kind.is_read())
            .unwrap();
        assert_eq!(last.kind.value().unwrap().0, 60);
    }
}
