//! Benchmark workloads mirroring the paper's evaluation suite (§5,
//! Table 1).
//!
//! The paper instruments Java programs; we cannot run those, so each
//! Table 1 row is substituted by a program in the mini language (or a
//! generator) whose *trace profile* — thread count, event mix, branch
//! density, synchronization discipline — matches the class of the original:
//!
//! * [`figures`] — the paper's worked examples (Figures 1/2, the §4 array
//!   example), reproduced exactly;
//! * [`contest`] — small racy programs in the style of the IBM Contest
//!   suite rows (`account`, `airline`, …);
//! * [`grande`] — fork/join numeric kernels in the style of the Java
//!   Grande rows (`crypt`, `lufact`, `series`);
//! * [`systems`] — parameterized server-style generators standing in for
//!   the real-system rows (`ftpserver`, `jigsaw`, `derby`, …), scalable to
//!   millions of events.

pub mod contest;
pub mod figures;
pub mod grande;
pub mod systems;

use rvtrace::Trace;

use crate::interp::{execute, ExecConfig, Scheduler};
use crate::program::Program;

/// A named benchmark trace.
#[derive(Debug)]
pub struct Workload {
    /// Row name (Table 1 column 1).
    pub name: String,
    /// The observed trace all detectors analyze.
    pub trace: Trace,
}

impl Workload {
    /// Builds a workload by executing a program under a seeded scheduler.
    ///
    /// # Panics
    ///
    /// Panics if execution deadlocks before producing any event (generator
    /// bugs surface loudly rather than as empty benchmarks).
    pub fn run(name: &str, program: &Program, seed: u64) -> Workload {
        let cfg = ExecConfig {
            scheduler: Scheduler::Random { seed },
            max_steps: 4_000_000,
        };
        let exec = execute(program, &cfg).expect("random schedules cannot fail");
        assert!(
            !exec.trace.is_empty(),
            "workload {name} produced an empty trace"
        );
        Workload {
            name: name.to_string(),
            trace: exec.trace,
        }
    }

    /// Builds a workload from an explicit thread schedule.
    pub fn run_fixed(name: &str, program: &Program, schedule: Vec<u32>) -> Workload {
        let cfg = ExecConfig {
            scheduler: Scheduler::Fixed(schedule),
            max_steps: 4_000_000,
        };
        let exec = execute(program, &cfg)
            .unwrap_or_else(|e| panic!("fixed schedule for {name} failed: {e}"));
        Workload {
            name: name.to_string(),
            trace: exec.trace,
        }
    }
}

/// The small-benchmark rows (example + contest + grande classes) at their
/// default sizes, in Table 1 order.
pub fn small_suite() -> Vec<Workload> {
    let mut out = vec![figures::figure1()];
    out.extend(contest::all());
    out.extend(grande::all());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::check_consistency;

    #[test]
    fn small_suite_traces_are_consistent() {
        for w in small_suite() {
            assert!(
                check_consistency(&w.trace).is_empty(),
                "workload {} produced an inconsistent trace",
                w.name
            );
            assert!(w.trace.stats().events > 0);
        }
    }

    #[test]
    fn small_suite_names_unique() {
        let suite = small_suite();
        let mut names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
