//! The paper's worked examples as programs + canonical traces.

use crate::ast::{Expr, GlobalId, Local, LockRef, ProcId};
use crate::program::{stmts::*, Program};

use super::Workload;

/// The Figure 1 program:
///
/// ```text
/// initially x = y = 0, resource z = 0
/// t1: fork t2; lock l; x=1; y=1; unlock l; … join t2; r3=z; if (r3==0) Error
/// t2: lock l; r1=y; unlock l; r2=x; if (r1==r2) z=1
/// ```
pub fn figure1_program() -> Program {
    let (x, y, z) = (GlobalId(0), GlobalId(1), GlobalId(2));
    let l = LockRef(0);
    let (r1, r2, r3) = (Local(1), Local(2), Local(3));
    Program::new(
        vec![scalar("x", 0), scalar("y", 0), scalar("z", 0)],
        1,
        vec![
            fork(ProcId(0)),    // 1. fork t2
            lock(l),            // 2. lock l
            store(x, 1.into()), // 3. x = 1
            store(y, 1.into()), // 4. y = 1
            unlock(l),          // 5. unlock l
            join(ProcId(0)),    // 14. join t2
            load(r3, z),        // 15. r3 = z (use)
            if_(
                Expr::eq(r3.into(), 0.into()),     // 16. if (r3 == 0)
                vec![compute(Local(9), 1.into())], // 17. Error (marker)
                vec![],
            ),
        ],
        vec![vec![
            lock(l),     // 7. lock l
            load(r1, y), // 8. r1 = y
            unlock(l),   // 9. unlock l
            load(r2, x), // 10. r2 = x
            if_(
                Expr::eq(r1.into(), Expr::Local(r2)), // 11. if (r1 == r2)
                vec![store(z, 1.into())],             // 12. z = 1 (auth)
                vec![],
            ),
        ]],
    )
}

/// Figure 1 executed in the paper's observed order (trace of Figure 4):
/// t1 through its unlock, then t2 to completion, then t1's join and use.
pub fn figure1() -> Workload {
    // t1: fork, lock, x, y, unlock                          = 5 steps
    // t2: lock, r1=y, unlock, r2=x, if, z=1, end            = 7 steps
    // t1: join, r3=z, if, end                               = 4 steps
    let mut sched = vec![0; 5];
    sched.extend(vec![1; 7]);
    sched.extend(vec![0; 4]);
    Workload::run_fixed("example (Fig.1)", &figure1_program(), sched)
}

/// Figure 2's two variants. `y` is volatile.
///
/// Case ① (`loop = false`): `t2: r1 = y; r2 = x` — (1,4) **is** a race.
/// Case ② (`loop = true`): `t2: while (y == 0); r2 = x` — it is not.
pub fn figure2_program(loop_variant: bool) -> Program {
    let (x, y) = (GlobalId(0), GlobalId(1));
    let (r1, r2) = (Local(1), Local(2));
    let t2_body = if loop_variant {
        vec![
            load(r1, y),
            while_(Expr::eq(r1.into(), 0.into()), vec![load(r1, y)]),
            load(r2, x),
        ]
    } else {
        vec![load(r1, y), load(r2, x)]
    };
    Program::new(
        vec![scalar("x", 0), volatile_scalar("y", 0)],
        0,
        vec![
            fork(ProcId(0)),
            store(x, 1.into()), // 1. x = 1
            store(y, 1.into()), // 2. y = 1
            join(ProcId(0)),
        ],
        vec![t2_body],
    )
}

/// Figure 2 case ① (plain read), executed in the observed order 1-2-3-4.
pub fn figure2_read() -> Workload {
    // t1: fork, x=1, y=1                       = 3 steps
    // t2: r1=y, r2=x, end                      = 3 steps
    // t1: join, end                            = 2 steps
    let mut sched = vec![0; 3];
    sched.extend(vec![1; 3]);
    sched.extend(vec![0; 2]);
    Workload::run_fixed("figure2-read", &figure2_program(false), sched)
}

/// Figure 2 case ② (spin loop), executed in the observed order.
pub fn figure2_loop() -> Workload {
    // t1: fork, x=1, y=1                       = 3 steps
    // t2: r1=y, while-test(false), r2=x, end   = 4 steps
    // t1: join, end                            = 2 steps
    let mut sched = vec![0; 3];
    sched.extend(vec![1; 4]);
    sched.extend(vec![0; 2]);
    Workload::run_fixed("figure2-loop", &figure2_program(true), sched)
}

/// The §4 implicit-branch example:
///
/// ```text
/// t1: lock l; a[x] = 2; unlock l
/// t2: lock l; x = 1; unlock l; a[0] = 1
/// ```
///
/// `(a[x]=2, a[0]=1)` is **not** a race: rescheduling t2's region first
/// changes the index `x`, which the implicit branch at `a[x]` captures.
pub fn array_index_program() -> Program {
    let (x, a) = (GlobalId(0), GlobalId(1));
    let l = LockRef(0);
    let rx = Local(0);
    Program::new(
        vec![scalar("x", 0), array("a", 2, 0)],
        1,
        vec![
            fork(ProcId(0)),
            lock(l),                            // 1. lock
            load(rx, x),                        // (index read of line 2)
            store_elem(a, rx.into(), 2.into()), // 2. a[x] = 2
            unlock(l),                          // 3. unlock
            join(ProcId(0)),
        ],
        vec![vec![
            lock(l),                                 // 4. lock
            store(x, 1.into()),                      // 5. x = 1
            unlock(l),                               // 6. unlock
            store_elem(a, Expr::Const(0), 1.into()), // 7. a[0] = 1
        ]],
    )
}

/// The §4 example executed in source order (t1's region first).
pub fn array_index() -> Workload {
    // t1: fork, lock, load x, store a[x], unlock = 5 steps
    // t2: lock, x=1, unlock, a[0]=1, end        = 5 steps
    // t1: join, end                              = 2 steps
    let mut sched = vec![0; 5];
    sched.extend(vec![1; 5]);
    sched.extend(vec![0; 2]);
    Workload::run_fixed("array-index (§4)", &array_index_program(), sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{check_consistency, EventKind};

    #[test]
    fn figure1_trace_matches_figure4_shape() {
        let w = figure1();
        assert!(check_consistency(&w.trace).is_empty());
        let kinds: Vec<_> = w.trace.events().iter().map(|e| e.kind).collect();
        // fork, acquire, write x, write y, release, begin, acquire, read y,
        // release, read x, branch, write z, end, join, read z, branch, …
        assert!(matches!(kinds[0], EventKind::Fork { .. }));
        assert!(matches!(kinds[1], EventKind::Acquire { .. }));
        assert!(matches!(kinds[2], EventKind::Write { .. }));
        assert!(matches!(kinds[3], EventKind::Write { .. }));
        assert!(matches!(kinds[4], EventKind::Release { .. }));
        assert!(matches!(kinds[5], EventKind::Begin));
        assert!(matches!(kinds[6], EventKind::Acquire { .. }));
        assert!(matches!(kinds[7], EventKind::Read { .. }));
        assert!(matches!(kinds[8], EventKind::Release { .. }));
        assert!(matches!(kinds[9], EventKind::Read { .. }));
        assert!(matches!(kinds[10], EventKind::Branch));
        assert!(matches!(kinds[11], EventKind::Write { .. }));
        // t2 read y observes 1 and z gets authorized.
        assert_eq!(w.trace.events()[7].kind.value().unwrap().0, 1);
        assert_eq!(w.trace.events()[11].kind.value().unwrap().0, 1);
    }

    #[test]
    fn figure2_variants_differ_only_in_branches() {
        let r = figure2_read();
        let l = figure2_loop();
        assert!(check_consistency(&r.trace).is_empty());
        assert!(check_consistency(&l.trace).is_empty());
        assert_eq!(r.trace.stats().branches, 0);
        assert_eq!(l.trace.stats().branches, 1);
        assert_eq!(r.trace.stats().reads_writes, l.trace.stats().reads_writes);
    }

    #[test]
    fn array_index_trace_has_implicit_branch() {
        let w = array_index();
        assert!(check_consistency(&w.trace).is_empty());
        assert_eq!(w.trace.stats().branches, 1, "one implicit branch at a[x]");
        // Both stores hit a[0].
        let writes = w
            .trace
            .events()
            .iter()
            .filter(|e| {
                e.kind.is_write() && w.trace.var_name(e.kind.var().unwrap()) == Some("a[0]")
            })
            .count();
        assert_eq!(writes, 2);
    }
}
