//! Programs: declarations + procedure bodies, with static location
//! numbering.

use crate::ast::{Addr, Expr, GlobalDecl, GlobalId, Local, LockRef, ProcId, Stmt, StmtKind};

/// A complete program: shared declarations, locks, the main body and the
/// forkable procedures.
///
/// # Examples
///
/// ```
/// use rvsim::{Program, GlobalDecl, stmts::*};
///
/// let globals = vec![GlobalDecl { name: "x".into(), array_len: None, volatile: false, initial: 0 }];
/// let x = rvsim::GlobalId(0);
/// let p = Program::new(
///     globals,
///     1,
///     vec![store(x, 1.into()), fork(rvsim::ProcId(0)), join(rvsim::ProcId(0))],
///     vec![vec![store(x, 2.into())]],
/// );
/// assert_eq!(p.procs.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    /// Shared global declarations (scalars and arrays).
    pub globals: Vec<GlobalDecl>,
    /// Number of locks.
    pub n_locks: u32,
    /// The main thread's body.
    pub main: Vec<Stmt>,
    /// Forkable procedures (each forked at most once per run).
    pub procs: Vec<Vec<Stmt>>,
    /// Static location names, indexed by `Stmt::loc`.
    pub loc_names: Vec<String>,
}

impl Program {
    /// Builds a program and assigns static locations to every statement
    /// (depth-first over main, then each procedure).
    pub fn new(
        globals: Vec<GlobalDecl>,
        n_locks: u32,
        mut main: Vec<Stmt>,
        mut procs: Vec<Vec<Stmt>>,
    ) -> Self {
        let mut loc_names = Vec::new();
        number_block("main", &mut main, &mut loc_names);
        for (i, p) in procs.iter_mut().enumerate() {
            number_block(&format!("p{i}"), p, &mut loc_names);
        }
        Program {
            globals,
            n_locks,
            main,
            procs,
            loc_names,
        }
    }

    /// Total number of statements (== number of static locations).
    pub fn n_stmts(&self) -> usize {
        self.loc_names.len()
    }

    /// Resolves the trace variable id for a global (base id for arrays).
    pub fn base_var(&self, g: GlobalId) -> u32 {
        self.globals[..g.0 as usize]
            .iter()
            .map(|d| d.array_len.unwrap_or(1))
            .sum()
    }

    /// Total number of trace variables (arrays expanded).
    pub fn n_vars(&self) -> u32 {
        self.globals.iter().map(|d| d.array_len.unwrap_or(1)).sum()
    }
}

fn number_block(prefix: &str, block: &mut [Stmt], names: &mut Vec<String>) {
    for (i, stmt) in block.iter_mut().enumerate() {
        stmt.loc = names.len() as u32;
        names.push(format!("{prefix}:{i} {}", stmt.kind));
        match &mut stmt.kind {
            StmtKind::If { then_, else_, .. } => {
                let p = format!("{prefix}:{i}t");
                number_block(&p, then_, names);
                let p = format!("{prefix}:{i}e");
                number_block(&p, else_, names);
            }
            StmtKind::While { body, .. } => {
                let p = format!("{prefix}:{i}w");
                number_block(&p, body, names);
            }
            _ => {}
        }
    }
}

/// Free-function constructors for statements, for concise workload code.
pub mod stmts {
    use super::*;

    /// `local := global` (scalar load).
    pub fn load(l: Local, g: GlobalId) -> Stmt {
        StmtKind::Load(l, Addr::Var(g)).into()
    }
    /// `local := array[index]`.
    pub fn load_elem(l: Local, g: GlobalId, index: Expr) -> Stmt {
        StmtKind::Load(l, Addr::Elem(g, index)).into()
    }
    /// `global := expr` (scalar store).
    pub fn store(g: GlobalId, e: Expr) -> Stmt {
        StmtKind::Store(Addr::Var(g), e).into()
    }
    /// `array[index] := expr`.
    pub fn store_elem(g: GlobalId, index: Expr, e: Expr) -> Stmt {
        StmtKind::Store(Addr::Elem(g, index), e).into()
    }
    /// `local := expr` (no event).
    pub fn compute(l: Local, e: Expr) -> Stmt {
        StmtKind::Compute(l, e).into()
    }
    /// Acquire a lock.
    pub fn lock(l: LockRef) -> Stmt {
        StmtKind::Lock(l).into()
    }
    /// Release a lock.
    pub fn unlock(l: LockRef) -> Stmt {
        StmtKind::Unlock(l).into()
    }
    /// Fork a procedure.
    pub fn fork(p: ProcId) -> Stmt {
        StmtKind::Fork(p).into()
    }
    /// Join a forked procedure.
    pub fn join(p: ProcId) -> Stmt {
        StmtKind::Join(p).into()
    }
    /// Conditional.
    pub fn if_(cond: Expr, then_: Vec<Stmt>, else_: Vec<Stmt>) -> Stmt {
        StmtKind::If { cond, then_, else_ }.into()
    }
    /// Loop.
    pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
        StmtKind::While { cond, body }.into()
    }
    /// `wait()` on a lock's condition.
    pub fn wait(l: LockRef) -> Stmt {
        StmtKind::Wait(l).into()
    }
    /// `notify()` on a lock's condition.
    pub fn notify(l: LockRef) -> Stmt {
        StmtKind::Notify(l).into()
    }
    /// `notifyAll()` on a lock's condition.
    pub fn notify_all(l: LockRef) -> Stmt {
        StmtKind::NotifyAll(l).into()
    }
    /// Declares a scalar global.
    pub fn scalar(name: &str, initial: i64) -> GlobalDecl {
        GlobalDecl {
            name: name.into(),
            array_len: None,
            volatile: false,
            initial,
        }
    }
    /// Declares a volatile scalar global.
    pub fn volatile_scalar(name: &str, initial: i64) -> GlobalDecl {
        GlobalDecl {
            name: name.into(),
            array_len: None,
            volatile: true,
            initial,
        }
    }
    /// Declares an array global.
    pub fn array(name: &str, len: u32, initial: i64) -> GlobalDecl {
        GlobalDecl {
            name: name.into(),
            array_len: Some(len),
            volatile: false,
            initial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::stmts::*;
    use super::*;

    #[test]
    fn numbering_covers_nested_blocks() {
        let g = GlobalId(0);
        let p = Program::new(
            vec![scalar("x", 0)],
            0,
            vec![
                compute(Local(0), 1.into()),
                if_(
                    Expr::Local(Local(0)),
                    vec![store(g, 1.into())],
                    vec![store(g, 2.into()), store(g, 3.into())],
                ),
                while_(Expr::Const(0), vec![store(g, 4.into())]),
            ],
            vec![vec![load(Local(0), g)]],
        );
        assert_eq!(p.n_stmts(), 8);
        // Locations are unique and dense.
        let mut locs: Vec<u32> = Vec::new();
        fn collect(b: &[Stmt], out: &mut Vec<u32>) {
            for s in b {
                out.push(s.loc);
                match &s.kind {
                    StmtKind::If { then_, else_, .. } => {
                        collect(then_, out);
                        collect(else_, out);
                    }
                    StmtKind::While { body, .. } => collect(body, out),
                    _ => {}
                }
            }
        }
        collect(&p.main, &mut locs);
        collect(&p.procs[0], &mut locs);
        locs.sort_unstable();
        assert_eq!(locs, (0..8).collect::<Vec<_>>());
        assert!(p.loc_names[0].starts_with("main:0"));
    }

    #[test]
    fn array_layout() {
        let p = Program::new(
            vec![scalar("x", 0), array("a", 4, 0), scalar("y", 0)],
            0,
            vec![],
            vec![],
        );
        assert_eq!(p.base_var(GlobalId(0)), 0);
        assert_eq!(p.base_var(GlobalId(1)), 1);
        assert_eq!(p.base_var(GlobalId(2)), 5);
        assert_eq!(p.n_vars(), 6);
    }
}
