//! A small, self-contained, deterministic PRNG (xoshiro256** seeded via
//! SplitMix64), replacing the external `rand`/`rand_chacha` dependency so
//! the workspace builds without registry access.
//!
//! The generator is *not* cryptographic; it only needs to be fast,
//! well-distributed and reproducible across platforms for scheduling and
//! workload generation. Streams differ from the previous ChaCha8 streams,
//! which is fine: everything downstream treats schedules as opaque and
//! seeded runs stay bit-reproducible.

use std::ops::Range;

/// A seedable xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use rvsim::rng::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0..10u32);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Expands a 64-bit seed into the full state with SplitMix64 (the
    /// initialization recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform draw from a non-empty half-open integer range.
    ///
    /// Uses rejection-free modulo reduction; the bias is ≤ range/2⁶⁴, far
    /// below anything the simulator can observe.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: RangeInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(hi > lo, "gen_range on empty range");
        T::from_u64(lo + self.next_u64() % (hi - lo))
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`SmallRng::gen_range`] bounds (non-negative
/// ranges only — all the simulator needs).
pub trait RangeInt: Copy {
    /// Widens to `u64`. Panics on negative values.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` (always in range by construction).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                u64::try_from(self).expect("gen_range bounds must be non-negative")
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_range_int!(u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0..10usize);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cells hit in 1000 draws");
        for _ in 0..100 {
            let v = r.gen_range(5..7u32);
            assert!((5..7).contains(&v));
            let w = r.gen_range(0..3i64);
            assert!((0..3).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(3..3u32);
    }
}
