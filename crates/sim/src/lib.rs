//! # rvsim — concurrent-program substrate and workload generators
//!
//! The paper evaluates on instrumented Java executions; this crate provides
//! the equivalent trace source: a mini concurrent language (in the spirit
//! of the paper's Theorem 2 proof language, §2.4), a sequentially
//! consistent interpreter with seeded/fixed schedulers that emits
//! instrumented [`rvtrace::Trace`]s — including `branch` events at
//! conditionals and at non-constant array indexes (paper §4) — and
//! generators for every benchmark class of Table 1 (see [`workloads`]).
//!
//! # Examples
//!
//! Run the paper's Figure 1 program and detect its race:
//!
//! ```
//! use rvsim::workloads::figures;
//!
//! let w = figures::figure1();
//! assert_eq!(w.trace.stats().threads, 2);
//! // The trace matches the paper's Figure 4 (17 events incl. begin/end).
//! assert!(w.trace.len() >= 16);
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ast;
mod interp;
mod program;
pub mod rng;
pub mod workloads;

pub use ast::{Addr, Expr, GlobalDecl, GlobalId, Local, LockRef, ProcId, Stmt, StmtKind};
pub use interp::{execute, ExecConfig, ExecError, Execution, Outcome, Scheduler};
pub use program::{stmts, Program};
