//! # rvinstrument — record traces from real Rust threads
//!
//! The paper collects traces by statically instrumenting Java bytecode
//! (§4, "trace collection can be performed at various levels"). This crate
//! is the equivalent front-end for Rust programs: traced shared variables,
//! traced mutexes and a traced `spawn`/`join` record the §2 event alphabet
//! — including `branch` events via [`guard`] — while the program actually
//! runs on OS threads. The recorder's internal lock is the linearization
//! point of every shared operation, so the recorded trace is sequentially
//! consistent by construction.
//!
//! Race signatures use real source locations (`file:line`, captured with
//! `#[track_caller]`).
//!
//! # Examples
//!
//! Record a racy two-thread program and find the race:
//!
//! ```
//! use rvinstrument::{guard, spawn, Session, TracedMutex, TracedVar};
//!
//! let mut session = Session::begin();
//! let x = TracedVar::new("x", 0);
//! let l = TracedMutex::new("l");
//!
//! let t = spawn({
//!     let x = x.clone();
//!     let l = l.clone();
//!     move || {
//!         let _g = l.lock();
//!         x.store(1); // protected write
//!     }
//! });
//! let v = x.load(); // unprotected read — races with the store
//! if guard(v == 0) {
//!     // control-dependent work would go here
//! }
//! t.join();
//!
//! let trace = session.finish();
//! assert!(rvtrace::check_consistency(&trace).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use rvtrace::{Loc, LockId, ThreadId, Trace, TraceBuilder, VarId};

/// The global recorder state (one active [`Session`] at a time).
struct Recorder {
    builder: TraceBuilder,
    /// Concrete values of traced variables.
    values: Vec<i64>,
    /// Source location → trace `Loc`.
    locs: HashMap<String, Loc>,
}

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);
/// Serializes whole sessions (so concurrent tests don't interleave).
static SESSION_GATE: Mutex<()> = Mutex::new(());

/// Locks a mutex, recovering from poison: a panicking traced thread must
/// not wedge every later session of the process.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// The trace thread id of the current OS thread (set by [`spawn`] /
    /// [`Session::begin`]).
    static SELF_ID: Cell<Option<ThreadId>> = const { Cell::new(None) };
}

fn current_thread() -> ThreadId {
    SELF_ID
        .with(|c| c.get())
        .expect("thread is not traced: enter via Session::begin or rvinstrument::spawn")
}

fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    let mut guard = lock_unpoisoned(&RECORDER);
    let rec = guard.as_mut().expect("no active rvinstrument::Session");
    f(rec)
}

fn loc_here(rec: &mut Recorder, at: &Location<'_>) -> Loc {
    let key = format!("{}:{}", at.file(), at.line());
    if let Some(&l) = rec.locs.get(&key) {
        return l;
    }
    let l = rec.builder.loc(&key);
    rec.locs.insert(key, l);
    l
}

/// An active recording session. Created by [`Session::begin`]; the calling
/// thread becomes the trace's main thread.
#[derive(Debug)]
pub struct Session {
    /// Held for the session's active span; [`Session::finish`] drops it so
    /// a new session can begin while this handle is still alive.
    gate: Option<MutexGuard<'static, ()>>,
}

impl Session {
    /// Starts recording. The calling thread is registered as `t0`.
    ///
    /// # Panics
    ///
    /// Panics if a session is already active on another thread.
    pub fn begin() -> Session {
        let gate = lock_unpoisoned(&SESSION_GATE);
        let mut guard = lock_unpoisoned(&RECORDER);
        assert!(guard.is_none(), "an rvinstrument session is already active");
        *guard = Some(Recorder {
            builder: TraceBuilder::new(),
            values: Vec::new(),
            locs: HashMap::new(),
        });
        SELF_ID.with(|c| c.set(Some(ThreadId::MAIN)));
        Session { gate: Some(gate) }
    }

    /// Stops recording and returns the trace.
    pub fn finish(&mut self) -> Trace {
        let mut guard = lock_unpoisoned(&RECORDER);
        let rec = guard.take().expect("session already finished");
        SELF_ID.with(|c| c.set(None));
        drop(guard);
        self.gate.take();
        rec.builder.finish()
    }
}

/// A traced shared integer variable. Cloning shares the variable.
///
/// Every [`TracedVar::load`] / [`TracedVar::store`] takes the recorder lock,
/// performs the access inside it and emits the event — the access order
/// *is* the event order (sequential consistency by construction).
#[derive(Debug, Clone)]
pub struct TracedVar {
    var: VarId,
}

impl TracedVar {
    /// Registers a fresh traced variable with an initial value.
    #[track_caller]
    pub fn new(name: &str, initial: i64) -> TracedVar {
        with_recorder(|rec| {
            let var = rec.builder.var(name);
            rec.builder.initial(var, initial);
            debug_assert_eq!(var.index(), rec.values.len());
            rec.values.push(initial);
            TracedVar { var }
        })
    }

    /// Reads the variable (emits a `read` event at the caller's location).
    #[track_caller]
    pub fn load(&self) -> i64 {
        let at = Location::caller();
        let t = current_thread();
        with_recorder(|rec| {
            let loc = loc_here(rec, at);
            let v = rec.values[self.var.index()];
            rec.builder.read_at(t, self.var, v, loc);
            v
        })
    }

    /// Writes the variable (emits a `write` event at the caller's location).
    #[track_caller]
    pub fn store(&self, value: i64) {
        let at = Location::caller();
        let t = current_thread();
        with_recorder(|rec| {
            let loc = loc_here(rec, at);
            rec.values[self.var.index()] = value;
            rec.builder.write_at(t, self.var, value, loc);
        })
    }

    /// Read-modify-write convenience (two events: the read and the write).
    #[track_caller]
    pub fn fetch_add(&self, delta: i64) -> i64 {
        let at = Location::caller();
        let t = current_thread();
        with_recorder(|rec| {
            let loc = loc_here(rec, at);
            let v = rec.values[self.var.index()];
            rec.builder.read_at(t, self.var, v, loc);
            rec.values[self.var.index()] = v + delta;
            rec.builder.write_at(t, self.var, v + delta, loc);
            v
        })
    }
}

/// The real lock behind a [`TracedMutex`]: a hand-rolled mutex whose guard
/// owns an `Arc` to it, so guards can outlive the `lock()` call frame (std's
/// `MutexGuard` borrows and cannot).
#[derive(Debug)]
struct RawLock {
    held: Mutex<bool>,
    cv: Condvar,
}

impl RawLock {
    fn new() -> RawLock {
        RawLock {
            held: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) {
        let mut held = lock_unpoisoned(&self.held);
        while *held {
            held = self.cv.wait(held).unwrap_or_else(PoisonError::into_inner);
        }
        *held = true;
    }

    fn unlock(&self) {
        *lock_unpoisoned(&self.held) = false;
        self.cv.notify_one();
    }
}

/// A traced mutex. Cloning shares the lock.
#[derive(Debug, Clone)]
pub struct TracedMutex {
    lock: LockId,
    inner: Arc<RawLock>,
}

/// RAII guard of a [`TracedMutex`]; releasing emits the `release` event
/// *before* unlocking the real mutex, keeping the trace mutex-consistent.
pub struct TracedMutexGuard {
    lock: LockId,
    inner: Arc<RawLock>,
}

impl std::fmt::Debug for TracedMutexGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracedMutexGuard")
            .field("lock", &self.lock)
            .finish()
    }
}

impl TracedMutex {
    /// Registers a fresh traced lock.
    pub fn new(name: &str) -> TracedMutex {
        with_recorder(|rec| {
            let lock = rec.builder.new_lock(name);
            TracedMutex {
                lock,
                inner: Arc::new(RawLock::new()),
            }
        })
    }

    /// Acquires the real mutex, then records the `acquire` event.
    pub fn lock(&self) -> TracedMutexGuard {
        self.inner.lock();
        let t = current_thread();
        with_recorder(|rec| {
            rec.builder.acquire(t, self.lock);
        });
        TracedMutexGuard {
            lock: self.lock,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for TracedMutexGuard {
    fn drop(&mut self) {
        let t = current_thread();
        with_recorder(|rec| {
            rec.builder.release(t, self.lock);
        });
        self.inner.unlock(); // unlock the real mutex after the event
    }
}

/// Records a `branch` event and passes the condition through — wrap the
/// condition of any `if`/`while` whose outcome depends on traced reads:
///
/// ```text
/// if guard(x.load() == 0) { ... }
/// ```
#[track_caller]
pub fn guard(cond: bool) -> bool {
    let at = Location::caller();
    let t = current_thread();
    with_recorder(|rec| {
        let loc = loc_here(rec, at);
        rec.builder.branch_at(t, loc);
    });
    cond
}

/// Handle to a traced thread; [`TracedJoinHandle::join`] records the `join`
/// event.
#[derive(Debug)]
pub struct TracedJoinHandle<T> {
    child: ThreadId,
    handle: std::thread::JoinHandle<T>,
}

impl<T> TracedJoinHandle<T> {
    /// Joins the real thread, then records `end`/`join`.
    ///
    /// # Panics
    ///
    /// Panics if the traced thread panicked.
    pub fn join(self) -> T {
        let out = self.handle.join().expect("traced thread panicked");
        let t = current_thread();
        with_recorder(|rec| {
            rec.builder.join(t, self.child);
        });
        out
    }
}

/// Spawns a traced OS thread: records the `fork` event, registers the new
/// thread, and runs the closure.
pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> TracedJoinHandle<T> {
    let parent = current_thread();
    let child = with_recorder(|rec| rec.builder.fork(parent));
    let handle = std::thread::spawn(move || {
        SELF_ID.with(|c| c.set(Some(child)));
        f()
    });
    TracedJoinHandle { child, handle }
}

/// Records an explicit `end` for the current thread (optional; `join` emits
/// it automatically for threads that are joined).
pub fn end_thread() {
    let t = current_thread();
    with_recorder(|rec| {
        rec.builder.end(t);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvcore::RaceDetector;
    use rvtrace::check_consistency;

    #[test]
    fn records_consistent_traces_and_finds_real_races() {
        let mut session = Session::begin();
        let x = TracedVar::new("x", 0);
        let l = TracedMutex::new("l");
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = x.clone();
                let l = l.clone();
                spawn(move || {
                    {
                        let _g = l.lock();
                        x.fetch_add(1); // protected
                    }
                    x.load() // unprotected read — racy
                })
            })
            .collect();
        let unprotected = x.load(); // racy read on main too
        let _ = unprotected;
        for h in handles {
            h.join();
        }
        let trace = session.finish();
        assert!(
            check_consistency(&trace).is_empty(),
            "recorder linearizes correctly"
        );
        // Whatever the OS schedule, the unprotected reads race with the
        // protected writes.
        let report = RaceDetector::new().detect(&trace);
        assert!(report.n_races() >= 1, "{report}");
        assert_eq!(report.stats.witness_failures, 0);
        // Signatures carry real source locations.
        let sig = report.races[0].signature;
        let name = trace.loc_name(sig.a).unwrap();
        assert!(name.contains("instrument/src/lib.rs"), "{name}");
    }

    #[test]
    fn guard_records_branches() {
        let mut session = Session::begin();
        let x = TracedVar::new("x", 0);
        if guard(x.load() == 0) {
            x.store(1);
        }
        let trace = session.finish();
        assert_eq!(trace.stats().branches, 1);
        assert!(check_consistency(&trace).is_empty());
    }

    #[test]
    fn mutex_protected_program_is_race_free() {
        let mut session = Session::begin();
        let x = TracedVar::new("x", 0);
        let l = TracedMutex::new("l");
        let t = spawn({
            let (x, l) = (x.clone(), l.clone());
            move || {
                let _g = l.lock();
                x.fetch_add(1);
            }
        });
        {
            let _g = l.lock();
            x.fetch_add(1);
        }
        t.join();
        let final_value = x.load(); // after join: ordered
        assert_eq!(final_value, 2);
        let trace = session.finish();
        assert!(check_consistency(&trace).is_empty());
        let report = RaceDetector::new().detect(&trace);
        assert_eq!(report.n_races(), 0, "{report}");
    }

    #[test]
    fn sessions_are_exclusive_and_reusable() {
        let mut s1 = Session::begin();
        let x = TracedVar::new("x", 7);
        assert_eq!(x.load(), 7);
        let t1 = s1.finish();
        assert_eq!(t1.stats().reads_writes, 1);
        // A second session starts cleanly after the first finishes.
        let mut s2 = Session::begin();
        let y = TracedVar::new("y", 0);
        y.store(3);
        let t2 = s2.finish();
        assert_eq!(t2.stats().reads_writes, 1);
    }
}
