//! Length-prefixed framing for trace streams over byte transports.
//!
//! The detection daemon (`rvserved`) multiplexes many trace streams over
//! unix sockets; each stream is a sequence of *frames* so the server can
//! tell message boundaries apart without sniffing the payload. The wire
//! format is deliberately minimal:
//!
//! * a frame is a 4-byte big-endian payload length followed by that many
//!   payload bytes;
//! * a zero-length frame is valid and is what the client uses as an
//!   end-of-stream marker;
//! * payloads larger than [`MAX_FRAME`] are rejected on both ends, so a
//!   corrupt or malicious length prefix cannot make the reader allocate
//!   unboundedly.
//!
//! Framing is transport-level only: payload bytes are opaque here (the
//! daemon layers its JSON handshake and raw trace chunks on top).
//!
//! # Examples
//!
//! ```
//! use rvtrace::frame::{read_frame, write_frame};
//!
//! let mut wire = Vec::new();
//! write_frame(&mut wire, b"hello").unwrap();
//! write_frame(&mut wire, b"").unwrap(); // end-of-stream marker
//!
//! let mut r = wire.as_slice();
//! assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
//! assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
//! assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
//! ```

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload, 64 MiB. Large traces are sent
/// as many chunk-sized frames, so this bounds a reader's worst-case
/// allocation without bounding stream length.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// Fails with [`io::ErrorKind::InvalidInput`] if `payload` exceeds
/// [`MAX_FRAME`], and otherwise propagates transport errors.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Reads one frame's payload.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary). EOF in the middle of a frame — a peer that died mid-send —
/// fails with [`io::ErrorKind::UnexpectedEof`], and a length prefix beyond
/// [`MAX_FRAME`] fails with [`io::ErrorKind::InvalidData`] without
/// allocating.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // A clean EOF is only clean before the first header byte.
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len)?;
        }
        Err(e) => return Err(e),
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_payloads_and_boundaries() {
        let payloads: Vec<Vec<u8>> = vec![
            b"first".to_vec(),
            Vec::new(),
            vec![0u8; 70_000], // larger than one read syscall's worth
            b"{\"json\":1}".to_vec(),
        ];
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut r = wire.as_slice();
        for p in &payloads {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(p));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_an_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocating() {
        let wire = u32::MAX.to_be_bytes();
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_rejected() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let err = write_frame(&mut Vec::new(), &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
