//! Events and their attributes (paper §2.1).
//!
//! An execution trace is a sequence of [`Event`]s, each performed by a thread
//! on a concurrent object (shared memory location, lock, thread). In addition
//! to the classical event types, the model includes the paper's novel
//! [`EventKind::Branch`] event, which abstracts a possible control-flow
//! change: conservatively, a branch depends on *all* previous reads by the
//! same thread.

use std::fmt;

/// Identifier of a thread in a trace.
///
/// Thread ids are small dense integers assigned by the
/// [`TraceBuilder`](crate::TraceBuilder); the main thread is conventionally
/// `ThreadId(0)`.
///
/// # Examples
///
/// ```
/// use rvtrace::ThreadId;
/// let main = ThreadId::MAIN;
/// assert_eq!(main.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(
    /// The raw id.
    pub u32,
);

impl ThreadId {
    /// The conventional id of the initial (main) thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Returns the id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a shared memory location (a scalar variable or one array
/// element).
///
/// # Examples
///
/// ```
/// use rvtrace::VarId;
/// let x = VarId(3);
/// assert_eq!(x.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(
    /// The raw id.
    pub u32,
);

impl VarId {
    /// Returns the id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a (non-reentrant) lock.
///
/// Reentrant acquisitions are expected to be filtered out at trace-collection
/// time (paper §4); the [`TraceBuilder`](crate::TraceBuilder) does this
/// automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(
    /// The raw id.
    pub u32,
);

impl LockId {
    /// Returns the id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identifier of a channel (an mpsc-style message queue).
///
/// Channels enter the model as a happens-before vocabulary: a `Recv` that
/// observed a message is ordered after the `Send` that produced it via a
/// [`MsgLink`](crate::MsgLink), analogous to a wait/notify link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId(
    /// The raw id.
    pub u32,
);

impl ChanId {
    /// Returns the id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A data value carried by a read or write event.
///
/// Values are opaque to the detector except for equality: the maximal causal
/// model is *data-abstract* (paper §2.3), so only "reads the same value as in
/// the original trace" matters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(
    /// The raw value.
    pub i64,
);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value(v)
    }
}

/// A static program location (e.g. a source line), used for race signatures
/// and reporting. Two dynamic events from the same program statement share a
/// `Loc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(
    /// The raw id.
    pub u32,
);

impl Loc {
    /// A location for events with no meaningful source position.
    pub const UNKNOWN: Loc = Loc(u32::MAX);

    /// Returns the id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Loc::UNKNOWN {
            write!(f, "L?")
        } else {
            write!(f, "L{}", self.0)
        }
    }
}

/// Index of an event within its trace. The trace order *is* the observed
/// execution order, so `EventId`s are totally ordered by observation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(
    /// The raw id.
    pub u32,
);

impl EventId {
    /// Returns the id as a dense index into the trace's event vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The operation an event performs (paper §2.1, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// First event of a thread. May occur only after the thread was forked
    /// (except for the main thread).
    Begin,
    /// Last event of a thread.
    End,
    /// Read `value` from shared location `var`.
    Read {
        /// The location read.
        var: VarId,
        /// The value observed.
        value: Value,
    },
    /// Write `value` to shared location `var`.
    Write {
        /// The location written.
        var: VarId,
        /// The value written.
        value: Value,
    },
    /// Acquire lock `lock` (outermost acquisition only).
    Acquire {
        /// The lock acquired.
        lock: LockId,
    },
    /// Release lock `lock` (outermost release only).
    Release {
        /// The lock released.
        lock: LockId,
    },
    /// Acquire lock `lock` in read (shared) mode: RwLock read guards.
    /// Concurrent read-mode holders are allowed; a read-mode hold excludes
    /// only write-mode acquisition.
    AcquireRead {
        /// The lock acquired in read mode.
        lock: LockId,
    },
    /// Release a read-mode hold of `lock`.
    ReleaseRead {
        /// The lock released from read mode.
        lock: LockId,
    },
    /// Send one message on channel `chan`. Modeled as a release-like
    /// synchronization: the matched `Recv` must-happen-after it (via a
    /// [`MsgLink`](crate::MsgLink)).
    Send {
        /// The channel sent on.
        chan: ChanId,
    },
    /// Receive one message from channel `chan`. The matched `Send` (if
    /// linked) must-happen-before it.
    Recv {
        /// The channel received from.
        chan: ChanId,
    },
    /// Fork a new thread `child`.
    Fork {
        /// The thread created.
        child: ThreadId,
    },
    /// Block until thread `child` terminates.
    Join {
        /// The thread joined.
        child: ThreadId,
    },
    /// Jump to a new operation: a point where control flow may change
    /// depending on thread-local computation over previously read values.
    Branch,
    /// Signal one waiter on `lock`'s condition (paper §4: `notifyAll` is
    /// modeled as one `Notify` per waiting thread).
    Notify {
        /// The lock whose condition is signalled.
        lock: LockId,
    },
}

impl EventKind {
    /// A stable lowercase name for the kind (ignoring payloads) — the
    /// metric key suffix used by event-kind histograms (`trace.kind.read`,
    /// `trace.kind.acquire`, …).
    #[inline]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Read { .. } => "read",
            EventKind::Write { .. } => "write",
            EventKind::Acquire { .. } => "acquire",
            EventKind::Release { .. } => "release",
            EventKind::AcquireRead { .. } => "acquire-read",
            EventKind::ReleaseRead { .. } => "release-read",
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
            EventKind::Fork { .. } => "fork",
            EventKind::Join { .. } => "join",
            EventKind::Branch => "branch",
            EventKind::Notify { .. } => "notify",
        }
    }

    /// The shared variable accessed, if this is a read or write.
    #[inline]
    pub fn var(&self) -> Option<VarId> {
        match *self {
            EventKind::Read { var, .. } | EventKind::Write { var, .. } => Some(var),
            _ => None,
        }
    }

    /// The data value, if this is a read or write.
    #[inline]
    pub fn value(&self) -> Option<Value> {
        match *self {
            EventKind::Read { value, .. } | EventKind::Write { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The lock involved, if this is an acquire/release (either mode) or
    /// notify.
    #[inline]
    pub fn lock(&self) -> Option<LockId> {
        match *self {
            EventKind::Acquire { lock }
            | EventKind::Release { lock }
            | EventKind::AcquireRead { lock }
            | EventKind::ReleaseRead { lock }
            | EventKind::Notify { lock } => Some(lock),
            _ => None,
        }
    }

    /// The channel involved, if this is a send or recv.
    #[inline]
    pub fn chan(&self) -> Option<ChanId> {
        match *self {
            EventKind::Send { chan } | EventKind::Recv { chan } => Some(chan),
            _ => None,
        }
    }

    /// True for `Read`.
    #[inline]
    pub fn is_read(&self) -> bool {
        matches!(self, EventKind::Read { .. })
    }

    /// True for `Write`.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, EventKind::Write { .. })
    }

    /// True for `Read` or `Write`.
    #[inline]
    pub fn is_access(&self) -> bool {
        self.is_read() || self.is_write()
    }

    /// True for `Branch`.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self, EventKind::Branch)
    }

    /// True for synchronization events (everything except reads, writes and
    /// branches). This matches the "#Sync" metric of the paper's Table 1.
    #[inline]
    pub fn is_sync(&self) -> bool {
        !self.is_access() && !self.is_branch()
    }
}

/// One event of an execution trace: a `(thread, operation, location)` tuple.
///
/// # Examples
///
/// ```
/// use rvtrace::{Event, EventKind, Loc, ThreadId, Value, VarId};
///
/// let e = Event::new(ThreadId(1), EventKind::Write { var: VarId(0), value: Value(1) }, Loc(3));
/// assert!(e.kind.is_write());
/// assert_eq!(e.thread, ThreadId(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// The thread performing the operation.
    pub thread: ThreadId,
    /// The operation performed.
    pub kind: EventKind,
    /// The static program location the operation comes from.
    pub loc: Loc,
}

impl Event {
    /// Creates a new event.
    pub fn new(thread: ThreadId, kind: EventKind, loc: Loc) -> Self {
        Event { thread, kind, loc }
    }

    /// Returns a copy of this event with the data value replaced, i.e. the
    /// paper's `e[v/data]`. Returns `None` for non-access events.
    pub fn with_value(&self, v: Value) -> Option<Event> {
        let kind = match self.kind {
            EventKind::Read { var, .. } => EventKind::Read { var, value: v },
            EventKind::Write { var, .. } => EventKind::Write { var, value: v },
            _ => return None,
        };
        Some(Event { kind, ..*self })
    }

    /// Data-abstract equivalence (the paper's `≈` on single events): equal up
    /// to the data values in read and write events.
    pub fn data_abstract_eq(&self, other: &Event) -> bool {
        if self.thread != other.thread || self.loc != other.loc {
            return false;
        }
        match (self.kind, other.kind) {
            (EventKind::Read { var: a, .. }, EventKind::Read { var: b, .. }) => a == b,
            (EventKind::Write { var: a, .. }, EventKind::Write { var: b, .. }) => a == b,
            (x, y) => x == y,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EventKind::Begin => write!(f, "begin({})", self.thread),
            EventKind::End => write!(f, "end({})", self.thread),
            EventKind::Read { var, value } => {
                write!(f, "read({}, {}, {})", self.thread, var, value)
            }
            EventKind::Write { var, value } => {
                write!(f, "write({}, {}, {})", self.thread, var, value)
            }
            EventKind::Acquire { lock } => write!(f, "acquire({}, {})", self.thread, lock),
            EventKind::Release { lock } => write!(f, "release({}, {})", self.thread, lock),
            EventKind::AcquireRead { lock } => {
                write!(f, "acquire-read({}, {})", self.thread, lock)
            }
            EventKind::ReleaseRead { lock } => {
                write!(f, "release-read({}, {})", self.thread, lock)
            }
            EventKind::Send { chan } => write!(f, "send({}, {})", self.thread, chan),
            EventKind::Recv { chan } => write!(f, "recv({}, {})", self.thread, chan),
            EventKind::Fork { child } => write!(f, "fork({}, {})", self.thread, child),
            EventKind::Join { child } => write!(f, "join({}, {})", self.thread, child),
            EventKind::Branch => write!(f, "branch({})", self.thread),
            EventKind::Notify { lock } => write!(f, "notify({}, {})", self.thread, lock),
        }
    }
}

/// A conflicting operation pair (paper Definition 3): two accesses to the
/// same variable by different threads, at least one a write. By convention
/// `first` occurs before `second` in the observed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cop {
    /// The earlier access in trace order.
    pub first: EventId,
    /// The later access in trace order.
    pub second: EventId,
}

impl Cop {
    /// Creates a COP, normalizing order so `first < second`.
    pub fn new(a: EventId, b: EventId) -> Self {
        if a <= b {
            Cop {
                first: a,
                second: b,
            }
        } else {
            Cop {
                first: b,
                second: a,
            }
        }
    }
}

impl fmt::Display for Cop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(t: u32, x: u32, v: i64) -> Event {
        Event::new(
            ThreadId(t),
            EventKind::Write {
                var: VarId(x),
                value: Value(v),
            },
            Loc(0),
        )
    }

    #[test]
    fn kind_accessors() {
        let e = w(1, 2, 3);
        assert_eq!(e.kind.var(), Some(VarId(2)));
        assert_eq!(e.kind.value(), Some(Value(3)));
        assert_eq!(e.kind.lock(), None);
        assert!(e.kind.is_write() && e.kind.is_access() && !e.kind.is_read());
        assert!(!e.kind.is_sync());
        let a = Event::new(ThreadId(0), EventKind::Acquire { lock: LockId(7) }, Loc(1));
        assert_eq!(a.kind.lock(), Some(LockId(7)));
        assert!(a.kind.is_sync());
        let b = Event::new(ThreadId(0), EventKind::Branch, Loc(1));
        assert!(b.kind.is_branch() && !b.kind.is_sync());
    }

    #[test]
    fn extended_kind_accessors() {
        let ar = Event::new(
            ThreadId(0),
            EventKind::AcquireRead { lock: LockId(2) },
            Loc(0),
        );
        assert_eq!(ar.kind.lock(), Some(LockId(2)));
        assert_eq!(ar.kind.name(), "acquire-read");
        assert!(ar.kind.is_sync());
        let rr = Event::new(
            ThreadId(0),
            EventKind::ReleaseRead { lock: LockId(2) },
            Loc(0),
        );
        assert_eq!(rr.kind.lock(), Some(LockId(2)));
        assert!(rr.kind.is_sync());
        let s = Event::new(ThreadId(1), EventKind::Send { chan: ChanId(3) }, Loc(0));
        assert_eq!(s.kind.chan(), Some(ChanId(3)));
        assert_eq!(s.kind.lock(), None);
        assert!(s.kind.is_sync());
        let r = Event::new(ThreadId(2), EventKind::Recv { chan: ChanId(3) }, Loc(0));
        assert_eq!(r.kind.chan(), Some(ChanId(3)));
        assert_eq!(r.kind.name(), "recv");
        assert_eq!(format!("{ar}"), "acquire-read(t0, l2)");
        assert_eq!(format!("{s}"), "send(t1, c3)");
        assert_eq!(format!("{r}"), "recv(t2, c3)");
    }

    #[test]
    fn with_value_replaces_data() {
        let e = w(1, 2, 3);
        let e2 = e.with_value(Value(9)).unwrap();
        assert_eq!(e2.kind.value(), Some(Value(9)));
        assert!(e.data_abstract_eq(&e2));
        let b = Event::new(ThreadId(0), EventKind::Branch, Loc(1));
        assert!(b.with_value(Value(1)).is_none());
    }

    #[test]
    fn data_abstract_eq_discriminates() {
        let e = w(1, 2, 3);
        assert!(e.data_abstract_eq(&w(1, 2, 5)));
        assert!(!e.data_abstract_eq(&w(1, 4, 3))); // different var
        assert!(!e.data_abstract_eq(&w(2, 2, 3))); // different thread
        let r = Event::new(
            ThreadId(1),
            EventKind::Read {
                var: VarId(2),
                value: Value(3),
            },
            Loc(0),
        );
        assert!(!e.data_abstract_eq(&r)); // read vs write
    }

    #[test]
    fn cop_normalizes() {
        let c = Cop::new(EventId(5), EventId(2));
        assert_eq!(c.first, EventId(2));
        assert_eq!(c.second, EventId(5));
        assert_eq!(format!("{c}"), "(e2, e5)");
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", w(1, 2, 3)), "write(t1, x2, 3)");
        let e = Event::new(ThreadId(0), EventKind::Fork { child: ThreadId(1) }, Loc(0));
        assert_eq!(format!("{e}"), "fork(t0, t1)");
        assert_eq!(format!("{}", Loc::UNKNOWN), "L?");
        assert_eq!(format!("{}", Loc(4)), "L4");
    }
}
