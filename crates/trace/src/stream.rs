//! Chunked, resumable trace ingestion.
//!
//! [`StreamParser`] decodes a trace incrementally from byte chunks — no
//! whole-document buffer, no whole-document [`JsonValue`] tree — in either
//! of two wire formats:
//!
//! * **Whole-document JSON** (the [`to_json`](crate::to_json) format): the
//!   top-level object is scanned key by key and the `events` array is
//!   framed and decoded element by element, so only one event's JSON is
//!   ever materialized. Metadata fields are applied as they complete;
//!   since [`to_json`](crate::to_json) writes metadata *after* the event
//!   array, [`metadata_complete`](StreamParser::metadata_complete) only
//!   turns true near the end of the document for traces in that layout
//!   (reordered documents with metadata first complete earlier).
//! * **NDJSON** (the [`to_ndjson`](crate::to_ndjson) format): an optional
//!   header line carrying the metadata, then one event object per line.
//!   Metadata is complete after line one, which is what lets a streaming
//!   detector overlap window solving with the read.
//!
//! The format is auto-detected from the first JSON value's depth-1 keys
//! (`events` ⇒ whole-document; `thread`/`kind`/`loc` ⇒ NDJSON event;
//! a first value with neither ⇒ NDJSON header), or forced with
//! [`StreamParser::with_format`].
//!
//! Both paths reuse the whole-file machinery — the recursive parser for
//! framed spans ([`parse_json`](crate::parse_json)'s internals), the event
//! and metadata decoders — so a document accepted by
//! [`from_json`](crate::from_json) decodes to the *same* [`TraceData`]
//! here, and a document rejected there is rejected here, with the same
//! message and byte offset in all but pathological cases (a document
//! carrying several independent errors may surface a different one of
//! them first: the whole-file reader finds every syntax error before any
//! shape error, the incremental one reports strictly by byte position).
//! Error snippets are best-effort, taken from the bytes still buffered.
//!
//! # Examples
//!
//! ```
//! use rvtrace::{to_json, StreamParser, ThreadId, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! b.write(ThreadId::MAIN, x, 1);
//! let json = to_json(&b.finish());
//!
//! let mut p = StreamParser::new();
//! for chunk in json.as_bytes().chunks(7) {
//!     p.feed(chunk).unwrap();
//! }
//! p.finish().unwrap();
//! assert_eq!(p.events().len(), 1);
//! ```

use std::io::Read;
use std::ops::Range;
use std::time::Instant;

use crate::event::Event;
use crate::json::{
    apply_metadata_field, from_json_data, parse_span, read_event, shape, validate_wait_links,
    IngestStats, JsonError, JsonValue, METADATA_KEYS, SNIPPET_CONTEXT,
};
use crate::trace::{Trace, TraceData};

/// The wire formats [`StreamParser`] understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFormat {
    /// One whole-document JSON object (the [`to_json`](crate::to_json)
    /// format).
    Json,
    /// Newline-delimited JSON: an optional metadata header line, then one
    /// event object per line (the [`to_ndjson`](crate::to_ndjson)
    /// format). Blank lines are ignored.
    Ndjson,
}

/// Where the whole-document state machine stands.
#[derive(Debug)]
enum DocState {
    /// Expecting the opening `{`.
    Start,
    /// Expecting a key, or (when `brace_ok`) the closing `}`.
    Key { brace_ok: bool },
    /// Expecting the `:` after `key`.
    Colon { key: String },
    /// Expecting the value of `key`.
    Value { key: String },
    /// Inside the streamed `events` array.
    Events(EventsState),
    /// Expecting `,` (next key) or the closing `}`.
    AfterValue,
    /// Document closed; only trailing whitespace is allowed.
    Done,
    /// The top level is not an object: buffer everything and reproduce
    /// the whole-file behavior at [`StreamParser::finish`].
    Fallback,
}

#[derive(Debug, Clone, Copy)]
enum EventsState {
    /// Expecting an element, or `]` (empty array).
    ElemOrEnd,
    /// Expecting an element (after a comma).
    Elem,
    /// Expecting `,` or `]`.
    CommaOrEnd,
}

#[derive(Debug, Default)]
struct SeenKeys {
    events: bool,
    metadata: [bool; METADATA_KEYS.len()],
}

impl SeenKeys {
    fn all() -> Self {
        SeenKeys {
            events: true,
            metadata: [true; METADATA_KEYS.len()],
        }
    }
}

/// Where the NDJSON machine stands.
#[derive(Debug, Clone, Copy)]
enum NdState {
    /// Before the first non-blank line (header or headerless first event).
    First,
    /// Every further non-blank line is an event.
    Events,
}

/// Incremental format detection: scan the first JSON value's depth-1 keys
/// without consuming anything.
#[derive(Debug, Default)]
struct AutoScan {
    /// Resume point in the buffer.
    pos: usize,
    /// Nesting depth (1 after the first `{`).
    depth: u32,
    started: bool,
    in_str: bool,
    esc: bool,
    /// At depth 1: the next string is an object key.
    expect_key: bool,
    /// Raw bytes of the depth-1 key being scanned.
    key: Vec<u8>,
}

#[derive(Debug)]
enum Mode {
    Auto(AutoScan),
    Json(DocState, SeenKeys),
    Ndjson(NdState),
}

enum Step {
    Progress,
    NeedMore,
}

/// A chunked, resumable trace parser: feed byte chunks as they arrive,
/// then [`finish`](StreamParser::finish). Events become visible through
/// [`events`](StreamParser::events) as soon as their bytes are complete;
/// [`metadata_complete`](StreamParser::metadata_complete) tells a
/// streaming driver when window construction may start. See the module
/// docs for formats and error parity.
#[derive(Debug)]
pub struct StreamParser {
    mode: Mode,
    /// Unconsumed input bytes; `buf[0]` sits at absolute offset `base`.
    buf: Vec<u8>,
    base: usize,
    /// Cursor into `buf`: bytes before it are consumed this pump and
    /// drained at the end of the pump loop.
    pos: usize,
    total: usize,
    data: TraceData,
    metadata_complete: bool,
    parse_time: std::time::Duration,
}

impl Default for StreamParser {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamParser {
    /// A parser that auto-detects the format from the first bytes.
    pub fn new() -> Self {
        StreamParser::with_mode(Mode::Auto(AutoScan::default()))
    }

    /// A parser for one specific format (no detection).
    pub fn with_format(format: StreamFormat) -> Self {
        StreamParser::with_mode(match format {
            StreamFormat::Json => Mode::Json(DocState::Start, SeenKeys::default()),
            StreamFormat::Ndjson => Mode::Ndjson(NdState::First),
        })
    }

    fn with_mode(mode: Mode) -> Self {
        StreamParser {
            mode,
            buf: Vec::new(),
            base: 0,
            pos: 0,
            total: 0,
            data: TraceData::default(),
            metadata_complete: false,
            parse_time: std::time::Duration::ZERO,
        }
    }

    /// The detected (or forced) format, once known.
    pub fn format(&self) -> Option<StreamFormat> {
        match self.mode {
            Mode::Auto(_) => None,
            Mode::Json(..) => Some(StreamFormat::Json),
            Mode::Ndjson(_) => Some(StreamFormat::Ndjson),
        }
    }

    /// Every event decoded so far, in trace order.
    pub fn events(&self) -> &[Event] {
        &self.data.events
    }

    /// The decoded trace so far (events plus whatever metadata fields have
    /// completed).
    pub fn data(&self) -> &TraceData {
        &self.data
    }

    /// Consumes the parser. Call after [`finish`](StreamParser::finish).
    pub fn into_data(self) -> TraceData {
        self.data
    }

    /// True once every metadata field's bytes have been decoded (NDJSON:
    /// after the header line; whole-document: after all five metadata keys
    /// — or, for both, once [`finish`](StreamParser::finish) succeeded).
    /// From this point [`data`](StreamParser::data)'s non-event fields are
    /// final, so window boundary state built from them is valid.
    pub fn metadata_complete(&self) -> bool {
        self.metadata_complete
    }

    /// Total bytes fed so far.
    pub fn bytes_fed(&self) -> usize {
        self.total
    }

    /// Ingestion counters: bytes fed, events decoded, and the time spent
    /// inside [`feed`](StreamParser::feed)/[`finish`](StreamParser::finish).
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            bytes: self.total,
            events: self.data.events.len(),
            parse_time: self.parse_time,
        }
    }

    /// Feeds the next chunk of input. Events complete in this chunk are
    /// decoded immediately. A returned error is fatal to the parse.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), JsonError> {
        // A zero-length read is a true no-op: no new bytes means the state
        // machine cannot progress, and pumping anyway would re-drain the
        // snippet margin for nothing. (Callers looping over `Read::read`
        // may legitimately see transient zero-length chunks.)
        if chunk.is_empty() {
            return Ok(());
        }
        let t = Instant::now();
        self.total += chunk.len();
        self.buf.extend_from_slice(chunk);
        let r = self.pump(false);
        self.parse_time += t.elapsed();
        r
    }

    /// Signals end of input and completes the parse: processes any
    /// trailing bytes, then checks the document for completeness (the
    /// whole-document format's required keys; a truncated value fails
    /// with the whole-file parser's error for the same fragment).
    pub fn finish(&mut self) -> Result<(), JsonError> {
        let t = Instant::now();
        let r = self.pump(true).and_then(|()| self.check_complete());
        self.parse_time += t.elapsed();
        if r.is_ok() {
            self.metadata_complete = true;
        }
        r
    }

    // ---------------------------------------------------------- plumbing

    fn err_at(&self, local: usize, message: impl Into<String>) -> JsonError {
        // Snippet from the bytes still buffered. `pump` retains at least
        // `SNIPPET_CONTEXT` consumed bytes, so errors at or past the
        // cursor reproduce the whole-file parser's window exactly (same
        // width, same char-boundary clamping).
        let at = local.min(self.buf.len());
        let mut start = at.saturating_sub(SNIPPET_CONTEXT);
        while start > 0 && self.buf[start] & 0xC0 == 0x80 {
            start -= 1;
        }
        let mut end = (at + SNIPPET_CONTEXT).min(self.buf.len());
        while end < self.buf.len() && self.buf[end] & 0xC0 == 0x80 {
            end += 1;
        }
        JsonError {
            message: message.into(),
            offset: self.base + local,
            snippet: String::from_utf8_lossy(&self.buf[start..end]).into_owned(),
        }
    }

    fn span_str(&self, range: Range<usize>) -> Result<&str, JsonError> {
        std::str::from_utf8(&self.buf[range.clone()])
            .map_err(|_| self.err_at(range.start, "invalid utf8"))
    }

    /// Parses the framed value at `buf[range]` with whole-input offsets.
    /// A parse error's snippet is rebuilt from the full buffer: the span
    /// alone cannot show context before the value, but the whole-file
    /// parser's window can (and does) reach across the frame boundary.
    fn parse_framed(&self, range: Range<usize>) -> Result<JsonValue, JsonError> {
        let abs = self.base + range.start;
        parse_span(self.span_str(range)?, abs)
            .map_err(|e| self.err_at(e.offset - self.base, e.message))
    }

    fn pump(&mut self, at_eof: bool) -> Result<(), JsonError> {
        let r = loop {
            let step = match self.mode {
                Mode::Auto(_) => self.step_auto(at_eof),
                Mode::Json(..) => self.step_doc(at_eof),
                Mode::Ndjson(_) => self.step_nd(at_eof),
            };
            match step {
                Ok(Step::Progress) => continue,
                Ok(Step::NeedMore) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        // Drain consumed bytes, but keep a snippet-sized tail of them so
        // later errors can show context from before the failure point,
        // exactly as the whole-file parser's window does.
        let keep = self.pos.min(SNIPPET_CONTEXT);
        let mut cut = self.pos - keep;
        // Never cut mid-code-point: if the margin started with a UTF-8
        // continuation byte, `err_at`'s boundary clamp would stop dead at
        // the buffer start and lossy-decode a replacement character the
        // whole-file parser's snippet does not have.
        while cut > 0 && self.buf[cut] & 0xC0 == 0x80 {
            cut -= 1;
        }
        if cut > 0 {
            self.buf.drain(..cut);
            self.base += cut;
            // Backing up over continuation bytes can retain a few more
            // than `keep` bytes — the cursor offset must match.
            self.pos -= cut;
        }
        r
    }

    /// Position of the first non-whitespace byte at or after the cursor.
    fn skip_ws(&self) -> usize {
        let mut i = self.pos;
        while let Some(&b) = self.buf.get(i) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                i += 1;
            } else {
                break;
            }
        }
        i
    }

    /// Frames one JSON value starting at `start` (a non-ws byte). Returns
    /// the exclusive end, or `None` when more input is needed. An empty
    /// frame (a delimiter where a value must start) is reported as the
    /// whole-file parser's `unexpected byte`; a frame still open at end
    /// of input fails with the whole-file parser's error for the
    /// truncated fragment (`unterminated string`, `unexpected end of
    /// input`, …) at the input's true end.
    fn frame_value(&self, start: usize, at_eof: bool) -> Result<Option<usize>, JsonError> {
        let buf = &self.buf;
        let complete = match buf[start] {
            b'{' | b'[' => {
                let (mut depth, mut in_str, mut esc) = (0usize, false, false);
                let mut end = None;
                for (i, &b) in buf[start..].iter().enumerate() {
                    if in_str {
                        if esc {
                            esc = false;
                        } else if b == b'\\' {
                            esc = true;
                        } else if b == b'"' {
                            in_str = false;
                        }
                    } else {
                        match b {
                            b'"' => in_str = true,
                            b'{' | b'[' => depth += 1,
                            b'}' | b']' => {
                                depth -= 1;
                                if depth == 0 {
                                    end = Some(start + i + 1);
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                end
            }
            b'"' => {
                let mut esc = false;
                let mut end = None;
                for (i, &b) in buf[start + 1..].iter().enumerate() {
                    if esc {
                        esc = false;
                    } else if b == b'\\' {
                        esc = true;
                    } else if b == b'"' {
                        end = Some(start + i + 2);
                        break;
                    }
                }
                end
            }
            delim @ (b',' | b']' | b'}' | b':') => {
                return Err(self.err_at(start, format!("unexpected byte `{}`", delim as char)))
            }
            _ => {
                // Literal or number: runs to the next delimiter — which,
                // at end of input, only EOF can confirm.
                let end = buf[start..]
                    .iter()
                    .position(|&b| matches!(b, b',' | b']' | b'}' | b' ' | b'\t' | b'\n' | b'\r'))
                    .map(|i| start + i);
                match end {
                    Some(e) => Some(e),
                    None if at_eof => Some(buf.len()),
                    None => None,
                }
            }
        };
        match complete {
            Some(end) => Ok(Some(end)),
            None if at_eof => Err(match self.parse_framed(start..self.buf.len()) {
                Err(e) => e,
                // A truncated frame cannot parse; keep a safe fallback.
                Ok(_) => self.err_at(self.buf.len(), "unexpected end of input"),
            }),
            None => Ok(None),
        }
    }

    fn check_complete(&mut self) -> Result<(), JsonError> {
        if matches!(self.mode, Mode::Json(DocState::Fallback, _)) {
            // Top level wasn't an object: everything is still buffered, so
            // the whole-file reader reproduces its exact behavior (usually
            // an error; field order is free in JSON, so in principle it
            // could succeed — then so do we).
            let text = self.span_str(0..self.buf.len())?.to_string();
            self.data = from_json_data(&text)?;
            self.mode = Mode::Json(DocState::Done, SeenKeys::all());
            return Ok(());
        }
        match &self.mode {
            // Empty/whitespace-only input never decided a format: the
            // whole-file parser reports end-of-input at the document start.
            Mode::Auto(_) => Err(self.err_at(self.buf.len(), "unexpected end of input")),
            Mode::Json(DocState::Done, seen) => {
                if !seen.events {
                    return Err(shape("missing field `events`"));
                }
                for (i, key) in METADATA_KEYS.iter().enumerate() {
                    if !seen.metadata[i] {
                        return Err(shape(format!("missing field `{key}`")));
                    }
                }
                Ok(())
            }
            Mode::Json(..) => Err(self.err_at(self.buf.len(), "unexpected end of input")),
            Mode::Ndjson(_) => Ok(()),
        }
    }

    // ------------------------------------------------------ format: auto

    fn step_auto(&mut self, at_eof: bool) -> Result<Step, JsonError> {
        let Mode::Auto(scan) = &mut self.mode else {
            unreachable!()
        };
        if !scan.started {
            let mut i = scan.pos;
            while matches!(self.buf.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                i += 1;
            }
            scan.pos = i;
            match self.buf.get(i) {
                // Nothing but whitespace so far; if this is EOF,
                // `check_complete`'s Auto arm reports it.
                None => return Ok(Step::NeedMore),
                Some(b'{') => {
                    scan.started = true;
                    scan.depth = 1;
                    scan.expect_key = true;
                    scan.pos = i + 1;
                }
                // Not an object: only the whole-document reader can
                // produce the right (error) behavior.
                Some(_) => return Ok(self.decide(StreamFormat::Json)),
            }
        }
        let Mode::Auto(scan) = &mut self.mode else {
            unreachable!()
        };
        let mut decision = None;
        while let Some(&b) = self.buf.get(scan.pos) {
            scan.pos += 1;
            if scan.in_str {
                if scan.esc {
                    scan.esc = false;
                } else if b == b'\\' {
                    scan.esc = true;
                } else if b == b'"' {
                    scan.in_str = false;
                    if scan.depth == 1 && scan.expect_key {
                        decision = match scan.key.as_slice() {
                            b"events" => Some(StreamFormat::Json),
                            b"thread" | b"kind" | b"loc" => Some(StreamFormat::Ndjson),
                            _ => None,
                        };
                        if decision.is_some() {
                            break;
                        }
                    }
                } else if scan.depth == 1 && scan.expect_key {
                    scan.key.push(b);
                }
                continue;
            }
            match b {
                b'"' => {
                    scan.in_str = true;
                    if scan.depth == 1 && scan.expect_key {
                        scan.key.clear();
                    }
                }
                b'{' | b'[' => scan.depth += 1,
                b'}' | b']' => {
                    scan.depth = scan.depth.saturating_sub(1);
                    if scan.depth == 0 {
                        // First value closed without a deciding key: a
                        // metadata-only object is an NDJSON header.
                        decision = Some(StreamFormat::Ndjson);
                        break;
                    }
                }
                b':' if scan.depth == 1 => scan.expect_key = false,
                b',' if scan.depth == 1 => scan.expect_key = true,
                _ => {}
            }
        }
        if let Some(format) = decision {
            return Ok(self.decide(format));
        }
        if at_eof {
            // Truncated before the first value decided anything; the
            // whole-document machine reports the truncation.
            return Ok(self.decide(StreamFormat::Json));
        }
        Ok(Step::NeedMore)
    }

    /// Locks in a format and replays the (fully buffered) input on it.
    fn decide(&mut self, format: StreamFormat) -> Step {
        debug_assert_eq!(self.pos, 0, "auto mode never consumes");
        self.mode = match format {
            StreamFormat::Json => Mode::Json(DocState::Start, SeenKeys::default()),
            StreamFormat::Ndjson => Mode::Ndjson(NdState::First),
        };
        Step::Progress
    }

    // -------------------------------------------- format: whole-document

    fn doc_state(&mut self) -> &mut DocState {
        let Mode::Json(state, _) = &mut self.mode else {
            unreachable!()
        };
        state
    }

    fn step_doc(&mut self, at_eof: bool) -> Result<Step, JsonError> {
        let i = self.skip_ws();
        let state = std::mem::replace(self.doc_state(), DocState::Start);
        let Some(&byte) = self.buf.get(i) else {
            if matches!(state, DocState::Done) {
                self.pos = i; // trailing whitespace is consumable
            }
            *self.doc_state() = state;
            return Ok(Step::NeedMore);
        };
        match state {
            DocState::Start => {
                if byte == b'{' {
                    self.pos = i + 1;
                    *self.doc_state() = DocState::Key { brace_ok: true };
                } else {
                    *self.doc_state() = DocState::Fallback;
                }
                Ok(Step::Progress)
            }
            DocState::Fallback => {
                *self.doc_state() = DocState::Fallback;
                Ok(Step::NeedMore)
            }
            DocState::Key { brace_ok } => {
                if byte == b'}' && brace_ok {
                    self.pos = i + 1;
                    *self.doc_state() = DocState::Done;
                    return Ok(Step::Progress);
                }
                if byte != b'"' {
                    return Err(self.err_at(i, "expected `\"`"));
                }
                let Some(end) = self.frame_value(i, at_eof)? else {
                    *self.doc_state() = DocState::Key { brace_ok };
                    return Ok(Step::NeedMore);
                };
                let key = match self.parse_framed(i..end)? {
                    JsonValue::Str(s) => s,
                    _ => unreachable!("a framed string parses to a string"),
                };
                self.pos = end;
                *self.doc_state() = DocState::Colon { key };
                Ok(Step::Progress)
            }
            DocState::Colon { key } => {
                if byte != b':' {
                    return Err(self.err_at(i, "expected `:`"));
                }
                self.pos = i + 1;
                *self.doc_state() = DocState::Value { key };
                Ok(Step::Progress)
            }
            DocState::Value { key } => {
                let events_pending = key == "events" && {
                    let Mode::Json(_, seen) = &self.mode else {
                        unreachable!()
                    };
                    !seen.events
                };
                if events_pending {
                    if byte != b'[' {
                        // The whole-file reader parses the value, then
                        // `field("events")?.as_array()?` rejects it.
                        let Some(end) = self.frame_value(i, at_eof)? else {
                            *self.doc_state() = DocState::Value { key };
                            return Ok(Step::NeedMore);
                        };
                        let v = self.parse_framed(i..end)?;
                        return Err(shape(format!("expected array, found {v:?}")));
                    }
                    let Mode::Json(_, seen) = &mut self.mode else {
                        unreachable!()
                    };
                    seen.events = true;
                    self.pos = i + 1;
                    *self.doc_state() = DocState::Events(EventsState::ElemOrEnd);
                    return Ok(Step::Progress);
                }
                let Some(end) = self.frame_value(i, at_eof)? else {
                    *self.doc_state() = DocState::Value { key };
                    return Ok(Step::NeedMore);
                };
                let v = self.parse_framed(i..end)?;
                self.apply_doc_field(&key, &v)?;
                self.pos = end;
                *self.doc_state() = DocState::AfterValue;
                Ok(Step::Progress)
            }
            DocState::Events(es) => match (es, byte) {
                (EventsState::ElemOrEnd | EventsState::CommaOrEnd, b']') => {
                    self.pos = i + 1;
                    *self.doc_state() = DocState::AfterValue;
                    Ok(Step::Progress)
                }
                (EventsState::CommaOrEnd, b',') => {
                    self.pos = i + 1;
                    *self.doc_state() = DocState::Events(EventsState::Elem);
                    Ok(Step::Progress)
                }
                (EventsState::CommaOrEnd, _) => Err(self.err_at(i, "expected `,` or `]`")),
                (EventsState::ElemOrEnd | EventsState::Elem, _) => {
                    let Some(end) = self.frame_value(i, at_eof)? else {
                        *self.doc_state() = DocState::Events(es);
                        return Ok(Step::NeedMore);
                    };
                    let v = self.parse_framed(i..end)?;
                    self.data.events.push(read_event(&v)?);
                    self.pos = end;
                    *self.doc_state() = DocState::Events(EventsState::CommaOrEnd);
                    Ok(Step::Progress)
                }
            },
            DocState::AfterValue => match byte {
                b',' => {
                    self.pos = i + 1;
                    *self.doc_state() = DocState::Key { brace_ok: false };
                    Ok(Step::Progress)
                }
                b'}' => {
                    self.pos = i + 1;
                    *self.doc_state() = DocState::Done;
                    Ok(Step::Progress)
                }
                _ => Err(self.err_at(i, "expected `,` or `}`")),
            },
            DocState::Done => Err(self.err_at(i, "trailing characters after JSON value")),
        }
    }

    /// Applies a completed top-level field (first occurrence wins, like
    /// [`JsonValue::field`]; unknown keys are syntax-checked and ignored).
    fn apply_doc_field(&mut self, key: &str, v: &JsonValue) -> Result<(), JsonError> {
        if key == "msg_links" {
            // Optional key (absent in older documents): applied when present,
            // never counted toward metadata completeness.
            if self.data.msg_links.is_empty() {
                apply_metadata_field(&mut self.data, key, v)?;
            }
            return Ok(());
        }
        let Some(idx) = METADATA_KEYS.iter().position(|k| *k == key) else {
            return Ok(());
        };
        let Mode::Json(_, seen) = &mut self.mode else {
            unreachable!()
        };
        if seen.metadata[idx] {
            return Ok(());
        }
        seen.metadata[idx] = true;
        let done = seen.metadata.iter().all(|&b| b);
        apply_metadata_field(&mut self.data, key, v)?;
        if done {
            self.metadata_complete = true;
        }
        Ok(())
    }

    // ---------------------------------------------------- format: ndjson

    fn step_nd(&mut self, at_eof: bool) -> Result<Step, JsonError> {
        let start = self.pos;
        match self.buf[start..].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                self.nd_line(start..start + nl)?;
                self.pos = start + nl + 1;
                Ok(Step::Progress)
            }
            None if at_eof && start < self.buf.len() => {
                // Trailing line without a newline.
                let end = self.buf.len();
                self.nd_line(start..end)?;
                self.pos = end;
                Ok(Step::Progress)
            }
            None => Ok(Step::NeedMore),
        }
    }

    fn nd_line(&mut self, range: Range<usize>) -> Result<(), JsonError> {
        if self.buf[range.clone()]
            .iter()
            .all(|b| matches!(b, b' ' | b'\t' | b'\r'))
        {
            return Ok(());
        }
        let v = self.parse_framed(range)?;
        let first = matches!(self.mode, Mode::Ndjson(NdState::First));
        if first {
            self.mode = Mode::Ndjson(NdState::Events);
            if v.get("thread").is_some() {
                // Headerless stream: the first line is already an event,
                // and there is no metadata to wait for.
                self.metadata_complete = true;
                self.data.events.push(read_event(&v)?);
            } else {
                for (k, val) in v.as_object()? {
                    apply_metadata_field(&mut self.data, k, val)?;
                }
                self.metadata_complete = true;
            }
        } else {
            self.data.events.push(read_event(&v)?);
        }
        Ok(())
    }
}

fn read_error(total: usize, e: std::io::Error) -> JsonError {
    JsonError {
        message: format!("read error: {e}"),
        offset: total,
        snippet: String::new(),
    }
}

/// Reads a complete trace from `reader` in chunks (format auto-detected),
/// without cross-field validation — the lenient path's streaming
/// equivalent of [`from_json_data`](crate::from_json_data): pair with
/// [`salvage_trace`](crate::salvage_trace).
pub fn read_trace_data<R: Read>(mut reader: R) -> Result<(TraceData, IngestStats), JsonError> {
    let mut parser = StreamParser::new();
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        let n = reader
            .read(&mut chunk)
            .map_err(|e| read_error(parser.bytes_fed(), e))?;
        if n == 0 {
            break;
        }
        parser.feed(&chunk[..n])?;
    }
    parser.finish()?;
    let stats = parser.stats();
    Ok((parser.into_data(), stats))
}

/// Reads and validates a complete trace from `reader` in chunks (format
/// auto-detected) — the streaming equivalent of
/// [`from_json_with_stats`](crate::from_json_with_stats), accepting the
/// same documents and rejecting the same ones.
pub fn read_trace<R: Read>(reader: R) -> Result<(Trace, IngestStats), JsonError> {
    let (data, stats) = read_trace_data(reader)?;
    validate_wait_links(&data)?;
    Ok((Trace::from_data(data), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::{ThreadId, Value, VarId};
    use crate::json::{from_json, to_json, to_ndjson};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        b.initial(x, 7);
        let l = b.new_lock("l");
        let t2 = b.fork(ThreadId::MAIN);
        b.acquire(ThreadId::MAIN, l);
        b.write(ThreadId::MAIN, x, 1);
        b.release(ThreadId::MAIN, l);
        b.acquire(t2, l);
        let tok = b.wait_begin(t2, l);
        let n = b.notify(ThreadId::MAIN, l);
        b.wait_end(tok, Some(n));
        b.read(t2, y, 0);
        b.branch(t2);
        b.join(ThreadId::MAIN, t2);
        b.finish()
    }

    fn feed_all(input: &[u8], chunk: usize) -> Result<TraceData, JsonError> {
        let mut p = StreamParser::new();
        for c in input.chunks(chunk.max(1)) {
            p.feed(c)?;
        }
        p.finish()?;
        Ok(p.into_data())
    }

    #[test]
    fn doc_format_streams_to_identical_data_at_any_chunk_size() {
        let t = sample();
        let json = to_json(&t);
        let whole = from_json_data(&json).unwrap();
        for chunk in [1, 2, 3, 7, 16, 64, json.len()] {
            let streamed = feed_all(json.as_bytes(), chunk).unwrap();
            assert_eq!(streamed, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn ndjson_format_streams_to_identical_data_at_any_chunk_size() {
        let t = sample();
        let nd = to_ndjson(&t);
        for chunk in [1, 2, 3, 7, 16, 64, nd.len()] {
            let streamed = feed_all(nd.as_bytes(), chunk).unwrap();
            assert_eq!(&streamed, t.data(), "chunk={chunk}");
        }
    }

    #[test]
    fn ndjson_metadata_completes_at_the_header() {
        let t = sample();
        let nd = to_ndjson(&t);
        let header_end = nd.find('\n').unwrap() + 1;
        let mut p = StreamParser::new();
        p.feed(&nd.as_bytes()[..header_end]).unwrap();
        assert!(p.metadata_complete(), "header line decodes the metadata");
        assert_eq!(p.format(), Some(StreamFormat::Ndjson));
        p.feed(&nd.as_bytes()[header_end..]).unwrap();
        p.finish().unwrap();
        assert_eq!(p.events(), t.events());
    }

    #[test]
    fn doc_metadata_completes_only_after_all_fields() {
        let t = sample();
        let json = to_json(&t);
        let mut p = StreamParser::new();
        // Everything but the last byte (the closing `}`): var_names, the
        // last metadata field, completed just before it.
        p.feed(&json.as_bytes()[..json.len() - 1]).unwrap();
        assert_eq!(p.format(), Some(StreamFormat::Json));
        assert!(p.metadata_complete());
        assert_eq!(p.events().len(), t.len(), "events decoded incrementally");
        p.feed(&json.as_bytes()[json.len() - 1..]).unwrap();
        p.finish().unwrap();
    }

    // Satellite: NDJSON edge cases — blank lines, no trailing newline.
    #[test]
    fn ndjson_tolerates_blank_lines_and_missing_trailing_newline() {
        let t = sample();
        let nd = to_ndjson(&t);
        let mut messy = String::from("\n  \n");
        for line in nd.lines() {
            messy.push_str(line);
            messy.push_str("\n\n");
        }
        messy.pop(); // drop the trailing newlines entirely
        messy.pop();
        let streamed = feed_all(messy.as_bytes(), 5).unwrap();
        assert_eq!(&streamed, t.data());
    }

    #[test]
    fn headerless_ndjson_is_a_trace_with_default_metadata() {
        let input = "{\"thread\":0,\"kind\":{\"Write\":{\"var\":0,\"value\":1}},\"loc\":0}\n\
                     {\"thread\":0,\"kind\":{\"Read\":{\"var\":0,\"value\":1}},\"loc\":1}\n";
        let mut p = StreamParser::new();
        p.feed(input.as_bytes()).unwrap();
        assert_eq!(p.format(), Some(StreamFormat::Ndjson));
        assert!(p.metadata_complete());
        p.finish().unwrap();
        assert_eq!(p.events().len(), 2);
        assert!(p.data().initial_values.is_empty());
    }

    #[test]
    fn empty_ndjson_is_an_empty_trace() {
        let mut p = StreamParser::with_format(StreamFormat::Ndjson);
        p.feed(b"").unwrap();
        p.finish().unwrap();
        assert!(p.events().is_empty());
    }

    #[test]
    fn empty_input_fails_like_the_whole_file_parser() {
        let mut p = StreamParser::new();
        let err = p.finish().unwrap_err();
        let whole = from_json("").unwrap_err();
        assert_eq!(err.message, whole.message);
        assert_eq!(err.offset, whole.offset);
    }

    /// Whole-file and streamed errors render identically — message, byte
    /// offset AND context snippet — for every truncation point of a real
    /// document, whether the prefix arrives in one chunk or byte by byte
    /// (which maximally exercises the buffer drain between feeds).
    #[test]
    fn truncation_errors_match_whole_file_at_every_cut() {
        let t = sample();
        let json = to_json(&t);
        for cut in 1..json.len() {
            let part = &json[..cut];
            let whole = from_json(part).unwrap_err();
            let mut p = StreamParser::with_format(StreamFormat::Json);
            let streamed = p
                .feed(part.as_bytes())
                .and_then(|()| p.finish())
                .unwrap_err();
            assert_eq!(streamed.to_string(), whole.to_string(), "cut={cut}");
            let mut p = StreamParser::with_format(StreamFormat::Json);
            let trickled = part
                .as_bytes()
                .iter()
                .try_for_each(|b| p.feed(std::slice::from_ref(b)))
                .and_then(|()| p.finish())
                .unwrap_err();
            assert_eq!(trickled.to_string(), whole.to_string(), "cut={cut}");
        }
    }

    #[test]
    fn malformed_documents_match_whole_file_errors() {
        for input in [
            "{}",
            "{\"events\": 5}",
            "{\"events\": 1.5}",
            "{\"events\":[{\"thread\":0,\"kind\":\"Nope\",\"loc\":0}]}",
            "{\"events\":[],\"initial_values\":{}}",
            "{\"events\":[]} trailing",
            "{\"events\":[],,}",
            "{,}",
            "[1,2,3] trailing",
            "not json",
            "{\"events\":[1,2]}",
            "{\"events\":[{\"thread\":0}]}",
        ] {
            let whole = from_json(input).unwrap_err();
            let mut p = StreamParser::with_format(StreamFormat::Json);
            let streamed = p
                .feed(input.as_bytes())
                .and_then(|()| p.finish())
                .unwrap_err();
            assert_eq!(streamed.message, whole.message, "input={input}");
            assert_eq!(streamed.offset, whole.offset, "input={input}");
        }
    }

    #[test]
    fn ndjson_syntax_error_carries_line_accurate_offset() {
        let good = "{\"thread\":0,\"kind\":\"Branch\",\"loc\":0}\n";
        let bad = "{\"thread\":0,\"kind\":\"Branch\",\"loc\":0.5}\n";
        let input = format!("{good}{good}{bad}");
        let mut p = StreamParser::new();
        let err = p
            .feed(input.as_bytes())
            .and_then(|()| p.finish())
            .unwrap_err();
        assert!(err.message.contains("floating-point"), "{err}");
        // The offset points into the third line, at the `.`.
        assert_eq!(err.offset, 2 * good.len() + bad.find('.').unwrap());
    }

    #[test]
    fn duplicate_and_unknown_fields_first_occurrence_wins() {
        let input = r#"{"events":[],"initial_values":{"0":5},
            "initial_values":{"0":9},"wait_links":[],"volatiles":[],
            "future_field":{"x":[1,2]},"loc_names":{},"var_names":{}}"#;
        let whole = from_json_data(input).unwrap();
        let streamed = feed_all(input.as_bytes(), 9).unwrap();
        assert_eq!(streamed, whole);
        assert_eq!(streamed.initial_values[&VarId(0)], Value(5));
    }

    #[test]
    fn reordered_metadata_first_document_completes_metadata_early() {
        let t = sample();
        let json = to_json(&t);
        // Move the events array to the end: metadata then completes while
        // events are still streaming in.
        let bracket = json.find("],").unwrap(); // `]` closing the events array
        let reordered = format!(
            "{{{},{}}}",
            &json[bracket + 2..json.len() - 1],
            &json[1..bracket + 1],
        );
        let mut p = StreamParser::new();
        let half = reordered.len() - 40;
        p.feed(&reordered.as_bytes()[..half]).unwrap();
        assert!(p.metadata_complete(), "metadata came first");
        p.feed(&reordered.as_bytes()[half..]).unwrap();
        p.finish().unwrap();
        assert_eq!(p.data(), &from_json_data(&reordered).unwrap());
        assert_eq!(p.data().events, t.events());
    }

    #[test]
    fn read_trace_matches_from_json_and_validates_wait_links() {
        let t = sample();
        let json = to_json(&t);
        let (trace, stats) = read_trace(json.as_bytes()).unwrap();
        assert_eq!(trace.events(), t.events());
        assert_eq!(trace.data().loc_names, t.data().loc_names);
        assert_eq!(stats.bytes, json.len());
        assert_eq!(stats.events, t.len());

        let bad = r#"{"events":[{"thread":0,"kind":"Branch","loc":0}],
            "initial_values":{},"volatiles":[],
            "wait_links":[{"release":0,"acquire":99,"notify":null}],
            "loc_names":{},"var_names":{}}"#;
        let err = read_trace(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // The data-level reader accepts it (salvage handles the link).
        assert!(read_trace_data(bad.as_bytes()).is_ok());
    }

    #[test]
    fn ndjson_roundtrip_through_reader() {
        let t = sample();
        let (back, _) = read_trace(to_ndjson(&t).as_bytes()).unwrap();
        assert_eq!(back.events(), t.events());
        assert_eq!(back.data(), t.data());
    }
}
