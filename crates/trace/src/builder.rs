//! Ergonomic construction of traces.
//!
//! [`TraceBuilder`] performs the trace-collection normalizations of paper §4
//! automatically:
//!
//! * `begin(t)` is emitted before the first event of every forked thread;
//! * reentrant lock acquisitions are filtered (only the outermost
//!   acquire/release pair produces events);
//! * `wait()` desugars into a release/acquire pair linked to the matching
//!   `notify` ([`WaitLink`](crate::WaitLink));
//! * `join` emits the child's `end(t)` if it has not ended yet.

use std::collections::BTreeMap;

use crate::event::{ChanId, Event, EventId, EventKind, Loc, LockId, ThreadId, Value, VarId};
use crate::trace::{MsgLink, Trace, TraceData, WaitLink};

#[derive(Debug, Default, Clone)]
struct ThreadState {
    forked: bool,
    begun: bool,
    ended: bool,
    /// Reentrancy depth per lock.
    lock_depth: BTreeMap<LockId, u32>,
    /// Read-mode (shared) reentrancy depth per lock.
    read_depth: BTreeMap<LockId, u32>,
}

/// A token identifying an in-progress `wait()` started with
/// [`TraceBuilder::wait_begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitToken(usize);

/// Incremental builder for [`Trace`]s.
///
/// Every emit method returns the [`EventId`] of the event just recorded
/// (reentrant lock operations return `None` since they are filtered out).
///
/// # Examples
///
/// Build the start of the paper's Figure 4 trace:
///
/// ```
/// use rvtrace::{ThreadId, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let (x, y) = (b.var("x"), b.var("y"));
/// let l = b.new_lock("l");
/// let t1 = ThreadId::MAIN;
/// let t2 = b.fork(t1);
/// b.acquire(t1, l);
/// b.write(t1, x, 1);
/// b.write(t1, y, 1);
/// b.release(t1, l);
/// let trace = b.finish();
/// assert_eq!(trace.stats().syncs, 3); // fork, acquire, release (t2 never acted)
/// assert_eq!(trace.threads(), &[t1, t2]);
/// ```
///
/// # Panics
///
/// The emit methods panic on structurally impossible inputs (acting on an
/// ended thread, releasing an un-held lock); the builder is meant for trusted
/// producers (the simulator, tests). Use
/// [`check_consistency`](crate::consistency::check_consistency) to validate
/// untrusted traces.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    data: TraceData,
    threads: BTreeMap<ThreadId, ThreadState>,
    next_thread: u32,
    next_var: u32,
    next_lock: u32,
    next_chan: u32,
    next_loc: u32,
    /// Pending waits: (thread, lock, release event) by token.
    pending_waits: Vec<(ThreadId, LockId, EventId)>,
    /// Current value of each variable, for read auto-values.
    values: BTreeMap<VarId, Value>,
}

impl TraceBuilder {
    /// Creates a builder with the main thread already started.
    pub fn new() -> Self {
        let mut b = TraceBuilder {
            next_thread: 1,
            ..Default::default()
        };
        b.threads.insert(
            ThreadId::MAIN,
            ThreadState {
                forked: true,
                begun: true,
                ..Default::default()
            },
        );
        b
    }

    /// Registers a fresh shared variable with a debug name.
    pub fn var(&mut self, name: &str) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        self.data.var_names.insert(v, name.to_string());
        v
    }

    /// Registers a fresh *volatile* shared variable (paper §4: conflicting
    /// accesses to it are not reported as races).
    pub fn volatile_var(&mut self, name: &str) -> VarId {
        let v = self.var(name);
        self.data.volatiles.push(v);
        v
    }

    /// Registers a fresh lock with a debug name.
    pub fn new_lock(&mut self, name: &str) -> LockId {
        let l = LockId(self.next_lock);
        self.next_lock += 1;
        let _ = name; // lock names are only used for Display via LockId
        l
    }

    /// Registers a fresh channel with a debug name.
    pub fn new_chan(&mut self, name: &str) -> ChanId {
        let c = ChanId(self.next_chan);
        self.next_chan += 1;
        let _ = name; // channel names are only used for Display via ChanId
        c
    }

    /// Sets the initial value of a variable (default `0`).
    pub fn initial(&mut self, var: VarId, value: i64) {
        self.data.initial_values.insert(var, Value(value));
        self.values.insert(var, Value(value));
    }

    /// Registers a named program location to attach to events via the `_at`
    /// method variants.
    pub fn loc(&mut self, name: &str) -> Loc {
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        self.data.loc_names.insert(l, name.to_string());
        l
    }

    fn fresh_loc(&mut self) -> Loc {
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        l
    }

    fn state(&mut self, t: ThreadId) -> &mut ThreadState {
        self.threads.entry(t).or_default()
    }

    fn push(&mut self, t: ThreadId, kind: EventKind, loc: Loc) -> EventId {
        {
            let st = self.threads.get(&t).cloned().unwrap_or_default();
            assert!(!st.ended, "thread {t} already ended");
            if !st.begun {
                assert!(st.forked, "thread {t} was never forked");
                let bl = self.fresh_loc();
                self.data.events.push(Event::new(t, EventKind::Begin, bl));
                self.state(t).begun = true;
            }
        }
        let id = EventId(self.data.events.len() as u32);
        self.data.events.push(Event::new(t, kind, loc));
        id
    }

    /// Emits `read(t, var, value)` at a fresh location.
    pub fn read(&mut self, t: ThreadId, var: VarId, value: i64) -> EventId {
        let loc = self.fresh_loc();
        self.read_at(t, var, value, loc)
    }

    /// Emits `read(t, var, value)` at an explicit location.
    pub fn read_at(&mut self, t: ThreadId, var: VarId, value: i64, loc: Loc) -> EventId {
        self.push(
            t,
            EventKind::Read {
                var,
                value: Value(value),
            },
            loc,
        )
    }

    /// Emits a read returning the variable's current value under the trace so
    /// far (its last written value, or its initial value). This keeps
    /// hand-built traces read-consistent by construction.
    pub fn read_current(&mut self, t: ThreadId, var: VarId) -> EventId {
        let v = self.values.get(&var).copied().unwrap_or_default();
        let loc = self.fresh_loc();
        self.push(t, EventKind::Read { var, value: v }, loc)
    }

    /// Emits `write(t, var, value)` at a fresh location.
    pub fn write(&mut self, t: ThreadId, var: VarId, value: i64) -> EventId {
        let loc = self.fresh_loc();
        self.write_at(t, var, value, loc)
    }

    /// Emits `write(t, var, value)` at an explicit location.
    pub fn write_at(&mut self, t: ThreadId, var: VarId, value: i64, loc: Loc) -> EventId {
        self.values.insert(var, Value(value));
        self.push(
            t,
            EventKind::Write {
                var,
                value: Value(value),
            },
            loc,
        )
    }

    /// Emits `branch(t)` at a fresh location.
    pub fn branch(&mut self, t: ThreadId) -> EventId {
        let loc = self.fresh_loc();
        self.branch_at(t, loc)
    }

    /// Emits `branch(t)` at an explicit location.
    pub fn branch_at(&mut self, t: ThreadId, loc: Loc) -> EventId {
        self.push(t, EventKind::Branch, loc)
    }

    /// Emits `acquire(t, lock)`, filtering reentrant acquisitions. Returns
    /// `None` when the acquisition was reentrant (no event emitted).
    pub fn acquire(&mut self, t: ThreadId, lock: LockId) -> Option<EventId> {
        assert!(
            self.state(t).read_depth.get(&lock).copied().unwrap_or(0) == 0,
            "thread {t} write-acquiring {lock} it holds in read mode"
        );
        let depth = self.state(t).lock_depth.entry(lock).or_insert(0);
        *depth += 1;
        if *depth > 1 {
            return None;
        }
        let loc = self.fresh_loc();
        Some(self.push(t, EventKind::Acquire { lock }, loc))
    }

    /// Emits `release(t, lock)`, filtering reentrant releases.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not hold the lock.
    pub fn release(&mut self, t: ThreadId, lock: LockId) -> Option<EventId> {
        let depth = self
            .state(t)
            .lock_depth
            .get_mut(&lock)
            .unwrap_or_else(|| panic!("thread {t} releasing {lock} it never acquired"));
        assert!(*depth > 0, "thread {t} releasing {lock} it does not hold");
        *depth -= 1;
        if *depth > 0 {
            return None;
        }
        let loc = self.fresh_loc();
        Some(self.push(t, EventKind::Release { lock }, loc))
    }

    /// Emits `acquire-read(t, lock)` — a read-mode (shared) acquisition —
    /// filtering reentrant read acquisitions by the same thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread already holds the lock in write mode (lock
    /// upgrades/downgrades are not part of the model).
    pub fn acquire_read(&mut self, t: ThreadId, lock: LockId) -> Option<EventId> {
        assert!(
            self.state(t).lock_depth.get(&lock).copied().unwrap_or(0) == 0,
            "thread {t} read-acquiring {lock} it holds in write mode"
        );
        let depth = self.state(t).read_depth.entry(lock).or_insert(0);
        *depth += 1;
        if *depth > 1 {
            return None;
        }
        let loc = self.fresh_loc();
        Some(self.push(t, EventKind::AcquireRead { lock }, loc))
    }

    /// Emits `release-read(t, lock)`, filtering reentrant read releases.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not hold the lock in read mode.
    pub fn release_read(&mut self, t: ThreadId, lock: LockId) -> Option<EventId> {
        let depth =
            self.state(t).read_depth.get_mut(&lock).unwrap_or_else(|| {
                panic!("thread {t} read-releasing {lock} it never read-acquired")
            });
        assert!(
            *depth > 0,
            "thread {t} read-releasing {lock} it does not hold"
        );
        *depth -= 1;
        if *depth > 0 {
            return None;
        }
        let loc = self.fresh_loc();
        Some(self.push(t, EventKind::ReleaseRead { lock }, loc))
    }

    /// Emits `send(t, chan)` and returns its event id; link it to a recv
    /// via [`TraceBuilder::recv`].
    pub fn send(&mut self, t: ThreadId, chan: ChanId) -> EventId {
        let loc = self.fresh_loc();
        self.push(t, EventKind::Send { chan }, loc)
    }

    /// Emits `recv(t, chan)`, recording a [`MsgLink`] to the send whose
    /// message this recv consumed in the observed execution (if known).
    ///
    /// # Panics
    ///
    /// Panics if `send` names an event that has not been emitted yet (a
    /// message cannot be received before it was sent).
    pub fn recv(&mut self, t: ThreadId, chan: ChanId, send: Option<EventId>) -> EventId {
        if let Some(s) = send {
            assert!(
                s.index() < self.data.events.len(),
                "recv linked to unsent message {s}"
            );
        }
        let loc = self.fresh_loc();
        let id = self.push(t, EventKind::Recv { chan }, loc);
        if let Some(s) = send {
            self.data.msg_links.push(MsgLink { send: s, recv: id });
        }
        id
    }

    /// Emits `fork(parent, child)` for a fresh child thread id and returns
    /// the child id. The child's `begin` is emitted lazily before its first
    /// event.
    pub fn fork(&mut self, parent: ThreadId) -> ThreadId {
        let child = ThreadId(self.next_thread);
        self.next_thread += 1;
        let loc = self.fresh_loc();
        self.push(parent, EventKind::Fork { child }, loc);
        self.state(child).forked = true;
        child
    }

    /// Emits `end(t)` for the child if needed, then `join(parent, child)`.
    ///
    /// # Panics
    ///
    /// Panics if the child was never forked.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) -> EventId {
        let st = self.threads.get(&child).cloned().unwrap_or_default();
        assert!(st.forked, "joining thread {child} that was never forked");
        if !st.ended {
            self.end(child);
        }
        let loc = self.fresh_loc();
        self.push(parent, EventKind::Join { child }, loc)
    }

    /// Emits `end(t)` explicitly. Idempotent per thread via `join`; calling
    /// twice panics.
    pub fn end(&mut self, t: ThreadId) -> EventId {
        let loc = self.fresh_loc();
        let id = self.push(t, EventKind::End, loc);
        self.state(t).ended = true;
        id
    }

    /// Starts a `wait()` on `lock`: emits the release half and returns a
    /// token to complete the wait with [`TraceBuilder::wait_end`].
    ///
    /// # Panics
    ///
    /// Panics if the thread does not hold the lock (at any reentrancy depth
    /// other than exactly 1; Java semantics require full release, our model
    /// supports only outermost waits).
    pub fn wait_begin(&mut self, t: ThreadId, lock: LockId) -> WaitToken {
        let rel = self
            .release(t, lock)
            .expect("wait() requires outermost lock level");
        self.pending_waits.push((t, lock, rel));
        WaitToken(self.pending_waits.len() - 1)
    }

    /// Emits `notify(t, lock)` and returns its event id; link it to a wait via
    /// [`TraceBuilder::wait_end`].
    pub fn notify(&mut self, t: ThreadId, lock: LockId) -> EventId {
        let loc = self.fresh_loc();
        self.push(t, EventKind::Notify { lock }, loc)
    }

    /// Completes a `wait()`: emits the re-acquire half and records the
    /// [`WaitLink`] to the notify event observed to wake this wait.
    pub fn wait_end(&mut self, token: WaitToken, notify: Option<EventId>) -> EventId {
        let (t, lock, rel) = self.pending_waits[token.0];
        let acq = self
            .acquire(t, lock)
            .expect("wait re-acquire cannot be reentrant");
        self.data.wait_links.push(WaitLink {
            release: rel,
            acquire: acq,
            notify,
        });
        acq
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.data.events.len()
    }

    /// True when no events were emitted yet.
    pub fn is_empty(&self) -> bool {
        self.data.events.is_empty()
    }

    /// The id the next emitted event will get.
    pub fn next_event_id(&self) -> EventId {
        EventId(self.data.events.len() as u32)
    }

    /// Finalizes the trace.
    pub fn finish(self) -> Trace {
        Trace::from_data(self.data)
    }

    /// Lenient ingestion of untrusted raw data: drops events that violate
    /// the consistency axioms (with per-category diagnostics) instead of
    /// rejecting the trace. See [`salvage_trace`](crate::salvage::salvage_trace).
    pub fn salvage(data: TraceData) -> (Trace, crate::salvage::SalvageReport) {
        crate::salvage::salvage_trace(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn auto_begin_for_forked_threads() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t2 = b.fork(ThreadId::MAIN);
        b.write(t2, x, 1);
        let tr = b.finish();
        let kinds: Vec<_> = tr.events().iter().map(|e| e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Fork { .. }));
        assert!(matches!(kinds[1], EventKind::Begin));
        assert!(matches!(kinds[2], EventKind::Write { .. }));
        assert_eq!(tr.events()[1].thread, t2);
    }

    #[test]
    fn reentrant_locks_filtered() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("l");
        let t = ThreadId::MAIN;
        assert!(b.acquire(t, l).is_some());
        assert!(b.acquire(t, l).is_none()); // reentrant
        assert!(b.release(t, l).is_none()); // inner release
        assert!(b.release(t, l).is_some()); // outermost
        let tr = b.finish();
        assert_eq!(tr.len(), 2);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn release_unheld_panics() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("l");
        b.release(ThreadId::MAIN, l);
    }

    #[test]
    fn join_auto_ends_child() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t2 = b.fork(ThreadId::MAIN);
        b.write(t2, x, 5);
        b.join(ThreadId::MAIN, t2);
        let tr = b.finish();
        let kinds: Vec<_> = tr.events().iter().map(|e| (e.thread, e.kind)).collect();
        assert!(kinds.iter().any(|&(t, k)| t == t2 && k == EventKind::End));
        assert!(matches!(kinds.last().unwrap().1, EventKind::Join { .. }));
    }

    #[test]
    fn wait_notify_links() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let tok = b.wait_begin(t1, l);
        b.acquire(t2, l);
        let n = b.notify(t2, l);
        b.release(t2, l);
        b.wait_end(tok, Some(n));
        b.release(t1, l);
        let tr = b.finish();
        assert_eq!(tr.wait_links().len(), 1);
        let wl = tr.wait_links()[0];
        assert_eq!(wl.notify, Some(n));
        assert!(matches!(
            tr.event(wl.release).kind,
            EventKind::Release { .. }
        ));
        assert!(matches!(
            tr.event(wl.acquire).kind,
            EventKind::Acquire { .. }
        ));
    }

    #[test]
    fn rwlock_reentrancy_filtered() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("rw");
        let t = ThreadId::MAIN;
        assert!(b.acquire_read(t, l).is_some());
        assert!(b.acquire_read(t, l).is_none()); // reentrant read
        assert!(b.release_read(t, l).is_none());
        assert!(b.release_read(t, l).is_some());
        let tr = b.finish();
        assert_eq!(tr.len(), 2);
        assert!(matches!(tr.events()[0].kind, EventKind::AcquireRead { .. }));
    }

    #[test]
    #[should_panic(expected = "write-acquiring")]
    fn write_acquire_under_read_hold_panics() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("rw");
        b.acquire_read(ThreadId::MAIN, l);
        b.acquire(ThreadId::MAIN, l);
    }

    #[test]
    fn channel_links_recorded() {
        let mut b = TraceBuilder::new();
        let c = b.new_chan("ch");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let s = b.send(t1, c);
        let r = b.recv(t2, c, Some(s));
        let tr = b.finish();
        assert_eq!(tr.msg_links().len(), 1);
        assert_eq!(tr.msg_links()[0], MsgLink { send: s, recv: r });
        // Unlinked recv (e.g. message from outside the trace) records no link.
        let mut b = TraceBuilder::new();
        let c = b.new_chan("ch");
        b.recv(ThreadId::MAIN, c, None);
        assert!(b.finish().msg_links().is_empty());
    }

    #[test]
    fn read_current_tracks_last_write() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.initial(x, 7);
        let t = ThreadId::MAIN;
        let r0 = b.read_current(t, x);
        b.write(t, x, 3);
        let r1 = b.read_current(t, x);
        let tr = b.finish();
        assert_eq!(tr.event(r0).kind.value().unwrap().0, 7);
        assert_eq!(tr.event(r1).kind.value().unwrap().0, 3);
    }

    #[test]
    fn volatile_registration() {
        let mut b = TraceBuilder::new();
        let v = b.volatile_var("y");
        b.write(ThreadId::MAIN, v, 1);
        let tr = b.finish();
        assert!(tr.is_volatile(v));
    }
}
