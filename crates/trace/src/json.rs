//! Self-contained JSON (de)serialization of [`Trace`]s.
//!
//! This replaces the former `serde`/`serde_json` dependency so the
//! workspace builds offline. The wire format is kept compatible with the
//! previously derived one: a trace is its [`TraceData`] — events with
//! externally-tagged kinds, maps keyed by stringified ids — so traces
//! serialized by earlier builds still load.
//!
//! ```json
//! {"events":[{"thread":0,"kind":{"Write":{"var":0,"value":1}},"loc":2}],
//!  "initial_values":{"0":0},"volatiles":[],"wait_links":[],
//!  "loc_names":{"2":"Main.java:3"},"var_names":{"0":"x"}}
//! ```
//!
//! # Examples
//!
//! ```
//! use rvtrace::{from_json, to_json, ThreadId, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! b.write(ThreadId::MAIN, x, 1);
//! let trace = b.finish();
//! let round = from_json(&to_json(&trace)).unwrap();
//! assert_eq!(round.events(), trace.events());
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{ChanId, Event, EventId, EventKind, Loc, LockId, ThreadId, Value, VarId};
use crate::trace::{MsgLink, Trace, TraceData, WaitLink};

/// A JSON parse or shape error, with a byte offset for syntax errors and a
/// short excerpt of the input around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where a syntax error was detected (0 for
    /// shape errors discovered after parsing).
    pub offset: usize,
    /// Up to ~30 characters of input surrounding `offset` (empty for shape
    /// errors, which concern the document's structure rather than a byte).
    pub snippet: String,
}

/// How many bytes of context an error snippet shows on either side of the
/// failing offset. The streaming parser retains this much consumed input
/// so its snippets match the whole-file parser's byte for byte.
pub(crate) const SNIPPET_CONTEXT: usize = 15;

impl JsonError {
    /// Attaches an input excerpt around the error's byte offset, so the
    /// message pinpoints the problem without the caller re-reading the file.
    fn with_snippet(mut self, input: &str) -> JsonError {
        if self.snippet.is_empty() && !input.is_empty() {
            let at = self.offset.min(input.len());
            let mut start = at.saturating_sub(SNIPPET_CONTEXT);
            while !input.is_char_boundary(start) {
                start -= 1;
            }
            let mut end = (at + SNIPPET_CONTEXT).min(input.len());
            while !input.is_char_boundary(end) {
                end += 1;
            }
            self.snippet = input[start..end].to_string();
        }
        self
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {}", self.message, self.offset)?;
        if !self.snippet.is_empty() {
            write!(f, ", near `{}`", self.snippet.escape_debug())?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for JsonError {}

pub(crate) fn shape(message: impl Into<String>) -> JsonError {
    JsonError {
        message: message.into(),
        offset: 0,
        snippet: String::new(),
    }
}

// ---------------------------------------------------------------- values

/// A parsed JSON value (integers only: none of the in-tree formats —
/// traces, metrics, bench results — use floats, and rejecting them keeps
/// every number exactly representable).
///
/// Public so downstream tooling (the bench harness, the metrics tests) can
/// parse and inspect the documents this workspace emits without an external
/// JSON dependency; obtain one with [`parse_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the format admits no floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as a key-value list in document order (keys may repeat;
    /// [`JsonValue::field`] finds the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The integer value, or a shape error.
    pub fn as_int(&self) -> Result<i64, JsonError> {
        match self {
            JsonValue::Int(v) => Ok(*v),
            other => Err(shape(format!("expected integer, found {other:?}"))),
        }
    }

    /// The integer value narrowed to `u32`, or a shape error.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        u32::try_from(self.as_int()?).map_err(|_| shape("integer out of u32 range"))
    }

    /// The boolean value, or a shape error.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(v) => Ok(*v),
            other => Err(shape(format!("expected boolean, found {other:?}"))),
        }
    }

    /// The string value, or a shape error.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(shape(format!("expected string, found {other:?}"))),
        }
    }

    /// The array elements, or a shape error.
    pub fn as_array(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(v) => Ok(v),
            other => Err(shape(format!("expected array, found {other:?}"))),
        }
    }

    /// The object's key-value pairs in document order, or a shape error.
    pub fn as_object(&self) -> Result<&[(String, JsonValue)], JsonError> {
        match self {
            JsonValue::Object(v) => Ok(v),
            other => Err(shape(format!("expected object, found {other:?}"))),
        }
    }

    /// The named object field, or a shape error when `self` is not an
    /// object or has no such field.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a JsonValue, JsonError> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| shape(format!("missing field `{name}`")))
    }

    /// The named object field, or `None` when absent (or when `self` is
    /// not an object).
    pub fn get<'a>(&'a self, name: &str) -> Option<&'a JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
            snippet: String::new(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.err("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(self.err(format!("unexpected byte `{}`", other as char))),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not part of the trace format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<i64>()
            .map(JsonValue::Int)
            .map_err(|e| self.err(format!("bad number: {e}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: only the BMP appears in trace
                            // names in practice, but handle pairs anyway.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| self.err("non-ascii \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(char::from_u32(ch).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid utf8"))?;
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated utf8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf8"))?);
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let parsed = (|| {
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    })();
    parsed.map_err(|e| e.with_snippet(input))
}

/// Parses an arbitrary (integer-only) JSON document into a [`JsonValue`].
///
/// This is the same parser the trace reader uses, exposed so in-tree
/// consumers (the bench harness's schema validator, the metrics tests) can
/// read the workspace's JSON artifacts without an external dependency.
/// Floating-point numbers are rejected by design.
///
/// # Examples
///
/// ```
/// use rvtrace::parse_json;
///
/// let v = parse_json(r#"{"schema_version": 1, "ok": true}"#).unwrap();
/// assert_eq!(v.field("schema_version").unwrap().as_int().unwrap(), 1);
/// assert!(parse_json("{\"pi\": 3.14}").is_err(), "floats are rejected");
/// ```
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    parse(input)
}

/// Parses one framed JSON value that begins at absolute byte offset
/// `abs_base` of a larger input. Error snippets come from the span itself
/// (the incremental parser no longer holds earlier bytes); offsets are
/// rebased so they point into the whole input, matching what the
/// whole-file parser would report.
pub(crate) fn parse_span(span: &str, abs_base: usize) -> Result<JsonValue, JsonError> {
    parse(span).map_err(|mut e| {
        e.offset += abs_base;
        e
    })
}

// ---------------------------------------------------------------- writer

/// Renders `s` as a JSON string literal (quotes included, content
/// escaped). Exposed so in-tree consumers that hand-build JSON documents
/// — the bench harness, the daemon protocol — escape strings exactly the
/// way the trace writer does.
pub fn escape_json(s: &str) -> String {
    let mut out = String::new();
    write_escaped(&mut out, s);
    out
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_kind(out: &mut String, kind: &EventKind) {
    match *kind {
        EventKind::Begin => out.push_str("\"Begin\""),
        EventKind::End => out.push_str("\"End\""),
        EventKind::Branch => out.push_str("\"Branch\""),
        EventKind::Read { var, value } => out.push_str(&format!(
            "{{\"Read\":{{\"var\":{},\"value\":{}}}}}",
            var.0, value.0
        )),
        EventKind::Write { var, value } => out.push_str(&format!(
            "{{\"Write\":{{\"var\":{},\"value\":{}}}}}",
            var.0, value.0
        )),
        EventKind::Acquire { lock } => {
            out.push_str(&format!("{{\"Acquire\":{{\"lock\":{}}}}}", lock.0))
        }
        EventKind::Release { lock } => {
            out.push_str(&format!("{{\"Release\":{{\"lock\":{}}}}}", lock.0))
        }
        EventKind::AcquireRead { lock } => {
            out.push_str(&format!("{{\"AcquireRead\":{{\"lock\":{}}}}}", lock.0))
        }
        EventKind::ReleaseRead { lock } => {
            out.push_str(&format!("{{\"ReleaseRead\":{{\"lock\":{}}}}}", lock.0))
        }
        EventKind::Send { chan } => out.push_str(&format!("{{\"Send\":{{\"chan\":{}}}}}", chan.0)),
        EventKind::Recv { chan } => out.push_str(&format!("{{\"Recv\":{{\"chan\":{}}}}}", chan.0)),
        EventKind::Notify { lock } => {
            out.push_str(&format!("{{\"Notify\":{{\"lock\":{}}}}}", lock.0))
        }
        EventKind::Fork { child } => {
            out.push_str(&format!("{{\"Fork\":{{\"child\":{}}}}}", child.0))
        }
        EventKind::Join { child } => {
            out.push_str(&format!("{{\"Join\":{{\"child\":{}}}}}", child.0))
        }
    }
}

fn write_name_map<K: Copy>(out: &mut String, map: &BTreeMap<K, String>, key: impl Fn(K) -> u32) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", key(*k)));
        write_escaped(out, v);
    }
    out.push('}');
}

/// Writes one event as its wire object: `{"thread":N,"kind":K,"loc":N}`.
/// Shared by the whole-document writer and the NDJSON writer so both
/// formats stay byte-compatible per event.
fn write_event(out: &mut String, e: &Event) {
    out.push_str(&format!("{{\"thread\":{},\"kind\":", e.thread.0));
    write_kind(out, &e.kind);
    out.push_str(&format!(",\"loc\":{}}}", e.loc.0));
}

/// Writes the metadata fields (`initial_values` … `var_names`) as a
/// comma-separated run of `"key":value` pairs, no surrounding braces.
/// `msg_links` is emitted only when non-empty — it is an *optional* field
/// (absent from [`METADATA_KEYS`]) so documents from earlier builds, which
/// never carry it, keep loading and old readers never see it.
fn write_metadata_fields(out: &mut String, data: &TraceData) {
    out.push_str("\"initial_values\":{");
    for (i, (var, value)) in data.initial_values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", var.0, value.0));
    }
    out.push_str("},\"volatiles\":[");
    for (i, v) in data.volatiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}", v.0));
    }
    out.push_str("],\"wait_links\":[");
    for (i, wl) in data.wait_links.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"release\":{},\"acquire\":{},\"notify\":",
            wl.release.0, wl.acquire.0
        ));
        match wl.notify {
            Some(n) => out.push_str(&format!("{}", n.0)),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push(']');
    if !data.msg_links.is_empty() {
        out.push_str(",\"msg_links\":[");
        for (i, ml) in data.msg_links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"send\":{},\"recv\":{}}}",
                ml.send.0, ml.recv.0
            ));
        }
        out.push(']');
    }
    out.push_str(",\"loc_names\":");
    write_name_map(out, &data.loc_names, |l: Loc| l.0);
    out.push_str(",\"var_names\":");
    write_name_map(out, &data.var_names, |v: VarId| v.0);
}

/// Serializes a trace to its JSON wire format.
pub fn to_json(trace: &Trace) -> String {
    let data = trace.data();
    let mut out = String::with_capacity(data.events.len() * 48 + 256);
    out.push_str("{\"events\":[");
    for (i, e) in data.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, e);
    }
    out.push_str("],");
    write_metadata_fields(&mut out, data);
    out.push('}');
    out
}

/// Serializes a trace to the NDJSON wire format: a header line carrying
/// the metadata (initial values, volatiles, wait links, names), then one
/// event object per line. The header's wait links may reference events on
/// later lines; a streaming reader applies them after the full read.
///
/// Designed for streaming ingestion ([`crate::StreamParser`]): a reader
/// knows all metadata after line one, so window construction can start
/// while events are still arriving — unlike the whole-document format,
/// whose metadata trails the event array.
pub fn to_ndjson(trace: &Trace) -> String {
    let data = trace.data();
    let mut out = String::with_capacity(data.events.len() * 48 + 256);
    out.push('{');
    write_metadata_fields(&mut out, data);
    out.push_str("}\n");
    for e in &data.events {
        write_event(&mut out, e);
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------- reader

fn read_kind(v: &JsonValue) -> Result<EventKind, JsonError> {
    match v {
        JsonValue::Str(tag) => match tag.as_str() {
            "Begin" => Ok(EventKind::Begin),
            "End" => Ok(EventKind::End),
            "Branch" => Ok(EventKind::Branch),
            other => Err(shape(format!("unknown event kind `{other}`"))),
        },
        JsonValue::Object(fields) if fields.len() == 1 => {
            let (tag, body) = &fields[0];
            match tag.as_str() {
                "Read" => Ok(EventKind::Read {
                    var: VarId(body.field("var")?.as_u32()?),
                    value: Value(body.field("value")?.as_int()?),
                }),
                "Write" => Ok(EventKind::Write {
                    var: VarId(body.field("var")?.as_u32()?),
                    value: Value(body.field("value")?.as_int()?),
                }),
                "Acquire" => Ok(EventKind::Acquire {
                    lock: LockId(body.field("lock")?.as_u32()?),
                }),
                "Release" => Ok(EventKind::Release {
                    lock: LockId(body.field("lock")?.as_u32()?),
                }),
                "AcquireRead" => Ok(EventKind::AcquireRead {
                    lock: LockId(body.field("lock")?.as_u32()?),
                }),
                "ReleaseRead" => Ok(EventKind::ReleaseRead {
                    lock: LockId(body.field("lock")?.as_u32()?),
                }),
                "Send" => Ok(EventKind::Send {
                    chan: ChanId(body.field("chan")?.as_u32()?),
                }),
                "Recv" => Ok(EventKind::Recv {
                    chan: ChanId(body.field("chan")?.as_u32()?),
                }),
                "Notify" => Ok(EventKind::Notify {
                    lock: LockId(body.field("lock")?.as_u32()?),
                }),
                "Fork" => Ok(EventKind::Fork {
                    child: ThreadId(body.field("child")?.as_u32()?),
                }),
                "Join" => Ok(EventKind::Join {
                    child: ThreadId(body.field("child")?.as_u32()?),
                }),
                other => Err(shape(format!("unknown event kind `{other}`"))),
            }
        }
        other => Err(shape(format!("bad event kind: {other:?}"))),
    }
}

fn read_key_u32(key: &str) -> Result<u32, JsonError> {
    key.parse::<u32>()
        .map_err(|_| shape(format!("map key `{key}` is not an id")))
}

/// Decodes one event object (`{"thread":N,"kind":K,"loc":N}`). Shared by
/// the whole-document reader and the incremental [`crate::StreamParser`],
/// so both accept exactly the same event shapes.
pub(crate) fn read_event(v: &JsonValue) -> Result<Event, JsonError> {
    Ok(Event {
        thread: ThreadId(v.field("thread")?.as_u32()?),
        kind: read_kind(v.field("kind")?)?,
        loc: Loc(v.field("loc")?.as_u32()?),
    })
}

/// The trace's metadata keys, in the order the whole-document reader
/// requires them (and reports the first missing one).
pub(crate) const METADATA_KEYS: [&str; 5] = [
    "initial_values",
    "volatiles",
    "wait_links",
    "loc_names",
    "var_names",
];

/// Applies one named metadata field to `data`. Returns `Ok(false)` for an
/// unrecognized key (the whole-document reader ignores unknown fields;
/// the streaming reader does the same via this return). Shared by both
/// readers so a field decodes identically whatever the ingestion path.
pub(crate) fn apply_metadata_field(
    data: &mut TraceData,
    key: &str,
    v: &JsonValue,
) -> Result<bool, JsonError> {
    match key {
        "initial_values" => {
            for (k, v) in v.as_object()? {
                data.initial_values
                    .insert(VarId(read_key_u32(k)?), Value(v.as_int()?));
            }
        }
        "volatiles" => {
            for v in v.as_array()? {
                data.volatiles.push(VarId(v.as_u32()?));
            }
        }
        "wait_links" => {
            for wl in v.as_array()? {
                data.wait_links.push(WaitLink {
                    release: EventId(wl.field("release")?.as_u32()?),
                    acquire: EventId(wl.field("acquire")?.as_u32()?),
                    notify: match wl.field("notify")? {
                        JsonValue::Null => None,
                        v => Some(EventId(v.as_u32()?)),
                    },
                });
            }
        }
        "msg_links" => {
            for ml in v.as_array()? {
                data.msg_links.push(MsgLink {
                    send: EventId(ml.field("send")?.as_u32()?),
                    recv: EventId(ml.field("recv")?.as_u32()?),
                });
            }
        }
        "loc_names" => {
            for (k, v) in v.as_object()? {
                data.loc_names
                    .insert(Loc(read_key_u32(k)?), v.as_str()?.to_string());
            }
        }
        "var_names" => {
            for (k, v) in v.as_object()? {
                data.var_names
                    .insert(VarId(read_key_u32(k)?), v.as_str()?.to_string());
            }
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Checks every wait link references an existing event. Split out of
/// [`from_json`] so the streaming strict path ([`crate::read_trace`], the
/// CLI's `--stream`) can run the same validation after an incremental
/// parse; an out-of-range id from an untrusted document would otherwise
/// become a panic deep inside detection.
pub fn validate_wait_links(data: &TraceData) -> Result<(), JsonError> {
    let n_events = data.events.len();
    let check = |what: &str, id: EventId| {
        if id.index() < n_events {
            Ok(())
        } else {
            Err(shape(format!(
                "wait link {what} {} out of range (trace has {n_events} events)",
                id.0
            )))
        }
    };
    for wl in &data.wait_links {
        check("release", wl.release)?;
        check("acquire", wl.acquire)?;
        if let Some(n) = wl.notify {
            check("notify", n)?;
        }
    }
    for ml in &data.msg_links {
        let check = |what: &str, id: EventId| {
            if id.index() < n_events {
                Ok(())
            } else {
                Err(shape(format!(
                    "msg link {what} {} out of range (trace has {n_events} events)",
                    id.0
                )))
            }
        };
        check("send", ml.send)?;
        check("recv", ml.recv)?;
        if ml.send >= ml.recv {
            return Err(shape(format!(
                "msg link send {} does not precede recv {}",
                ml.send.0, ml.recv.0
            )));
        }
    }
    Ok(())
}

/// What trace ingestion cost: input size, events decoded, and the time
/// spent parsing — the trace layer's contribution to the `--metrics`
/// report (`trace.ingest.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Input size in bytes.
    pub bytes: usize,
    /// Events decoded.
    pub events: usize,
    /// Wall-clock parse + decode time.
    pub parse_time: std::time::Duration,
}

/// [`from_json`] plus an [`IngestStats`] measurement of the parse.
pub fn from_json_with_stats(input: &str) -> Result<(Trace, IngestStats), JsonError> {
    let start = std::time::Instant::now();
    let trace = from_json(input)?;
    let stats = IngestStats {
        bytes: input.len(),
        events: trace.len(),
        parse_time: start.elapsed(),
    };
    Ok((trace, stats))
}

/// [`from_json_data`] plus an [`IngestStats`] measurement of the parse
/// (for the lenient path; `events` counts decoded events before salvage
/// drops any).
pub fn from_json_data_with_stats(input: &str) -> Result<(TraceData, IngestStats), JsonError> {
    let start = std::time::Instant::now();
    let data = from_json_data(input)?;
    let stats = IngestStats {
        bytes: input.len(),
        events: data.events.len(),
        parse_time: start.elapsed(),
    };
    Ok((data, stats))
}

/// Deserializes a trace from its JSON wire format.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON, on a structurally valid
/// document that does not describe a trace, or on a wait link referencing
/// a nonexistent event.
pub fn from_json(input: &str) -> Result<Trace, JsonError> {
    let data = from_json_data(input)?;
    validate_wait_links(&data)?;
    Ok(Trace::from_data(data))
}

/// Deserializes raw [`TraceData`] without cross-field validation, for
/// lenient ingestion: pair with
/// [`salvage_trace`](crate::salvage::salvage_trace), which drops (and
/// counts) inconsistent events and dangling wait links instead of failing.
pub fn from_json_data(input: &str) -> Result<TraceData, JsonError> {
    let root = parse(input)?;
    let mut data = TraceData::default();
    for ev in root.field("events")?.as_array()? {
        data.events.push(read_event(ev)?);
    }
    for key in METADATA_KEYS {
        apply_metadata_field(&mut data, key, root.field(key)?)?;
    }
    // Optional fields: absent in documents from earlier builds.
    if let Some(v) = root.get("msg_links") {
        apply_metadata_field(&mut data, "msg_links", v)?;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("why \"quoted\"\n");
        b.initial(x, 7);
        let l = b.new_lock("l");
        let t2 = b.fork(ThreadId::MAIN);
        b.acquire(ThreadId::MAIN, l);
        b.write(ThreadId::MAIN, x, 1);
        b.release(ThreadId::MAIN, l);
        b.acquire(t2, l);
        let tok = b.wait_begin(t2, l);
        let n = b.notify(ThreadId::MAIN, l);
        b.wait_end(tok, Some(n));
        b.read(t2, y, 0);
        b.branch(t2);
        b.join(ThreadId::MAIN, t2);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let s = to_json(&t);
        let back = from_json(&s).unwrap();
        assert_eq!(back.events(), t.events());
        assert_eq!(back.stats(), t.stats());
        assert_eq!(back.wait_links(), t.wait_links());
        assert_eq!(back.data().loc_names, t.data().loc_names);
        assert_eq!(back.data().var_names, t.data().var_names);
        assert_eq!(back.data().initial_values, t.data().initial_values);
        assert_eq!(back.data().volatiles, t.data().volatiles);
    }

    #[test]
    fn accepts_whitespace_and_reordered_fields() {
        let s = r#" {
            "volatiles" : [ 1 ],
            "initial_values" : { "0" : -3 },
            "events" : [
                { "loc" : 0, "thread" : 0, "kind" : { "Write" : { "var" : 0, "value" : 5 } } }
            ],
            "wait_links" : [ ],
            "loc_names" : { },
            "var_names" : { "0" : "xA" }
        } "#;
        let t = from_json(s).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.initial_value(VarId(0)), Value(-3));
        assert!(t.is_volatile(VarId(1)));
        assert_eq!(t.var_name(VarId(0)), Some("xA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"events\":[").is_err());
        assert!(from_json("{}").is_err());
        assert!(from_json("{\"events\":[{\"thread\":0,\"kind\":\"Nope\",\"loc\":0}]}").is_err());
        assert!(from_json("[1,2,3] trailing").is_err());
        let err = from_json("{\"events\": 1.5}").unwrap_err();
        assert!(err.to_string().contains("floating-point"));
    }

    #[test]
    fn syntax_errors_carry_offset_and_snippet() {
        let input = "{\"events\":[{\"thread\":0,\"kind\":\"Oops";
        let err = from_json(input).unwrap_err();
        assert!(err.offset > 0);
        assert!(!err.snippet.is_empty());
        let s = err.to_string();
        assert!(s.contains("at byte"), "{s}");
        assert!(s.contains("near `"), "{s}");
    }

    #[test]
    fn out_of_range_wait_links_rejected() {
        let input = r#"{"events":[{"thread":0,"kind":"Branch","loc":0}],
            "initial_values":{},"volatiles":[],
            "wait_links":[{"release":0,"acquire":99,"notify":null}],
            "loc_names":{},"var_names":{}}"#;
        let err = from_json(input).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // The lenient path parses the same document; salvage then drops
        // the dangling link instead of failing.
        let data = from_json_data(input).unwrap();
        let (trace, report) = crate::salvage::salvage_trace(data);
        assert_eq!(trace.len(), 1);
        assert_eq!(report.dangling_wait_links, 1);
    }

    #[test]
    fn extended_kinds_and_msg_links_roundtrip() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("rw");
        let c = b.new_chan("ch");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire_read(t1, l);
        let s = b.send(t1, c);
        b.release_read(t1, l);
        let r = b.recv(t2, c, Some(s));
        let t = b.finish();
        let json = to_json(&t);
        assert!(json.contains("\"AcquireRead\""), "{json}");
        assert!(json.contains("\"msg_links\""), "{json}");
        let back = from_json(&json).unwrap();
        assert_eq!(back.events(), t.events());
        assert_eq!(back.msg_links(), t.msg_links());
        assert_eq!(back.msg_link_of_recv(r).unwrap().send, s);
    }

    #[test]
    fn documents_without_msg_links_still_load() {
        // A document in the pre-msg_links shape (exactly the old five
        // metadata keys) must parse, and its writer output must not grow
        // a msg_links field.
        let s = r#"{"events":[{"thread":0,"kind":"Branch","loc":0}],
            "initial_values":{},"volatiles":[],"wait_links":[],
            "loc_names":{},"var_names":{}}"#;
        let t = from_json(s).unwrap();
        assert!(t.msg_links().is_empty());
        assert!(!to_json(&t).contains("msg_links"));
    }

    #[test]
    fn bad_msg_links_rejected() {
        let base = |links: &str| {
            format!(
                r#"{{"events":[{{"thread":0,"kind":{{"Send":{{"chan":0}}}},"loc":0}},
                    {{"thread":0,"kind":{{"Recv":{{"chan":0}}}},"loc":1}}],
                "initial_values":{{}},"volatiles":[],"wait_links":[],
                "msg_links":{links},"loc_names":{{}},"var_names":{{}}}}"#
            )
        };
        let err = from_json(&base(r#"[{"send":0,"recv":99}]"#)).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let err = from_json(&base(r#"[{"send":1,"recv":0}]"#)).unwrap_err();
        assert!(err.to_string().contains("does not precede"), "{err}");
        assert!(from_json(&base(r#"[{"send":0,"recv":1}]"#)).is_ok());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let mut b = TraceBuilder::new();
        let v = b.var("变量⟨α⟩");
        b.write(ThreadId::MAIN, v, 1);
        let t = b.finish();
        let back = from_json(&to_json(&t)).unwrap();
        assert_eq!(back.var_name(VarId(0)), Some("变量⟨α⟩"));
    }
}
