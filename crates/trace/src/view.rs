//! Windowed views over a trace.
//!
//! Race analysis — both the paper's maximal technique and all the baselines —
//! runs on fixed-size windows of the trace (paper §4, "Handling long
//! traces"). A [`View`] is a contiguous range of a [`Trace`] together with
//! the eagerly computed per-window indexes every detector needs:
//!
//! * variable values at window start (window-local "initial values"),
//! * locks held at window start (for boundary-crossing critical sections),
//! * must-happen-before vector clocks,
//! * per-event locksets,
//! * read/write/branch indexes and critical-section spans.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;

use crate::event::{Cop, Event, EventId, EventKind, LockId, ThreadId, Value, VarId};
use crate::trace::Trace;
use crate::vector_clock::VectorClock;

/// A maximal same-lock region `[acquire, release]` within a view.
///
/// `acquire` is `None` when the lock was already held at window start;
/// `release` is `None` when the lock is still held at window end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsSpan {
    /// The thread holding the lock.
    pub thread: ThreadId,
    /// The lock.
    pub lock: LockId,
    /// The acquire event, if inside the view.
    pub acquire: Option<EventId>,
    /// The release event, if inside the view.
    pub release: Option<EventId>,
}

/// Running state carried across window boundaries: variable values and
/// held locks at a window's start.
///
/// Public so streaming drivers can materialize window [`View`]s one at a
/// time — advance the boundary over each window's events as they arrive
/// (no trace-length state beyond this struct), and build the next window's
/// view from it. [`WindowStream`] packages the common case; the streaming
/// detector threads a boundary through trace *prefixes* as the parser
/// produces them.
#[derive(Debug, Clone)]
pub struct WindowBoundary {
    values: Vec<Value>,
    held: Vec<(ThreadId, LockId)>,
    /// Read-mode (shared) holds open at the boundary. Kept separate from
    /// `held` so every existing write-mode consumer (mutual exclusion,
    /// critical-section spans, locksets) is untouched by the RwLock
    /// vocabulary.
    held_read: Vec<(ThreadId, LockId)>,
}

impl WindowBoundary {
    /// Boundary state at the start of a trace (its initial values, no
    /// locks held).
    pub fn initial(trace: &Trace) -> Self {
        let values = (0..trace.n_vars() as u32)
            .map(|v| trace.initial_value(VarId(v)))
            .collect();
        WindowBoundary {
            values,
            held: Vec::new(),
            held_read: Vec::new(),
        }
    }

    /// Boundary state at the start of a trace known only by its metadata —
    /// for streaming ingestion, where the full event count (and thus
    /// `n_vars`) is unknown while windows are already being built. Values
    /// beyond the map's largest key are grown on demand by
    /// [`advance`](WindowBoundary::advance) with `Value::default()`,
    /// matching [`Trace::initial_value`]'s fallback for unmapped
    /// variables.
    pub fn from_initial_values(initial_values: &BTreeMap<VarId, Value>) -> Self {
        let n = initial_values
            .keys()
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        let mut values = vec![Value::default(); n];
        for (&var, &value) in initial_values {
            values[var.index()] = value;
        }
        WindowBoundary {
            values,
            held: Vec::new(),
            held_read: Vec::new(),
        }
    }

    /// Advances the boundary over `events[range]` — the window that was
    /// just closed. Takes a raw event slice (not a [`Trace`]) so streaming
    /// callers can advance over a partially read trace.
    pub fn advance(&mut self, events: &[Event], range: Range<usize>) {
        for e in &events[range] {
            match e.kind {
                EventKind::Write { var, value } => {
                    if var.index() >= self.values.len() {
                        self.values.resize(var.index() + 1, Value::default());
                    }
                    self.values[var.index()] = value;
                }
                EventKind::Acquire { lock } => self.held.push((e.thread, lock)),
                EventKind::Release { lock } => {
                    if let Some(p) = self
                        .held
                        .iter()
                        .position(|&(t, l)| t == e.thread && l == lock)
                    {
                        self.held.swap_remove(p);
                    }
                }
                EventKind::AcquireRead { lock } => self.held_read.push((e.thread, lock)),
                EventKind::ReleaseRead { lock } => {
                    if let Some(p) = self
                        .held_read
                        .iter()
                        .position(|&(t, l)| t == e.thread && l == lock)
                    {
                        self.held_read.swap_remove(p);
                    }
                }
                _ => {}
            }
        }
    }

    /// Builds the view of `trace[range]` with this boundary as the
    /// window-start state. The boundary must have been advanced over
    /// exactly `trace[..range.start]`.
    pub fn view<'a>(&self, trace: &'a Trace, range: Range<usize>) -> View<'a> {
        View::build(trace, range.start, range.end, self)
    }
}

/// A contiguous window of a trace with all per-window detector indexes.
///
/// Obtain views with [`Trace::full_view`](ViewExt::full_view) or
/// [`Trace::windows`](ViewExt::windows).
///
/// # Examples
///
/// ```
/// use rvtrace::{ThreadId, TraceBuilder, ViewExt};
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// let w = b.write(ThreadId::MAIN, x, 1);
/// let t2 = b.fork(ThreadId::MAIN);
/// let r = b.read(t2, x, 1);
/// let trace = b.finish();
/// let view = trace.full_view();
/// assert!(view.mhb(w, r)); // write → fork → begin → read
/// ```
#[derive(Debug)]
pub struct View<'a> {
    trace: &'a Trace,
    start: usize,
    end: usize,
    initial: Vec<Value>,
    held_at_start: Vec<(ThreadId, LockId)>,
    held_read_at_start: Vec<(ThreadId, LockId)>,
    thread_events: Vec<Vec<EventId>>,
    vpos: Vec<u32>,
    reads_by_var: Vec<Vec<EventId>>,
    writes_by_var: Vec<Vec<EventId>>,
    reads_by_thread: Vec<Vec<EventId>>,
    branches_by_thread: Vec<Vec<EventId>>,
    cs_by_lock: Vec<Vec<CsSpan>>,
    /// Read-mode spans, indexed separately so [`View::critical_sections`]
    /// stays write-only (mutual exclusion applies between a write span and
    /// anything, never between two read spans).
    read_cs_by_lock: Vec<Vec<CsSpan>>,
    lockset_ids: Vec<u32>,
    lockset_pool: Vec<Vec<LockId>>,
    clocks: Vec<VectorClock>,
    /// Whether the window contains extended-vocabulary synchronization
    /// (RwLock read mode, channel send/recv).
    has_extended: bool,
}

impl<'a> View<'a> {
    fn build(trace: &'a Trace, start: usize, end: usize, carry: &WindowBoundary) -> Self {
        let n_threads = trace.n_threads();
        let n_vars = trace.n_vars();
        let n_locks = trace.n_locks();
        let len = end - start;

        let mut thread_events = vec![Vec::new(); n_threads];
        let mut vpos = vec![0u32; len];
        let mut reads_by_var = vec![Vec::new(); n_vars];
        let mut writes_by_var = vec![Vec::new(); n_vars];
        let mut reads_by_thread = vec![Vec::new(); n_threads];
        let mut branches_by_thread = vec![Vec::new(); n_threads];
        let mut cs_by_lock: Vec<Vec<CsSpan>> = vec![Vec::new(); n_locks];
        let mut open_by_lock: Vec<Option<(ThreadId, Option<EventId>)>> = vec![None; n_locks];
        for &(t, l) in &carry.held {
            open_by_lock[l.index()] = Some((t, None));
        }
        let mut read_cs_by_lock: Vec<Vec<CsSpan>> = vec![Vec::new(); n_locks];
        // Several read-mode holds can be open on one lock at once.
        let mut open_read_by_lock: Vec<Vec<(ThreadId, Option<EventId>)>> =
            vec![Vec::new(); n_locks];
        for &(t, l) in &carry.held_read {
            open_read_by_lock[l.index()].push((t, None));
        }
        let mut has_extended = false;
        let mut lockset_ids = vec![0u32; len];
        let mut lockset_pool: Vec<Vec<LockId>> = vec![Vec::new()];
        let mut lockset_lookup: HashMap<Vec<LockId>, u32> = HashMap::new();
        lockset_lookup.insert(Vec::new(), 0);
        let mut cur_lockset: Vec<Vec<LockId>> = vec![Vec::new(); n_threads];
        for &(t, l) in &carry.held {
            if let Some(ti) = trace.thread_index(t) {
                cur_lockset[ti].push(l);
                cur_lockset[ti].sort_unstable();
            }
        }
        let mut clocks: Vec<VectorClock> = Vec::with_capacity(len);
        let mut cur_clock: Vec<VectorClock> = vec![VectorClock::new(n_threads); n_threads];
        let mut fork_clock: Vec<Option<VectorClock>> = vec![None; n_threads];
        let mut end_clock: Vec<Option<VectorClock>> = vec![None; n_threads];

        for i in start..end {
            let id = EventId(i as u32);
            let e = &trace.events()[i];
            let ti = trace.thread_index(e.thread).expect("event thread indexed");
            let o = i - start;

            // Vector clock: join incoming MHB edges before counting the event.
            match e.kind {
                EventKind::Begin => {
                    if let Some(fc) = &fork_clock[ti] {
                        let fc = fc.clone();
                        cur_clock[ti].join(&fc);
                    }
                }
                EventKind::Join { child } => {
                    if let Some(ci) = trace.thread_index(child) {
                        if let Some(ec) = &end_clock[ci] {
                            let ec = ec.clone();
                            cur_clock[ti].join(&ec);
                        }
                    }
                }
                EventKind::Recv { .. } => {
                    // A linked recv must-happen-after its send (the encoder
                    // asserts the same edge, so treating it as MHB is sound).
                    if let Some(ml) = trace.msg_link_of_recv(id) {
                        if ml.send.index() >= start && ml.send.index() < i {
                            let sc = clocks[ml.send.index() - start].clone();
                            cur_clock[ti].join(&sc);
                        }
                    }
                }
                _ => {}
            }
            cur_clock[ti].tick(ti);
            clocks.push(cur_clock[ti].clone());
            match e.kind {
                EventKind::Fork { child } => {
                    if let Some(ci) = trace.thread_index(child) {
                        fork_clock[ci] = Some(cur_clock[ti].clone());
                    }
                }
                EventKind::End => {
                    end_clock[ti] = Some(cur_clock[ti].clone());
                }
                _ => {}
            }

            // Locksets: an acquire's lockset includes the acquired lock; a
            // release's still includes the released one.
            if let EventKind::Acquire { lock } = e.kind {
                cur_lockset[ti].push(lock);
                cur_lockset[ti].sort_unstable();
                cur_lockset[ti].dedup();
            }
            let ls_id = *lockset_lookup
                .entry(cur_lockset[ti].clone())
                .or_insert_with(|| {
                    lockset_pool.push(cur_lockset[ti].clone());
                    (lockset_pool.len() - 1) as u32
                });
            lockset_ids[o] = ls_id;
            if let EventKind::Release { lock } = e.kind {
                cur_lockset[ti].retain(|&l| l != lock);
            }

            // Per-class indexes.
            vpos[o] = thread_events[ti].len() as u32;
            thread_events[ti].push(id);
            match e.kind {
                EventKind::Read { var, .. } => {
                    reads_by_var[var.index()].push(id);
                    reads_by_thread[ti].push(id);
                }
                EventKind::Write { var, .. } => writes_by_var[var.index()].push(id),
                EventKind::Branch => branches_by_thread[ti].push(id),
                EventKind::Acquire { lock } => {
                    open_by_lock[lock.index()] = Some((e.thread, Some(id)));
                }
                EventKind::Release { lock } => {
                    let (t, acquire) = open_by_lock[lock.index()]
                        .take()
                        .unwrap_or((e.thread, None));
                    cs_by_lock[lock.index()].push(CsSpan {
                        thread: t,
                        lock,
                        acquire,
                        release: Some(id),
                    });
                }
                EventKind::AcquireRead { lock } => {
                    has_extended = true;
                    open_read_by_lock[lock.index()].push((e.thread, Some(id)));
                }
                EventKind::ReleaseRead { lock } => {
                    has_extended = true;
                    let open = &mut open_read_by_lock[lock.index()];
                    let (t, acquire) = match open.iter().position(|&(t, _)| t == e.thread) {
                        Some(p) => open.remove(p),
                        None => (e.thread, None),
                    };
                    read_cs_by_lock[lock.index()].push(CsSpan {
                        thread: t,
                        lock,
                        acquire,
                        release: Some(id),
                    });
                }
                EventKind::Send { .. } | EventKind::Recv { .. } => {
                    has_extended = true;
                }
                _ => {}
            }
        }
        for (li, open) in open_by_lock.into_iter().enumerate() {
            if let Some((t, acquire)) = open {
                cs_by_lock[li].push(CsSpan {
                    thread: t,
                    lock: LockId(li as u32),
                    acquire,
                    release: None,
                });
            }
        }
        for (li, open) in open_read_by_lock.into_iter().enumerate() {
            for (t, acquire) in open {
                read_cs_by_lock[li].push(CsSpan {
                    thread: t,
                    lock: LockId(li as u32),
                    acquire,
                    release: None,
                });
            }
        }

        View {
            trace,
            start,
            end,
            initial: carry.values.clone(),
            held_at_start: carry.held.clone(),
            held_read_at_start: carry.held_read.clone(),
            thread_events,
            vpos,
            reads_by_var,
            writes_by_var,
            reads_by_thread,
            branches_by_thread,
            cs_by_lock,
            read_cs_by_lock,
            lockset_ids,
            lockset_pool,
            clocks,
            has_extended,
        }
    }

    /// The underlying trace.
    #[inline]
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// The trace range covered by this view.
    #[inline]
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of events in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view covers no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterator over the event ids in the view, in trace order.
    pub fn ids(&self) -> impl Iterator<Item = EventId> {
        (self.start as u32..self.end as u32).map(EventId)
    }

    /// Whether an event is inside the view.
    #[inline]
    pub fn contains(&self, e: EventId) -> bool {
        (self.start..self.end).contains(&e.index())
    }

    /// The event with the given id (from the underlying trace).
    #[inline]
    pub fn event(&self, e: EventId) -> &Event {
        self.trace.event(e)
    }

    fn offset(&self, e: EventId) -> usize {
        debug_assert!(self.contains(e), "{e} outside view {:?}", self.range());
        e.index() - self.start
    }

    /// The value of `var` at window start: the window-local initial value.
    #[inline]
    pub fn initial_value(&self, var: VarId) -> Value {
        self.initial.get(var.index()).copied().unwrap_or_default()
    }

    /// Locks held (and by whom) when the window starts.
    #[inline]
    pub fn held_at_start(&self) -> &[(ThreadId, LockId)] {
        &self.held_at_start
    }

    /// Read-mode (shared) holds open when the window starts.
    #[inline]
    pub fn held_read_at_start(&self) -> &[(ThreadId, LockId)] {
        &self.held_read_at_start
    }

    /// Whether the window contains extended-vocabulary synchronization
    /// (RwLock read mode, channel send/recv). Consumers whose analyses
    /// predate the extended vocabulary (relevance slicing) use this to
    /// conservatively opt out on such windows.
    #[inline]
    pub fn has_extended_sync(&self) -> bool {
        self.has_extended
    }

    /// Events of one thread inside the view, in program order.
    pub fn thread_events(&self, t: ThreadId) -> &[EventId] {
        match self.trace.thread_index(t) {
            Some(i) => &self.thread_events[i],
            None => &[],
        }
    }

    /// Position of `e` within its thread's events *inside the view*.
    #[inline]
    pub fn vpos(&self, e: EventId) -> usize {
        self.vpos[self.offset(e)] as usize
    }

    /// The MHB vector clock of `e`: entry `i` counts events of thread `i`
    /// inside the view that must-happen-before-or-equal `e`.
    #[inline]
    pub fn clock(&self, e: EventId) -> &VectorClock {
        &self.clocks[self.offset(e)]
    }

    /// Strict must-happen-before: `a ⪯ b` and `a ≠ b` (paper §2.2's
    /// consistency requirement, i.e. program order + fork→begin + end→join,
    /// transitively).
    pub fn mhb(&self, a: EventId, b: EventId) -> bool {
        if a == b {
            return false;
        }
        let ta = self
            .trace
            .thread_index(self.event(a).thread)
            .expect("thread indexed");
        self.clock(b).get(ta) as usize > self.vpos(a)
    }

    /// Read events on `var` inside the view, in trace order.
    pub fn reads_of(&self, var: VarId) -> &[EventId] {
        self.reads_by_var
            .get(var.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Write events on `var` inside the view, in trace order.
    pub fn writes_of(&self, var: VarId) -> &[EventId] {
        self.writes_by_var
            .get(var.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Read events of thread `t` inside the view, in program order.
    pub fn thread_reads(&self, t: ThreadId) -> &[EventId] {
        match self.trace.thread_index(t) {
            Some(i) => &self.reads_by_thread[i],
            None => &[],
        }
    }

    /// Read events of `e`'s thread strictly before `e` (the paper's
    /// `τ_e ↾ t,read` restricted to the view).
    pub fn thread_reads_before(&self, e: EventId) -> &[EventId] {
        let reads = self.thread_reads(self.event(e).thread);
        let n = reads.partition_point(|&r| r < e);
        &reads[..n]
    }

    /// Branch events of thread `t` inside the view, in program order.
    pub fn thread_branches(&self, t: ThreadId) -> &[EventId] {
        match self.trace.thread_index(t) {
            Some(i) => &self.branches_by_thread[i],
            None => &[],
        }
    }

    /// The paper's `B_e`: for each thread, the *last* branch event that
    /// must-happen-before `e` (strictly). At most one entry per thread.
    pub fn last_branches_before(&self, e: EventId) -> Vec<EventId> {
        let clock = self.clock(e);
        let mut out = Vec::new();
        for (ti, branches) in self.branches_by_thread.iter().enumerate() {
            if branches.is_empty() {
                continue;
            }
            // Events of thread ti that strictly precede e have
            // vpos < clock[ti], except e itself (never a candidate here
            // because e is compared by id below).
            let limit = clock.get(ti) as usize;
            let n = branches.partition_point(|&b| self.vpos(b) < limit);
            if n > 0 {
                let b = branches[n - 1];
                if b != e {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Critical-section spans for `lock`, in trace order of their releases
    /// (boundary-open spans last).
    pub fn critical_sections(&self, lock: LockId) -> &[CsSpan] {
        self.cs_by_lock
            .get(lock.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All critical-section spans in the view.
    pub fn all_critical_sections(&self) -> impl Iterator<Item = &CsSpan> {
        self.cs_by_lock.iter().flatten()
    }

    /// Read-mode critical-section spans for `lock`, in trace order of
    /// their releases (boundary-open spans last). Disjoint from
    /// [`View::critical_sections`]: a read span excludes only write spans
    /// of the same lock, never other read spans.
    pub fn read_critical_sections(&self, lock: LockId) -> &[CsSpan] {
        self.read_cs_by_lock
            .get(lock.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The set of locks held by `e`'s thread at the moment of `e`
    /// (sorted; includes a lock being acquired/released by `e` itself).
    pub fn lockset(&self, e: EventId) -> &[LockId] {
        &self.lockset_pool[self.lockset_ids[self.offset(e)] as usize]
    }

    /// Threads of the underlying trace (clock dimension).
    pub fn threads(&self) -> &[ThreadId] {
        self.trace.threads()
    }

    /// Splits the view into two contiguous half-size views, each with its
    /// own correctly carried boundary state (values and held locks at the
    /// midpoint). Used by the detector's timeout-retry policy: a COP that
    /// exhausted its budget in a large window may be decidable in a smaller
    /// one. Returns `None` when the view has fewer than two events.
    pub fn split(&self) -> Option<(View<'a>, View<'a>)> {
        if self.len() < 2 {
            return None;
        }
        let mid = self.start + self.len() / 2;
        let mut carry = WindowBoundary {
            values: self.initial.clone(),
            held: self.held_at_start.clone(),
            held_read: self.held_read_at_start.clone(),
        };
        let first = View::build(self.trace, self.start, mid, &carry);
        carry.advance(self.trace.events(), self.start..mid);
        let second = View::build(self.trace, mid, self.end, &carry);
        Some((first, second))
    }
}

/// Lazy iterator of fixed-size window [`View`]s over a trace.
///
/// Each call to [`next`](Iterator::next) materializes exactly one window
/// and advances the carried [`WindowBoundary`], so at most one view's
/// indexes exist per un-consumed item — the pipelined detector holds a
/// bounded number of in-flight views instead of the eager whole-trace
/// `Vec<View>` that [`ViewExt::windows`] builds. The views produced are
/// identical to the corresponding `windows(size)` elements.
#[derive(Debug)]
pub struct WindowStream<'a> {
    trace: &'a Trace,
    size: usize,
    start: usize,
    boundary: WindowBoundary,
}

impl<'a> WindowStream<'a> {
    /// A stream of `size`-event windows over `trace` (the last may be
    /// shorter).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(trace: &'a Trace, size: usize) -> Self {
        assert!(size > 0, "window size must be nonzero");
        WindowStream {
            trace,
            size,
            start: 0,
            boundary: WindowBoundary::initial(trace),
        }
    }

    /// The trace range the next window will cover, or `None` when the
    /// stream is exhausted.
    pub fn next_range(&self) -> Option<Range<usize>> {
        (self.start < self.trace.len())
            .then(|| self.start..(self.start + self.size).min(self.trace.len()))
    }

    /// The boundary state at the start of the next window.
    pub fn boundary(&self) -> &WindowBoundary {
        &self.boundary
    }
}

impl<'a> Iterator for WindowStream<'a> {
    type Item = View<'a>;

    fn next(&mut self) -> Option<View<'a>> {
        let range = self.next_range()?;
        let view = self.boundary.view(self.trace, range.clone());
        self.boundary.advance(self.trace.events(), range.clone());
        self.start = range.end;
        Some(view)
    }
}

/// Last-access tables carried across window boundaries: for every
/// `(variable, thread)` pair, the index of the thread's most recent read
/// and write of the variable *before* the current boundary.
///
/// These are the per-thread summaries of dependence-bounded windowing
/// (`--window-mode cone`): a conflicting-operation pair can only straddle
/// a boundary through the *last* pre-boundary access of each side — any
/// earlier access of the same `(variable, thread, kind)` has the same
/// race signature and a strictly smaller feasible-schedule set under the
/// carried window-start values, so the tables are lossless for candidate
/// enumeration while staying `O(vars × threads)` regardless of trace
/// length.
#[derive(Debug, Clone, Default)]
pub struct BoundarySpill {
    last_write: BTreeMap<(VarId, ThreadId), usize>,
    last_read: BTreeMap<(VarId, ThreadId), usize>,
}

impl BoundarySpill {
    /// Records every access in `events[range]` into the tables.
    fn record(&mut self, events: &[Event], range: Range<usize>) {
        for i in range {
            let e = &events[i];
            match e.kind {
                EventKind::Read { var, .. } => {
                    self.last_read.insert((var, e.thread), i);
                }
                EventKind::Write { var, .. } => {
                    self.last_write.insert((var, e.thread), i);
                }
                _ => {}
            }
        }
    }

    /// Last pre-boundary accesses of `var` by threads other than
    /// `thread`: `(index, is_write)` per partner, writes and (when
    /// `include_reads`) reads.
    fn partners(
        &self,
        var: VarId,
        thread: ThreadId,
        include_reads: bool,
        out: &mut Vec<(usize, bool)>,
    ) {
        let span = (var, ThreadId(0))..=(var, ThreadId(u32::MAX));
        for (&(_, t), &i) in self.last_write.range(span.clone()) {
            if t != thread {
                out.push((i, true));
            }
        }
        if include_reads {
            for (&(_, t), &i) in self.last_read.range(span) {
                if t != thread {
                    out.push((i, false));
                }
            }
        }
    }

    /// True when no access has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.last_write.is_empty() && self.last_read.is_empty()
    }
}

/// The dependence-bounded extension plan for one window: the
/// boundary-straddling candidate COPs found by [`BoundaryTracker::plan`]
/// and everything needed to rebuild the extended view that covers them.
///
/// The plan is a pure function of `(events, window, spill budget)` — it
/// carries its own base boundary checkpoint, so the extended view built
/// from it is byte-identical to the [`View`] a fixed window spanning
/// `ext_start..window.end` would have produced. That identity is the
/// soundness argument for cross-window prediction: no new view semantics,
/// just a longer (still boundary-correct) window for these COPs only.
#[derive(Debug, Clone)]
pub struct StraddlePlan {
    /// Straddling candidate pairs whose pre-boundary partner lies within
    /// the spill budget (earlier event first, per [`Cop::new`]).
    pub cops: Vec<Cop>,
    /// Straddling candidate pairs whose partner lies *beyond* the budget
    /// floor: the detector must degrade these to
    /// `Undecided(boundary-budget)` instead of solving a truncated view.
    pub over_budget: Vec<Cop>,
    /// Start of the extended view: the earliest in-budget partner.
    pub ext_start: usize,
    /// The spill-budget floor — `ext_start` never grows below this.
    pub floor: usize,
    /// The window this plan extends.
    pub window: Range<usize>,
    base: (usize, WindowBoundary),
    writes_tail: BTreeMap<VarId, Vec<usize>>,
}

impl StraddlePlan {
    /// Boundary state at trace position `at` (which must lie within
    /// `base.0..=window.start`), reconstructed by advancing the retained
    /// checkpoint — no whole-window re-residency.
    pub fn boundary_at(&self, events: &[Event], at: usize) -> WindowBoundary {
        assert!(
            self.base.0 <= at && at <= self.window.start,
            "boundary_at({at}) outside checkpointed span {}..={}",
            self.base.0,
            self.window.start
        );
        let mut b = self.base.1.clone();
        b.advance(events, self.base.0..at);
        b
    }

    /// The extended view for this plan's COPs, starting at `at`
    /// (normally [`ext_start`](StraddlePlan::ext_start), lower after
    /// cone growth).
    pub fn extended_view<'a>(&self, trace: &'a Trace, at: usize) -> View<'a> {
        self.boundary_at(trace.events(), at)
            .view(trace, at..self.window.end)
    }

    /// Cone growth target: the latest pre-`below` write (within the
    /// budget floor) of any variable in `vars` — the next dependence the
    /// extended view should absorb — or `None` when the cone is closed.
    pub fn grow_target(
        &self,
        vars: impl IntoIterator<Item = VarId>,
        below: usize,
    ) -> Option<usize> {
        vars.into_iter()
            .filter_map(|v| {
                let writes = self.writes_tail.get(&v)?;
                let n = writes.partition_point(|&w| w < below);
                (n > 0).then(|| writes[n - 1])
            })
            .min()
    }

    /// Events the extended view re-materializes beyond the fixed window
    /// (the spill residency this plan costs), for `ext_start = at`.
    pub fn spill_span(&self, at: usize) -> usize {
        self.window.start.saturating_sub(at)
    }
}

/// Cross-boundary state for dependence-bounded windowing, threaded by a
/// window dispatcher alongside its [`WindowBoundary`]: last-access
/// [`BoundarySpill`] tables, boundary checkpoints at past window starts,
/// and the per-variable write tail that cone growth queries.
///
/// Protocol per window `range` (in order): [`plan`](BoundaryTracker::plan)
/// first, then [`advance`](BoundaryTracker::advance). Both are
/// deterministic functions of the event prefix, so plans are identical
/// across eager, pipelined, streamed, and session drivers at any
/// parallelism.
#[derive(Debug, Clone)]
pub struct BoundaryTracker {
    spill: BoundarySpill,
    boundary: WindowBoundary,
    checkpoints: Vec<(usize, WindowBoundary)>,
    writes_tail: BTreeMap<VarId, Vec<usize>>,
    spill_events: usize,
    pos: usize,
}

impl BoundaryTracker {
    /// A tracker starting from the trace-start boundary, retaining at
    /// most `spill_events` events of lookback for extended views.
    pub fn new(boundary: WindowBoundary, spill_events: usize) -> Self {
        BoundaryTracker {
            spill: BoundarySpill::default(),
            boundary,
            checkpoints: Vec::new(),
            writes_tail: BTreeMap::new(),
            spill_events,
            pos: 0,
        }
    }

    /// The boundary at the start of the next window (advanced over
    /// exactly `events[..pos]`).
    pub fn boundary(&self) -> &WindowBoundary {
        &self.boundary
    }

    /// Events of lookback currently coverable by the retained
    /// checkpoints (the spill residency ceiling for the next window).
    pub fn spill_len(&self) -> usize {
        self.pos - self.checkpoints.first().map_or(self.pos, |&(s, _)| s)
    }

    /// Straddling candidates for window `range`, or `None` when no
    /// conflicting pair crosses its start — the fast path that keeps
    /// cone mode byte-identical to fixed mode on non-straddling traces.
    ///
    /// Must be called before [`advance`](BoundaryTracker::advance)ing
    /// over the same range.
    pub fn plan(
        &self,
        events: &[Event],
        range: Range<usize>,
        is_volatile: impl Fn(VarId) -> bool,
    ) -> Option<StraddlePlan> {
        assert_eq!(range.start, self.pos, "plan() out of window order");
        if self.spill.is_empty() {
            return None;
        }
        let floor = range.start.saturating_sub(self.spill_events);
        // One candidate per (variable, thread, kind): the window-first
        // access — nearest the boundary, hence the widest feasible
        // straddle — caps the plan without losing any signature.
        let mut seen: BTreeSet<(VarId, ThreadId, bool)> = BTreeSet::new();
        let mut partners: Vec<(usize, bool)> = Vec::new();
        let mut cops: BTreeSet<Cop> = BTreeSet::new();
        let mut over_budget: BTreeSet<Cop> = BTreeSet::new();
        let mut ext_start = range.start;
        for i in range.clone() {
            let e = &events[i];
            let (var, is_write) = match e.kind {
                EventKind::Read { var, .. } => (var, false),
                EventKind::Write { var, .. } => (var, true),
                _ => continue,
            };
            if is_volatile(var) || !seen.insert((var, e.thread, is_write)) {
                continue;
            }
            partners.clear();
            // A read only conflicts with pre-boundary writes; a write
            // with both kinds.
            self.spill.partners(var, e.thread, is_write, &mut partners);
            for &(p, _) in &partners {
                let cop = Cop::new(EventId(p as u32), EventId(i as u32));
                if p >= floor {
                    ext_start = ext_start.min(p);
                    cops.insert(cop);
                } else {
                    over_budget.insert(cop);
                }
            }
        }
        if cops.is_empty() && over_budget.is_empty() {
            return None;
        }
        // Base checkpoint: the latest retained boundary at or before the
        // budget floor serves every ext_start the plan (or cone growth)
        // can choose.
        let base = self
            .checkpoints
            .iter()
            .rev()
            .find(|&&(s, _)| s <= floor)
            .expect("checkpoint at or before the budget floor retained")
            .clone();
        let writes_tail = self
            .writes_tail
            .iter()
            .filter_map(|(&v, ws)| {
                let n = ws.partition_point(|&w| w < floor);
                (!is_volatile(v) && n < ws.len()).then(|| (v, ws[n..].to_vec()))
            })
            .collect();
        Some(StraddlePlan {
            cops: cops.into_iter().collect(),
            over_budget: over_budget.into_iter().collect(),
            ext_start,
            floor,
            window: range,
            base,
            writes_tail,
        })
    }

    /// Closes window `range`: checkpoints its start boundary, records its
    /// accesses into the spill tables, advances the carried boundary, and
    /// prunes checkpoints and write tails that fall behind the budget
    /// floor of every future window.
    pub fn advance(&mut self, events: &[Event], range: Range<usize>) {
        assert_eq!(range.start, self.pos, "advance() out of window order");
        self.checkpoints.push((range.start, self.boundary.clone()));
        self.spill.record(events, range.clone());
        for i in range.clone() {
            if let EventKind::Write { var, .. } = events[i].kind {
                self.writes_tail.entry(var).or_default().push(i);
            }
        }
        self.boundary.advance(events, range.clone());
        self.pos = range.end;
        let floor = self.pos.saturating_sub(self.spill_events);
        // Keep the latest checkpoint at or before the floor (the base
        // candidate) plus everything after it.
        let keep_from = self
            .checkpoints
            .iter()
            .rposition(|&(s, _)| s <= floor)
            .unwrap_or(0);
        self.checkpoints.drain(..keep_from);
        self.writes_tail.retain(|_, ws| {
            let n = ws.partition_point(|&w| w < floor);
            ws.drain(..n);
            !ws.is_empty()
        });
    }
}

/// Extension methods on [`Trace`] producing views.
pub trait ViewExt {
    /// A view covering the whole trace.
    fn full_view(&self) -> View<'_>;

    /// Fixed-size windows covering the trace (the last may be shorter).
    /// `size` must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    fn windows(&self, size: usize) -> Vec<View<'_>>;

    /// A lazy [`WindowStream`] over the same windows `windows(size)`
    /// returns, materializing one [`View`] at a time.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    fn window_stream(&self, size: usize) -> WindowStream<'_>;
}

impl ViewExt for Trace {
    fn full_view(&self) -> View<'_> {
        View::build(self, 0, self.len(), &WindowBoundary::initial(self))
    }

    fn windows(&self, size: usize) -> Vec<View<'_>> {
        self.window_stream(size).collect()
    }

    fn window_stream(&self, size: usize) -> WindowStream<'_> {
        WindowStream::new(self, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    /// fork/join + lock trace used across the tests.
    fn sample() -> (Trace, Vec<EventId>) {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0 fork
        b.acquire(t1, l); // e1
        let w = b.write(t1, x, 1); // e2
        b.release(t1, l); // e3
                          // t2: begin e4 (auto), acquire e5, read e6, release e7
        b.acquire(t2, l); // e4=begin, e5=acquire
        let r = b.read(t2, x, 1); // e6
        b.release(t2, l); // e7
        let j = b.join(t1, t2); // e8=end(t2), e9=join
        (b.finish(), vec![w, r, j])
    }

    #[test]
    fn mhb_fork_join_edges() {
        let (tr, ids) = sample();
        let v = tr.full_view();
        let (w, r, j) = (ids[0], ids[1], ids[2]);
        // fork(e0) precedes t2's begin and read.
        assert!(v.mhb(EventId(0), r));
        // The write is NOT MHB-ordered with the read (only lock-ordered).
        assert!(!v.mhb(w, r));
        assert!(!v.mhb(r, w));
        // Everything in t2 precedes the join.
        assert!(v.mhb(r, j));
        assert!(!v.mhb(j, r));
        // Irreflexive.
        assert!(!v.mhb(w, w));
        // Program order.
        assert!(v.mhb(EventId(1), w));
    }

    #[test]
    fn locksets_and_critical_sections() {
        let (tr, ids) = sample();
        let v = tr.full_view();
        let (w, r, _) = (ids[0], ids[1], ids[2]);
        assert_eq!(v.lockset(w), &[LockId(0)]);
        assert_eq!(v.lockset(r), &[LockId(0)]);
        assert_eq!(v.lockset(EventId(0)), &[] as &[LockId]); // fork outside CS
        let cs = v.critical_sections(LockId(0));
        assert_eq!(cs.len(), 2);
        assert!(cs
            .iter()
            .all(|s| s.acquire.is_some() && s.release.is_some()));
    }

    #[test]
    fn read_write_indexes() {
        let (tr, ids) = sample();
        let v = tr.full_view();
        assert_eq!(v.writes_of(VarId(0)), &[ids[0]]);
        assert_eq!(v.reads_of(VarId(0)), &[ids[1]]);
        let t2 = tr.threads()[1];
        assert_eq!(v.thread_reads(t2), &[ids[1]]);
        assert_eq!(v.thread_reads_before(ids[1]), &[] as &[EventId]);
    }

    #[test]
    fn last_branches_before_tracks_mhb() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        b.read(t1, x, 0);
        let br = b.branch(t1); // branch in t1
        let w1 = b.write(t1, x, 1);
        let t2 = b.fork(t1);
        let w2 = b.write(t2, x, 2);
        let tr = b.finish();
        let v = tr.full_view();
        // w1 is after the branch in the same thread.
        assert_eq!(v.last_branches_before(w1), vec![br]);
        // w2 in t2 sees t1's branch through the fork edge.
        assert_eq!(v.last_branches_before(w2), vec![br]);
        // The branch itself has no prior branch.
        assert!(v.last_branches_before(br).is_empty());
    }

    #[test]
    fn windows_carry_values_and_locks() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t = ThreadId::MAIN;
        b.write(t, x, 42); // window 0
        b.acquire(t, l); // window 0
        b.read(t, x, 42); // window 1
        b.release(t, l); // window 1
        let tr = b.finish();
        let ws = tr.windows(2);
        assert_eq!(ws.len(), 2);
        let w1 = &ws[1];
        assert_eq!(w1.initial_value(x), Value(42));
        assert_eq!(w1.held_at_start(), &[(t, l)]);
        // The boundary-crossing critical section has no acquire.
        let cs = w1.critical_sections(l);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].acquire.is_none());
        assert!(cs[0].release.is_some());
        // And the read inside window 1 still holds the lock.
        let read_id = EventId(2);
        assert_eq!(w1.lockset(read_id), &[l]);
    }

    #[test]
    fn window_clocks_do_not_cross_boundary() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0, window 0
        let w2 = b.write(t2, x, 1); // begin e1, write e2 (window 0: e0,e1; window 1: e2..)
        let w1 = b.write(t1, x, 2); // e3
        let tr = b.finish();
        let ws = tr.windows(2);
        assert_eq!(ws.len(), 2);
        // In window 1, fork is outside: no MHB between the two writes.
        let v = &ws[1];
        assert!(!v.mhb(w1, w2));
        assert!(!v.mhb(w2, w1));
    }

    #[test]
    fn split_carries_boundary_state() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t = ThreadId::MAIN;
        b.write(t, x, 42); // first half
        b.acquire(t, l); // first half
        b.read(t, x, 42); // second half
        b.release(t, l); // second half
        let tr = b.finish();
        let full = tr.full_view();
        let (a, c) = full.split().expect("splittable");
        assert_eq!(a.range(), 0..2);
        assert_eq!(c.range(), 2..4);
        // The second half sees the first half's effects at its boundary.
        assert_eq!(c.initial_value(x), Value(42));
        assert_eq!(c.held_at_start(), &[(t, l)]);
        // Halves match the equivalent two-window split of the trace.
        let ws = tr.windows(2);
        assert_eq!(ws[1].initial_value(x), c.initial_value(x));
        assert_eq!(ws[1].held_at_start(), c.held_at_start());
        // Too-small views refuse to split.
        let tiny = &tr.windows(1)[0];
        assert!(tiny.split().is_none());
    }

    #[test]
    fn window_stream_matches_eager_windows() {
        let (tr, _) = sample();
        for size in [1, 2, 3, 4, tr.len(), tr.len() + 7] {
            let eager = tr.windows(size);
            let streamed: Vec<View<'_>> = tr.window_stream(size).collect();
            assert_eq!(eager.len(), streamed.len(), "size={size}");
            for (e, s) in eager.iter().zip(&streamed) {
                assert_eq!(e.range(), s.range(), "size={size}");
                assert_eq!(e.held_at_start(), s.held_at_start(), "size={size}");
                for v in 0..tr.n_vars() as u32 {
                    assert_eq!(
                        e.initial_value(VarId(v)),
                        s.initial_value(VarId(v)),
                        "size={size} var={v}"
                    );
                }
                for id in e.ids() {
                    assert_eq!(e.lockset(id), s.lockset(id), "size={size} {id}");
                    assert_eq!(e.clock(id), s.clock(id), "size={size} {id}");
                }
            }
        }
    }

    #[test]
    fn window_stream_reports_next_range() {
        let (tr, _) = sample();
        let mut ws = tr.window_stream(4);
        assert_eq!(ws.next_range(), Some(0..4));
        ws.next();
        assert_eq!(ws.next_range(), Some(4..8));
        while ws.next().is_some() {}
        assert_eq!(ws.next_range(), None);
    }

    #[test]
    fn boundary_from_initial_values_grows_on_demand() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.initial(x, 7);
        let t = ThreadId::MAIN;
        b.read(t, x, 7); // window 0
        b.write(t, y, 9); // window 0
        b.read(t, y, 9); // window 1
        let tr = b.finish();

        // A boundary seeded from metadata alone (streaming: trace length
        // and n_vars unknown) must agree with the trace-seeded one.
        let mut meta = WindowBoundary::from_initial_values(&tr.data().initial_values);
        let mut full = WindowBoundary::initial(&tr);
        assert_eq!(meta.view(&tr, 0..2).initial_value(x), Value(7));
        assert_eq!(meta.view(&tr, 0..2).initial_value(y), Value(0));
        meta.advance(tr.events(), 0..2);
        full.advance(tr.events(), 0..2);
        for v in [x, y] {
            assert_eq!(
                meta.view(&tr, 2..3).initial_value(v),
                full.view(&tr, 2..3).initial_value(v),
            );
        }
        assert_eq!(meta.view(&tr, 2..3).initial_value(y), Value(9));
    }

    /// write(t1, x) in window 0, read(t2, x) in window 1: one straddling
    /// candidate pair.
    fn straddling_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0 fork
        b.write(t1, x, 1); // e1 (window 0: e0..e3)
        b.write(t1, y, 7); // e2
        b.read(t2, x, 1); // begin e3, read e4 (window 1)
        b.finish()
    }

    #[test]
    fn tracker_plans_straddling_pairs() {
        let tr = straddling_trace();
        let mut tk = BoundaryTracker::new(WindowBoundary::initial(&tr), 1024);
        let vol = |v: VarId| tr.is_volatile(v);
        // Window 0 never has a plan (nothing spilled yet).
        assert!(tk.plan(tr.events(), 0..3, vol).is_none());
        tk.advance(tr.events(), 0..3);
        let plan = tk
            .plan(tr.events(), 3..tr.len(), vol)
            .expect("read of x straddles the boundary");
        assert!(plan.over_budget.is_empty());
        assert_eq!(plan.cops.len(), 1);
        let cop = plan.cops[0];
        // The pair is (write of x in window 0, read of x in window 1).
        assert!(tr.event(cop.first).kind.is_write());
        assert!(tr.event(cop.second).kind.is_read());
        assert_eq!(
            tr.event(cop.first).kind.var(),
            tr.event(cop.second).kind.var()
        );
        assert_eq!(plan.ext_start, cop.first.index());
        // The extended view is byte-equivalent to a window that started
        // at ext_start: boundary state reconstructed from the checkpoint.
        let ext = plan.extended_view(&tr, plan.ext_start);
        assert_eq!(ext.range(), plan.ext_start..tr.len());
        assert!(ext.contains(cop.first) && ext.contains(cop.second));
        // y's write (e2) is inside the extended range, so the extended
        // view's window-start value for y is still the trace-initial one
        // — while the plain window 1 view sees the carried write.
        let y = VarId(1);
        assert_eq!(ext.initial_value(y), Value(0));
        assert_eq!(
            tk.boundary().view(&tr, 3..tr.len()).initial_value(y),
            Value(7)
        );
    }

    #[test]
    fn tracker_budget_floor_degrades_to_over_budget() {
        let tr = straddling_trace();
        // Zero lookback: every straddling candidate is over budget.
        let mut tk = BoundaryTracker::new(WindowBoundary::initial(&tr), 0);
        let vol = |v: VarId| tr.is_volatile(v);
        tk.advance(tr.events(), 0..3);
        let plan = tk.plan(tr.events(), 3..tr.len(), vol).expect("candidates");
        assert!(plan.cops.is_empty());
        assert_eq!(plan.over_budget.len(), 1);
        assert_eq!(plan.ext_start, 3, "no in-budget partner: no extension");
    }

    #[test]
    fn tracker_ignores_same_thread_and_volatile() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let v = b.volatile_var("v");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.write(t1, x, 1); // window 0
        b.write(t1, v, 1); // window 0
        b.read(t1, x, 1); // window 1: same thread, no pair
        b.read(t2, v, 1); // window 1: volatile, no pair
        let tr = b.finish();
        let mut tk = BoundaryTracker::new(WindowBoundary::initial(&tr), 1024);
        let vol = |var: VarId| tr.is_volatile(var);
        tk.advance(tr.events(), 0..4);
        assert!(tk.plan(tr.events(), 4..tr.len(), vol).is_none());
    }

    #[test]
    fn tracker_grow_target_follows_write_tail() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let wy = b.write(t1, y, 5); // e1
        let wx = b.write(t1, x, 1); // e2
        b.read(t2, x, 1); // window 1 (begin is e3, read e4)
        let tr = b.finish();
        let mut tk = BoundaryTracker::new(WindowBoundary::initial(&tr), 1024);
        let vol = |v: VarId| tr.is_volatile(v);
        tk.advance(tr.events(), 0..3);
        let plan = tk.plan(tr.events(), 3..tr.len(), vol).expect("straddle");
        assert_eq!(plan.ext_start, wx.index());
        // Growing along a dependence on y reaches back to y's last write.
        assert_eq!(plan.grow_target([y], plan.ext_start), Some(wy.index()));
        // x's own write is at ext_start already: nothing earlier.
        assert_eq!(plan.grow_target([x], plan.ext_start), None);
        let _ = wx;
    }

    #[test]
    fn tracker_checkpoints_prune_to_budget() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        for i in 0..20 {
            b.write(t1, x, i);
        }
        b.read(t2, x, 19);
        let tr = b.finish();
        let mut tk = BoundaryTracker::new(WindowBoundary::initial(&tr), 6);
        let vol = |v: VarId| tr.is_volatile(v);
        let mut start = 0;
        while start + 4 <= 20 {
            let _ = tk.plan(tr.events(), start..start + 4, vol);
            tk.advance(tr.events(), start..start + 4);
            start += 4;
        }
        assert!(tk.spill_len() <= 6 + 4, "pruned near the budget");
        let plan = tk
            .plan(tr.events(), start..tr.len(), vol)
            .expect("straddle");
        // Only the last write is within the 6-event floor; all earlier
        // last-writes were superseded so exactly one candidate exists.
        assert_eq!(plan.cops.len(), 1);
        assert!(plan.ext_start >= plan.floor);
        // The reconstructed boundary matches a freshly advanced one.
        let mut fresh = WindowBoundary::initial(&tr);
        fresh.advance(tr.events(), 0..plan.ext_start);
        let a = plan.boundary_at(tr.events(), plan.ext_start);
        let va = a.view(&tr, plan.ext_start..tr.len());
        let vb = fresh.view(&tr, plan.ext_start..tr.len());
        assert_eq!(va.initial_value(x), vb.initial_value(x));
        assert_eq!(va.held_at_start(), vb.held_at_start());
    }

    #[test]
    fn read_spans_and_boundary_read_holds() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("rw");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0
        b.acquire_read(t1, l); // e1 (window 0: e0..e1)
        b.acquire_read(t2, l); // e2 begin, e3 acquire-read (window 1)
        b.release_read(t1, l); // e4
        b.release_read(t2, l); // e5
        let tr = b.finish();
        let full = tr.full_view();
        assert!(full.has_extended_sync());
        assert!(full.critical_sections(l).is_empty(), "write-only index");
        let rs = full.read_critical_sections(l);
        assert_eq!(rs.len(), 2);
        assert!(rs
            .iter()
            .all(|s| s.acquire.is_some() && s.release.is_some()));
        // Read holds carry across a window boundary, separately from
        // write-mode holds.
        let ws = tr.windows(2);
        let w1 = &ws[1];
        assert_eq!(w1.held_at_start(), &[] as &[(ThreadId, LockId)]);
        assert_eq!(w1.held_read_at_start(), &[(t1, l)]);
        let rs1 = w1.read_critical_sections(l);
        assert_eq!(rs1.len(), 2);
        // t1's span is boundary-open: no acquire inside window 1.
        assert!(rs1.iter().any(|s| s.thread == t1 && s.acquire.is_none()));
        // Read-mode holds stay out of locksets (soundness: a read hold
        // never excludes another read hold, so lockset-based pruning
        // cannot treat it as mutual exclusion).
        assert_eq!(full.lockset(EventId(4)), &[] as &[LockId]);
    }

    #[test]
    fn recv_joins_send_clock() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let c = b.new_chan("ch");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0
        let w = b.write(t1, x, 1); // e1
        let s = b.send(t1, c); // e2
        b.recv(t2, c, Some(s)); // e3 begin, e4 recv
        let r = b.read(t2, x, 1); // e5
        let tr = b.finish();
        let v = tr.full_view();
        // The write is MHB-before the read through the message edge.
        assert!(v.mhb(w, r));
        assert!(v.mhb(s, r));
        // An unlinked recv adds no edge.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let c = b.new_chan("ch");
        let t2 = b.fork(ThreadId::MAIN);
        let w = b.write(ThreadId::MAIN, x, 1);
        b.send(ThreadId::MAIN, c);
        b.recv(t2, c, None);
        let r = b.read(t2, x, 1);
        let tr = b.finish();
        assert!(!tr.full_view().mhb(w, r));
    }

    #[test]
    fn full_view_basics() {
        let (tr, _) = sample();
        let v = tr.full_view();
        assert_eq!(v.len(), tr.len());
        assert!(!v.is_empty());
        assert!(v.contains(EventId(0)));
        assert_eq!(v.ids().count(), tr.len());
        assert_eq!(v.range(), 0..tr.len());
    }
}
