//! Trace consistency (paper §2.2) and schedule validation.
//!
//! A trace is *(sequentially) consistent* iff its restriction to every
//! concurrent object satisfies the object's serial specification:
//!
//! * **read consistency** — each read returns the value of the most recent
//!   write to the same location (or the initial value);
//! * **lock mutual exclusion** — acquires/releases on each lock alternate
//!   and pair up within a thread;
//! * **must-happen-before** — `begin` first and after `fork`; `end` last;
//!   `join` after the joined thread's `end`.
//!
//! Branch events have no serial specification and may appear anywhere.
//!
//! [`check_schedule`] validates a *reordering* of a window (a candidate race
//! witness) against the requirements every τ-feasible trace must satisfy:
//! per-thread prefix preservation (local determinism, data-abstract),
//! fork/join edges, lock mutual exclusion, and wait/notify matching.

use std::collections::HashMap;
use std::fmt;

use crate::error::TraceError;
use crate::event::{EventId, EventKind, LockId, ThreadId, Value, VarId};
use crate::trace::Trace;
use crate::view::View;

/// Checks full-trace consistency; returns all violations found.
///
/// # Examples
///
/// ```
/// use rvtrace::{check_consistency, ThreadId, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.write(ThreadId::MAIN, x, 1);
/// b.read(ThreadId::MAIN, x, 1);
/// let trace = b.finish();
/// assert!(check_consistency(&trace).is_empty());
/// ```
pub fn check_consistency(trace: &Trace) -> Vec<TraceError> {
    let mut errors = Vec::new();
    let mut values: HashMap<VarId, Value> = HashMap::new();
    let mut lock_holder: HashMap<LockId, ThreadId> = HashMap::new();
    let mut read_holders: HashMap<LockId, Vec<ThreadId>> = HashMap::new();
    #[derive(Default, Clone)]
    struct Ts {
        forked: u32,
        begun: bool,
        ended: bool,
        seen_events: bool,
    }
    let mut ts: HashMap<ThreadId, Ts> = HashMap::new();

    for (i, e) in trace.events().iter().enumerate() {
        let id = EventId(i as u32);
        let st = ts.entry(e.thread).or_default();
        if st.ended {
            errors.push(TraceError::EventAfterEnd {
                thread: e.thread,
                event: id,
            });
        }
        match e.kind {
            EventKind::Begin => {
                if st.seen_events {
                    errors.push(TraceError::EventBeforeBegin {
                        thread: e.thread,
                        event: id,
                    });
                }
                if st.forked == 0 {
                    errors.push(TraceError::BeginWithoutFork {
                        thread: e.thread,
                        event: id,
                    });
                }
                st.begun = true;
            }
            EventKind::End => {
                st.ended = true;
            }
            _ => {
                if st.forked > 0 && !st.begun {
                    errors.push(TraceError::EventBeforeBegin {
                        thread: e.thread,
                        event: id,
                    });
                }
            }
        }
        st.seen_events = true;

        match e.kind {
            EventKind::Read { var, value } => {
                let expected = values
                    .get(&var)
                    .copied()
                    .unwrap_or_else(|| trace.initial_value(var));
                if value != expected {
                    errors.push(TraceError::InconsistentRead {
                        read: id,
                        var,
                        expected,
                        actual: value,
                    });
                }
            }
            EventKind::Write { var, value } => {
                values.insert(var, value);
            }
            EventKind::Acquire { lock }
                if !lock_holder.contains_key(&lock)
                    && read_holders.get(&lock).map_or(true, Vec::is_empty) =>
            {
                lock_holder.insert(lock, e.thread);
            }
            EventKind::Acquire { lock } => {
                errors.push(TraceError::AcquireHeldLock {
                    thread: e.thread,
                    lock,
                    event: id,
                });
            }
            EventKind::Release { lock } => {
                if lock_holder.get(&lock) == Some(&e.thread) {
                    lock_holder.remove(&lock);
                } else {
                    errors.push(TraceError::ReleaseWithoutAcquire {
                        thread: e.thread,
                        lock,
                        event: id,
                    });
                }
            }
            EventKind::AcquireRead { lock } => {
                // A read hold coexists with other read holds but not with
                // a write hold, and is non-reentrant per thread.
                let readers = read_holders.entry(lock).or_default();
                if lock_holder.contains_key(&lock) || readers.contains(&e.thread) {
                    errors.push(TraceError::AcquireHeldLock {
                        thread: e.thread,
                        lock,
                        event: id,
                    });
                } else {
                    readers.push(e.thread);
                }
            }
            EventKind::ReleaseRead { lock } => {
                let readers = read_holders.entry(lock).or_default();
                if let Some(p) = readers.iter().position(|&t| t == e.thread) {
                    readers.swap_remove(p);
                } else {
                    errors.push(TraceError::ReleaseWithoutAcquire {
                        thread: e.thread,
                        lock,
                        event: id,
                    });
                }
            }
            EventKind::Fork { child } => {
                let cst = ts.entry(child).or_default();
                cst.forked += 1;
                if cst.forked > 1 {
                    errors.push(TraceError::DoubleFork {
                        thread: child,
                        event: id,
                    });
                }
            }
            EventKind::Join { child } => {
                let ended = ts.get(&child).map(|s| s.ended).unwrap_or(false);
                if !ended {
                    errors.push(TraceError::JoinBeforeEnd {
                        thread: child,
                        event: id,
                    });
                }
            }
            EventKind::Begin
            | EventKind::End
            | EventKind::Branch
            | EventKind::Notify { .. }
            | EventKind::Send { .. }
            | EventKind::Recv { .. } => {}
        }
    }
    errors
}

/// A candidate reordering of (a prefix-selection of) a window's events, e.g.
/// a race witness extracted from an SMT model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule(
    /// The scheduled events, in execution order.
    pub Vec<EventId>,
);

impl Schedule {
    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{}", e.0)?;
        }
        Ok(())
    }
}

/// A violation found while validating a [`Schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// An event outside the view, or scheduled twice.
    BadEvent(EventId),
    /// A thread's scheduled events are not a prefix of its projection.
    NotThreadPrefix {
        /// The thread whose order was broken.
        thread: ThreadId,
        /// The out-of-order event.
        event: EventId,
    },
    /// A `begin` scheduled before its in-view `fork`.
    BeginBeforeFork(EventId),
    /// A `join` scheduled before the joined thread's in-view `end`.
    JoinBeforeEnd(EventId),
    /// Lock mutual exclusion violated at this event.
    MutexViolation(EventId),
    /// A matched notify scheduled outside its wait's release/acquire span,
    /// or a wait re-acquire scheduled without its notify.
    WaitNotifyMismatch(EventId),
    /// A linked `recv` scheduled before its in-view `send`.
    RecvBeforeSend(EventId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::BadEvent(e) => {
                write!(f, "{e}: not schedulable (outside view or duplicate)")
            }
            ScheduleError::NotThreadPrefix { thread, event } => {
                write!(
                    f,
                    "{event}: thread {thread} order is not a projection prefix"
                )
            }
            ScheduleError::BeginBeforeFork(e) => write!(f, "{e}: begin before its fork"),
            ScheduleError::JoinBeforeEnd(e) => write!(f, "{e}: join before the child's end"),
            ScheduleError::MutexViolation(e) => write!(f, "{e}: lock mutual exclusion violated"),
            ScheduleError::WaitNotifyMismatch(e) => write!(f, "{e}: wait/notify matching violated"),
            ScheduleError::RecvBeforeSend(e) => write!(f, "{e}: recv before its linked send"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Validates a schedule against a view. On success the schedule corresponds
/// to a consistent, data-abstract reordering of the window (paper Thm. 3's
/// construction, before re-assigning read values).
pub fn check_schedule(view: &View<'_>, schedule: &Schedule) -> Result<(), ScheduleError> {
    let trace = view.trace();
    let mut next_pos: HashMap<ThreadId, usize> = HashMap::new();
    let mut scheduled: HashMap<EventId, usize> = HashMap::new();
    let mut lock_holder: HashMap<LockId, ThreadId> = HashMap::new();
    for &(t, l) in view.held_at_start() {
        lock_holder.insert(l, t);
    }
    let mut read_holders: HashMap<LockId, Vec<ThreadId>> = HashMap::new();
    for &(t, l) in view.held_read_at_start() {
        read_holders.entry(l).or_default().push(t);
    }

    for (step, &id) in schedule.0.iter().enumerate() {
        if !view.contains(id) || scheduled.contains_key(&id) {
            return Err(ScheduleError::BadEvent(id));
        }
        let e = view.event(id);
        // Per-thread prefix preservation (local determinism).
        let pos = next_pos.entry(e.thread).or_insert(0);
        let expected = view.thread_events(e.thread).get(*pos).copied();
        if expected != Some(id) {
            return Err(ScheduleError::NotThreadPrefix {
                thread: e.thread,
                event: id,
            });
        }
        *pos += 1;

        match e.kind {
            EventKind::Begin => {
                // The fork must be scheduled earlier if it is in the view.
                let fork = view.ids().find(|&f| {
                    matches!(view.event(f).kind, EventKind::Fork { child } if child == e.thread)
                });
                if let Some(f) = fork {
                    if !scheduled.contains_key(&f) {
                        return Err(ScheduleError::BeginBeforeFork(id));
                    }
                }
            }
            EventKind::Join { child } => {
                let end =
                    trace.thread_events(child).iter().copied().find(|&x| {
                        view.contains(x) && matches!(view.event(x).kind, EventKind::End)
                    });
                if let Some(en) = end {
                    if !scheduled.contains_key(&en) {
                        return Err(ScheduleError::JoinBeforeEnd(id));
                    }
                }
            }
            EventKind::Acquire { lock } => {
                if lock_holder.contains_key(&lock)
                    || !read_holders.get(&lock).map_or(true, Vec::is_empty)
                {
                    return Err(ScheduleError::MutexViolation(id));
                }
                lock_holder.insert(lock, e.thread);
                // Wait re-acquire: its notify must be scheduled already.
                if let Some(wl) = trace.wait_link_of_acquire(id) {
                    match wl.notify {
                        Some(n) if view.contains(n) && !scheduled.contains_key(&n) => {
                            return Err(ScheduleError::WaitNotifyMismatch(id));
                        }
                        _ => {}
                    }
                }
            }
            EventKind::Release { lock } => {
                if lock_holder.get(&lock) != Some(&e.thread) {
                    return Err(ScheduleError::MutexViolation(id));
                }
                lock_holder.remove(&lock);
            }
            EventKind::AcquireRead { lock } => {
                if lock_holder.contains_key(&lock) {
                    return Err(ScheduleError::MutexViolation(id));
                }
                read_holders.entry(lock).or_default().push(e.thread);
            }
            EventKind::ReleaseRead { lock } => {
                let readers = read_holders.entry(lock).or_default();
                match readers.iter().position(|&t| t == e.thread) {
                    Some(p) => {
                        readers.swap_remove(p);
                    }
                    None => return Err(ScheduleError::MutexViolation(id)),
                }
            }
            EventKind::Recv { .. } => {
                // A linked recv requires its send scheduled first (if the
                // send is in the view; a cross-window send counts as done).
                if let Some(ml) = trace.msg_link_of_recv(id) {
                    if view.contains(ml.send) && !scheduled.contains_key(&ml.send) {
                        return Err(ScheduleError::RecvBeforeSend(id));
                    }
                }
            }
            EventKind::Notify { .. } => {
                // A matched notify must fall inside its wait's release span:
                // the wait's release scheduled, its re-acquire not yet.
                if let Some(wl) = trace.wait_link_of_notify(id) {
                    if view.contains(wl.release) && !scheduled.contains_key(&wl.release) {
                        return Err(ScheduleError::WaitNotifyMismatch(id));
                    }
                    if scheduled.contains_key(&wl.acquire) {
                        return Err(ScheduleError::WaitNotifyMismatch(id));
                    }
                }
            }
            _ => {}
        }
        scheduled.insert(id, step);
    }
    Ok(())
}

/// Replays the schedule's writes and reports the value each scheduled *read*
/// would observe (last scheduled write to the variable, else the view's
/// initial value). Used to decide which reads keep their original values in
/// a witness (the concretely feasible reads of paper §3.2).
pub fn schedule_read_values(view: &View<'_>, schedule: &Schedule) -> HashMap<EventId, Value> {
    let mut values: HashMap<VarId, Value> = HashMap::new();
    let mut out = HashMap::new();
    for &id in &schedule.0 {
        match view.event(id).kind {
            EventKind::Read { var, .. } => {
                let v = values
                    .get(&var)
                    .copied()
                    .unwrap_or_else(|| view.initial_value(var));
                out.insert(id, v);
            }
            EventKind::Write { var, value } => {
                values.insert(var, value);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::{Event, Loc};
    use crate::trace::TraceData;
    use crate::view::ViewExt;

    fn raw(events: Vec<Event>) -> Trace {
        Trace::from_data(TraceData {
            events,
            ..Default::default()
        })
    }

    fn ev(t: u32, kind: EventKind) -> Event {
        Event::new(ThreadId(t), kind, Loc(0))
    }

    #[test]
    fn consistent_builder_trace_passes() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.write(t1, x, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, x, 1);
        b.release(t2, l);
        b.join(t1, t2);
        assert!(check_consistency(&b.finish()).is_empty());
    }

    #[test]
    fn inconsistent_read_detected() {
        let t = raw(vec![
            ev(
                0,
                EventKind::Write {
                    var: VarId(0),
                    value: Value(1),
                },
            ),
            ev(
                0,
                EventKind::Read {
                    var: VarId(0),
                    value: Value(7),
                },
            ),
        ]);
        let errs = check_consistency(&t);
        assert!(matches!(errs[0], TraceError::InconsistentRead { .. }));
    }

    #[test]
    fn read_of_initial_value_consistent() {
        let mut data = TraceData {
            events: vec![ev(
                0,
                EventKind::Read {
                    var: VarId(0),
                    value: Value(5),
                },
            )],
            ..Default::default()
        };
        data.initial_values.insert(VarId(0), Value(5));
        assert!(check_consistency(&Trace::from_data(data)).is_empty());
    }

    #[test]
    fn mutex_violations_detected() {
        let t = raw(vec![
            ev(0, EventKind::Acquire { lock: LockId(0) }),
            ev(1, EventKind::Acquire { lock: LockId(0) }),
        ]);
        let errs = check_consistency(&t);
        assert!(matches!(errs[0], TraceError::AcquireHeldLock { .. }));
        let t = raw(vec![ev(0, EventKind::Release { lock: LockId(0) })]);
        assert!(matches!(
            check_consistency(&t)[0],
            TraceError::ReleaseWithoutAcquire { .. }
        ));
    }

    #[test]
    fn mhb_violations_detected() {
        // begin without fork
        let t = raw(vec![ev(1, EventKind::Begin)]);
        assert!(matches!(
            check_consistency(&t)[0],
            TraceError::BeginWithoutFork { .. }
        ));
        // join before end
        let t = raw(vec![
            ev(0, EventKind::Fork { child: ThreadId(1) }),
            ev(0, EventKind::Join { child: ThreadId(1) }),
        ]);
        assert!(matches!(
            check_consistency(&t)[0],
            TraceError::JoinBeforeEnd { .. }
        ));
        // event after end
        let t = raw(vec![ev(0, EventKind::End), ev(0, EventKind::Branch)]);
        assert!(matches!(
            check_consistency(&t)[0],
            TraceError::EventAfterEnd { .. }
        ));
        // forked thread acting before begin
        let t = raw(vec![
            ev(0, EventKind::Fork { child: ThreadId(1) }),
            ev(1, EventKind::Branch),
        ]);
        assert!(matches!(
            check_consistency(&t)[0],
            TraceError::EventBeforeBegin { .. }
        ));
    }

    #[test]
    fn rwlock_consistency_rules() {
        // Concurrent readers are consistent.
        let t = raw(vec![
            ev(0, EventKind::AcquireRead { lock: LockId(0) }),
            ev(1, EventKind::AcquireRead { lock: LockId(0) }),
            ev(0, EventKind::ReleaseRead { lock: LockId(0) }),
            ev(1, EventKind::ReleaseRead { lock: LockId(0) }),
        ]);
        assert!(check_consistency(&t).is_empty());
        // Write acquire under an open read hold is rejected.
        let t = raw(vec![
            ev(0, EventKind::AcquireRead { lock: LockId(0) }),
            ev(1, EventKind::Acquire { lock: LockId(0) }),
        ]);
        assert!(matches!(
            check_consistency(&t)[0],
            TraceError::AcquireHeldLock { .. }
        ));
        // Read acquire under a write hold is rejected.
        let t = raw(vec![
            ev(0, EventKind::Acquire { lock: LockId(0) }),
            ev(1, EventKind::AcquireRead { lock: LockId(0) }),
        ]);
        assert!(matches!(
            check_consistency(&t)[0],
            TraceError::AcquireHeldLock { .. }
        ));
        // Read release without a hold is rejected.
        let t = raw(vec![ev(0, EventKind::ReleaseRead { lock: LockId(0) })]);
        assert!(matches!(
            check_consistency(&t)[0],
            TraceError::ReleaseWithoutAcquire { .. }
        ));
    }

    #[test]
    fn schedule_rwlock_rules() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0
        b.acquire_read(t1, l); // e1
        b.release_read(t1, l); // e2
        b.acquire(t2, l); // e3 begin, e4 acquire
        b.release(t2, l); // e5
        let tr = b.finish();
        let v = tr.full_view();
        // Write acquire while the read span is still open is rejected.
        let bad = Schedule(vec![EventId(0), EventId(1), EventId(3), EventId(4)]);
        assert_eq!(
            check_schedule(&v, &bad),
            Err(ScheduleError::MutexViolation(EventId(4)))
        );
        // Reordering with the read span closed first is accepted.
        let ok = Schedule(vec![
            EventId(0),
            EventId(3),
            EventId(4),
            EventId(5),
            EventId(1),
            EventId(2),
        ]);
        assert_eq!(check_schedule(&v, &ok), Ok(()));
    }

    #[test]
    fn schedule_recv_requires_send() {
        let mut b = TraceBuilder::new();
        let c = b.new_chan("c");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0
        let s = b.send(t1, c); // e1
        b.recv(t2, c, Some(s)); // e2 begin, e3 recv
        let tr = b.finish();
        let v = tr.full_view();
        let bad = Schedule(vec![EventId(0), EventId(2), EventId(3)]);
        assert_eq!(
            check_schedule(&v, &bad),
            Err(ScheduleError::RecvBeforeSend(EventId(3)))
        );
        let ok = Schedule(vec![EventId(0), EventId(1), EventId(2), EventId(3)]);
        assert_eq!(check_schedule(&v, &ok), Ok(()));
    }

    fn fork_lock_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0
        b.acquire(t1, l); // e1
        b.write(t1, x, 1); // e2
        b.release(t1, l); // e3
        b.acquire(t2, l); // e4 begin, e5 acquire
        b.read(t2, x, 1); // e6
        b.release(t2, l); // e7
        b.finish()
    }

    #[test]
    fn valid_reordered_schedule_accepted() {
        let tr = fork_lock_trace();
        let v = tr.full_view();
        // t2's critical section first, then t1's.
        let sched = Schedule(vec![
            EventId(0),
            EventId(4),
            EventId(5),
            EventId(6),
            EventId(7),
            EventId(1),
            EventId(2),
            EventId(3),
        ]);
        assert_eq!(check_schedule(&v, &sched), Ok(()));
        let vals = schedule_read_values(&v, &sched);
        // Reordered: the read now sees the initial value 0, not 1.
        assert_eq!(vals[&EventId(6)], Value(0));
    }

    #[test]
    fn schedule_rejects_mutex_overlap() {
        let tr = fork_lock_trace();
        let v = tr.full_view();
        let sched = Schedule(vec![EventId(0), EventId(1), EventId(4), EventId(5)]);
        assert_eq!(
            check_schedule(&v, &sched),
            Err(ScheduleError::MutexViolation(EventId(5)))
        );
    }

    #[test]
    fn schedule_rejects_begin_before_fork() {
        let tr = fork_lock_trace();
        let v = tr.full_view();
        let sched = Schedule(vec![EventId(4)]);
        assert_eq!(
            check_schedule(&v, &sched),
            Err(ScheduleError::BeginBeforeFork(EventId(4)))
        );
    }

    #[test]
    fn schedule_rejects_thread_order_breaks() {
        let tr = fork_lock_trace();
        let v = tr.full_view();
        // e2 (write) before e1 (acquire) in the same thread.
        let sched = Schedule(vec![EventId(2)]);
        assert!(matches!(
            check_schedule(&v, &sched),
            Err(ScheduleError::NotThreadPrefix { .. })
        ));
        // duplicates rejected
        let sched = Schedule(vec![EventId(0), EventId(0)]);
        assert_eq!(
            check_schedule(&v, &sched),
            Err(ScheduleError::BadEvent(EventId(0)))
        );
    }

    #[test]
    fn schedule_join_requires_end() {
        let mut b = TraceBuilder::new();
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0
        b.branch(t2); // e1 begin, e2 branch
        b.join(t1, t2); // e3 end, e4 join
        let tr = b.finish();
        let v = tr.full_view();
        let sched = Schedule(vec![EventId(0), EventId(1), EventId(2), EventId(4)]);
        assert_eq!(
            check_schedule(&v, &sched),
            Err(ScheduleError::JoinBeforeEnd(EventId(4)))
        );
    }

    #[test]
    fn schedule_wait_notify_matching() {
        let mut b = TraceBuilder::new();
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // e0
        b.acquire(t1, l); // e1
        let tok = b.wait_begin(t1, l); // e2 release
        b.acquire(t2, l); // e3 begin(t2), e4 acquire
        let n = b.notify(t2, l); // e5
        b.release(t2, l); // e6
        b.wait_end(tok, Some(n)); // e7 acquire
        b.release(t1, l); // e8
        let tr = b.finish();
        let v = tr.full_view();
        // Original order is fine.
        let orig = Schedule(v.ids().collect());
        assert_eq!(check_schedule(&v, &orig), Ok(()));
        // Re-acquire before the notify is rejected.
        let bad = Schedule(vec![EventId(0), EventId(1), EventId(2), EventId(7)]);
        assert_eq!(
            check_schedule(&v, &bad),
            Err(ScheduleError::WaitNotifyMismatch(EventId(7)))
        );
    }
}
