//! The [`Trace`] container: an observed sequence of events plus metadata and
//! light derived indexes (paper §2.2).

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{Event, EventId, EventKind, Loc, LockId, ThreadId, Value, VarId};

/// A matched `wait()` occurrence (paper §4): the `release`/`acquire` pair the
/// wait desugars to, plus the `Notify` event that woke it in the observed
/// execution (if any; a wait may be pending at trace end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitLink {
    /// The release event emitted when the thread started waiting.
    pub release: EventId,
    /// The re-acquire event emitted when the thread woke up.
    pub acquire: EventId,
    /// The notify event matched with this wait in the original execution.
    pub notify: Option<EventId>,
}

/// A matched channel message: the `Send` that produced it and the `Recv`
/// that consumed it. Induces a must-happen-before edge send → recv,
/// analogous to a [`WaitLink`]'s notify → re-acquire edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgLink {
    /// The send event that produced the message.
    pub send: EventId,
    /// The recv event that consumed it.
    pub recv: EventId,
}

/// Serializable core data of a trace (no derived indexes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceData {
    /// The observed events, in execution order.
    pub events: Vec<Event>,
    /// Initial values of shared variables (default `0`).
    pub initial_values: BTreeMap<VarId, Value>,
    /// Variables declared volatile: conflicting accesses to them are not
    /// data races (paper §4) but act as synchronization for HB.
    pub volatiles: Vec<VarId>,
    /// Matched wait/notify occurrences.
    pub wait_links: Vec<WaitLink>,
    /// Matched channel send/recv occurrences. Serialized as an *optional*
    /// metadata field so documents written by earlier builds still load.
    pub msg_links: Vec<MsgLink>,
    /// Optional human-readable names for program locations.
    pub loc_names: BTreeMap<Loc, String>,
    /// Optional human-readable names for variables.
    pub var_names: BTreeMap<VarId, String>,
}

/// Counts of a trace's events by class; the trace-metric columns of the
/// paper's Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of distinct threads.
    pub threads: usize,
    /// Total number of events.
    pub events: usize,
    /// Number of read/write events.
    pub reads_writes: usize,
    /// Number of synchronization events (everything but accesses/branches).
    pub syncs: usize,
    /// Number of branch events.
    pub branches: usize,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#Thrd={} #Event={} #RW={} #Sync={} #Br={}",
            self.threads, self.events, self.reads_writes, self.syncs, self.branches
        )
    }
}

/// An observed, sequentially consistent execution trace.
///
/// A `Trace` owns the event sequence plus per-thread indexes. Heavyweight
/// per-window indexes (vector clocks, locksets, critical sections) live on
/// [`View`](crate::View), obtained via [`Trace::full_view`] or
/// [`Trace::windows`].
///
/// # Examples
///
/// ```
/// use rvtrace::{TraceBuilder, ThreadId};
///
/// let mut b = TraceBuilder::new();
/// let t0 = ThreadId::MAIN;
/// let x = b.var("x");
/// b.write(t0, x, 1);
/// let trace = b.finish();
/// assert_eq!(trace.stats().reads_writes, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    data: TraceData,
    // ---- derived ----
    threads: Vec<ThreadId>,
    thread_lookup: BTreeMap<ThreadId, usize>,
    thread_events: Vec<Vec<EventId>>,
    /// Position of each event within its thread's event list.
    pos_in_thread: Vec<u32>,
    n_vars: usize,
    n_locks: usize,
    n_chans: usize,
    volatile_set: Vec<bool>,
    /// For each event id of a `Notify`, the wait link index it satisfied.
    /// Dense arena indexed by event id ([`LINK_NONE`] = no link), like the
    /// other derived indexes — link lookups are hot in the view/slice
    /// paths and the dense form makes `from_data` allocation-cheap.
    notify_to_link: Vec<u32>,
    /// For each wait re-acquire event, the wait link index (dense, see
    /// [`Trace::notify_to_link`]).
    wait_acquire_to_link: Vec<u32>,
    /// For each linked `Recv` event, the msg link index (dense, see
    /// [`Trace::notify_to_link`]).
    recv_to_link: Vec<u32>,
}

/// Sentinel for "no link" in the dense per-event link arenas.
const LINK_NONE: u32 = u32::MAX;

/// Records `index` for `id` in a dense per-event arena, growing it when a
/// (possibly damaged) link points past the event range — the map-based
/// index accepted such ids, so the arena must too.
fn set_link(arena: &mut Vec<u32>, id: EventId, index: usize) {
    if id.index() >= arena.len() {
        arena.resize(id.index() + 1, LINK_NONE);
    }
    arena[id.index()] = index as u32;
}

/// Dense-arena lookup: the link index recorded for `id`, if any.
#[inline]
fn get_link(arena: &[u32], id: EventId) -> Option<usize> {
    match arena.get(id.index()).copied() {
        Some(i) if i != LINK_NONE => Some(i as usize),
        _ => None,
    }
}

impl From<TraceData> for Trace {
    fn from(data: TraceData) -> Self {
        Trace::from_data(data)
    }
}

impl From<Trace> for TraceData {
    fn from(t: Trace) -> Self {
        t.data
    }
}

impl Trace {
    /// Builds a trace from raw parts. Indexes are derived eagerly; the events
    /// are *not* checked for consistency (use
    /// [`check_consistency`](crate::consistency::check_consistency)).
    pub fn from_data(data: TraceData) -> Self {
        let mut thread_index: BTreeMap<ThreadId, usize> = BTreeMap::new();
        let mut threads = Vec::new();
        let mut thread_events: Vec<Vec<EventId>> = Vec::new();
        let mut pos_in_thread = Vec::with_capacity(data.events.len());
        let mut n_vars = 0usize;
        let mut n_locks = 0usize;
        let mut n_chans = 0usize;
        for (i, e) in data.events.iter().enumerate() {
            let ti = *thread_index.entry(e.thread).or_insert_with(|| {
                threads.push(e.thread);
                thread_events.push(Vec::new());
                threads.len() - 1
            });
            pos_in_thread.push(thread_events[ti].len() as u32);
            thread_events[ti].push(EventId(i as u32));
            if let Some(v) = e.kind.var() {
                n_vars = n_vars.max(v.index() + 1);
            }
            if let Some(l) = e.kind.lock() {
                n_locks = n_locks.max(l.index() + 1);
            }
            if let Some(c) = e.kind.chan() {
                n_chans = n_chans.max(c.index() + 1);
            }
            // Forked/joined threads count even if they produced no events.
            match e.kind {
                EventKind::Fork { child } | EventKind::Join { child } => {
                    thread_index.entry(child).or_insert_with(|| {
                        threads.push(child);
                        thread_events.push(Vec::new());
                        threads.len() - 1
                    });
                }
                _ => {}
            }
        }
        for v in &data.initial_values {
            n_vars = n_vars.max(v.0.index() + 1);
        }
        let mut volatile_set = vec![false; n_vars];
        for v in &data.volatiles {
            if v.index() >= volatile_set.len() {
                volatile_set.resize(v.index() + 1, false);
            }
            volatile_set[v.index()] = true;
        }
        let arena_len = if data.wait_links.is_empty() && data.msg_links.is_empty() {
            0 // the common case: no sync links, no arena allocation
        } else {
            data.events.len()
        };
        let mut notify_to_link = vec![LINK_NONE; arena_len];
        let mut wait_acquire_to_link = vec![LINK_NONE; arena_len];
        let mut recv_to_link = vec![LINK_NONE; arena_len];
        for (i, wl) in data.wait_links.iter().enumerate() {
            if let Some(n) = wl.notify {
                set_link(&mut notify_to_link, n, i);
            }
            set_link(&mut wait_acquire_to_link, wl.acquire, i);
        }
        for (i, ml) in data.msg_links.iter().enumerate() {
            set_link(&mut recv_to_link, ml.recv, i);
        }
        Trace {
            data,
            thread_lookup: thread_index,
            threads,
            thread_events,
            pos_in_thread,
            n_vars,
            n_locks,
            n_chans,
            volatile_set,
            notify_to_link,
            wait_acquire_to_link,
            recv_to_link,
        }
    }

    /// The events in observed execution order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.data.events
    }

    /// The event with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn event(&self, id: EventId) -> &Event {
        &self.data.events[id.index()]
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.events.len()
    }

    /// True when the trace contains no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.events.is_empty()
    }

    /// All threads observed (in order of first appearance), including
    /// forked-but-silent threads.
    #[inline]
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// Events of one thread, in program order. Empty if the thread is
    /// unknown.
    pub fn thread_events(&self, t: ThreadId) -> &[EventId] {
        match self.thread_lookup.get(&t) {
            Some(&i) => &self.thread_events[i],
            None => &[],
        }
    }

    /// Dense index of a thread within [`Trace::threads`].
    #[inline]
    pub fn thread_index(&self, t: ThreadId) -> Option<usize> {
        self.thread_lookup.get(&t).copied()
    }

    /// Number of distinct threads.
    #[inline]
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// The position of `e` within its thread's event sequence (0-based).
    #[inline]
    pub fn pos_in_thread(&self, e: EventId) -> usize {
        self.pos_in_thread[e.index()] as usize
    }

    /// Number of distinct shared variables (dense id space).
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of distinct locks (dense id space).
    #[inline]
    pub fn n_locks(&self) -> usize {
        self.n_locks
    }

    /// Number of distinct channels (dense id space).
    #[inline]
    pub fn n_chans(&self) -> usize {
        self.n_chans
    }

    /// The initial value of a variable (defaults to `0`).
    #[inline]
    pub fn initial_value(&self, v: VarId) -> Value {
        self.data
            .initial_values
            .get(&v)
            .copied()
            .unwrap_or_default()
    }

    /// Whether the variable was declared volatile.
    #[inline]
    pub fn is_volatile(&self, v: VarId) -> bool {
        self.volatile_set.get(v.index()).copied().unwrap_or(false)
    }

    /// The matched wait/notify occurrences.
    #[inline]
    pub fn wait_links(&self) -> &[WaitLink] {
        &self.data.wait_links
    }

    /// The wait link satisfied by the given `Notify` event, if any.
    pub fn wait_link_of_notify(&self, notify: EventId) -> Option<&WaitLink> {
        get_link(&self.notify_to_link, notify).map(|i| &self.data.wait_links[i])
    }

    /// The wait link whose re-acquire is the given event, if any.
    pub fn wait_link_of_acquire(&self, acquire: EventId) -> Option<&WaitLink> {
        get_link(&self.wait_acquire_to_link, acquire).map(|i| &self.data.wait_links[i])
    }

    /// The matched channel messages.
    #[inline]
    pub fn msg_links(&self) -> &[MsgLink] {
        &self.data.msg_links
    }

    /// The msg link whose recv is the given event, if any.
    pub fn msg_link_of_recv(&self, recv: EventId) -> Option<&MsgLink> {
        get_link(&self.recv_to_link, recv).map(|i| &self.data.msg_links[i])
    }

    /// Human-readable name for a program location, if registered.
    pub fn loc_name(&self, loc: Loc) -> Option<&str> {
        self.data.loc_names.get(&loc).map(String::as_str)
    }

    /// Human-readable name for a variable, if registered.
    pub fn var_name(&self, var: VarId) -> Option<&str> {
        self.data.var_names.get(&var).map(String::as_str)
    }

    /// Raw serializable data.
    #[inline]
    pub fn data(&self) -> &TraceData {
        &self.data
    }

    /// Trace metrics in the shape of the paper's Table 1 columns 3–7.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats {
            threads: self.threads.len(),
            events: self.len(),
            ..Default::default()
        };
        for e in &self.data.events {
            if e.kind.is_access() {
                s.reads_writes += 1;
            } else if e.kind.is_branch() {
                s.branches += 1;
            } else {
                s.syncs += 1;
            }
        }
        s
    }

    /// Event count per [`EventKind::name`], in name order — the event-kind
    /// histogram the `--metrics` report emits as `trace.kind.*` counters.
    pub fn kind_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for e in &self.data.events {
            *counts.entry(e.kind.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Restriction of the trace to one thread (`τ↾t`), as owned events.
    /// Mostly useful in tests; prefer [`Trace::thread_events`].
    pub fn projection(&self, t: ThreadId) -> Vec<Event> {
        self.thread_events(t)
            .iter()
            .map(|&id| *self.event(id))
            .collect()
    }

    /// Returns `LockId`s of locks appearing in the trace.
    pub fn locks(&self) -> Vec<LockId> {
        (0..self.n_locks as u32).map(LockId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn ev(t: u32, kind: EventKind) -> Event {
        Event::new(ThreadId(t), kind, Loc(0))
    }

    fn sample() -> Trace {
        let events = vec![
            ev(0, EventKind::Fork { child: ThreadId(1) }),
            ev(
                0,
                EventKind::Write {
                    var: VarId(0),
                    value: Value(1),
                },
            ),
            ev(1, EventKind::Begin),
            ev(
                1,
                EventKind::Read {
                    var: VarId(0),
                    value: Value(1),
                },
            ),
            ev(1, EventKind::Branch),
            ev(1, EventKind::End),
            ev(0, EventKind::Join { child: ThreadId(1) }),
        ];
        Trace::from_data(TraceData {
            events,
            ..Default::default()
        })
    }

    #[test]
    fn indexes_and_stats() {
        let t = sample();
        assert_eq!(t.len(), 7);
        assert_eq!(t.threads(), &[ThreadId(0), ThreadId(1)]);
        assert_eq!(t.thread_events(ThreadId(0)).len(), 3);
        assert_eq!(t.thread_events(ThreadId(1)).len(), 4);
        assert_eq!(t.pos_in_thread(EventId(6)), 2);
        let s = t.stats();
        assert_eq!(s.threads, 2);
        assert_eq!(s.reads_writes, 2);
        assert_eq!(s.branches, 1);
        assert_eq!(s.syncs, 4);
        assert_eq!(format!("{s}"), "#Thrd=2 #Event=7 #RW=2 #Sync=4 #Br=1");
    }

    #[test]
    fn forked_but_silent_thread_is_known() {
        let events = vec![ev(0, EventKind::Fork { child: ThreadId(7) })];
        let t = Trace::from_data(TraceData {
            events,
            ..Default::default()
        });
        assert_eq!(t.threads(), &[ThreadId(0), ThreadId(7)]);
        assert!(t.thread_events(ThreadId(7)).is_empty());
    }

    #[test]
    fn initial_values_and_volatiles() {
        let mut data = TraceData::default();
        data.initial_values.insert(VarId(3), Value(9));
        data.volatiles.push(VarId(2));
        let t = Trace::from_data(data);
        assert_eq!(t.initial_value(VarId(3)), Value(9));
        assert_eq!(t.initial_value(VarId(0)), Value(0));
        assert!(t.is_volatile(VarId(2)));
        assert!(!t.is_volatile(VarId(3)));
        assert_eq!(t.n_vars(), 4);
    }

    #[test]
    fn projection_matches_thread_events() {
        let t = sample();
        let p = t.projection(ThreadId(1));
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].kind, EventKind::Begin);
        assert_eq!(p[3].kind, EventKind::End);
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let s = crate::json::to_json(&t);
        let t2 = crate::json::from_json(&s).unwrap();
        assert_eq!(t2.len(), t.len());
        assert_eq!(t2.stats(), t.stats());
    }

    #[test]
    fn wait_links_indexed() {
        let events = vec![
            ev(0, EventKind::Acquire { lock: LockId(0) }),
            ev(0, EventKind::Release { lock: LockId(0) }), // wait-release
            ev(1, EventKind::Notify { lock: LockId(0) }),
            ev(0, EventKind::Acquire { lock: LockId(0) }), // wait-reacquire
        ];
        let mut data = TraceData {
            events,
            ..Default::default()
        };
        data.wait_links.push(WaitLink {
            release: EventId(1),
            acquire: EventId(3),
            notify: Some(EventId(2)),
        });
        let t = Trace::from_data(data);
        assert_eq!(
            t.wait_link_of_notify(EventId(2)).unwrap().acquire,
            EventId(3)
        );
        assert_eq!(
            t.wait_link_of_acquire(EventId(3)).unwrap().notify,
            Some(EventId(2))
        );
        assert!(t.wait_link_of_notify(EventId(0)).is_none());
    }

    #[test]
    fn msg_links_indexed() {
        use crate::event::ChanId;
        let events = vec![
            ev(0, EventKind::Send { chan: ChanId(1) }),
            ev(1, EventKind::Recv { chan: ChanId(1) }),
        ];
        let mut data = TraceData {
            events,
            ..Default::default()
        };
        data.msg_links.push(MsgLink {
            send: EventId(0),
            recv: EventId(1),
        });
        let t = Trace::from_data(data);
        assert_eq!(t.n_chans(), 2);
        assert_eq!(t.msg_links().len(), 1);
        assert_eq!(t.msg_link_of_recv(EventId(1)).unwrap().send, EventId(0));
        assert!(t.msg_link_of_recv(EventId(0)).is_none());
    }
}
