//! Vector clocks over dense thread indexes, used to answer
//! must-happen-before (and, in the baselines, happens-before) queries.

use std::fmt;

/// A vector clock: one logical counter per thread (dense thread index).
///
/// Entry `i` counts how many events of thread `i` are known to precede (or
/// equal) the clock's owner in the relevant partial order.
///
/// # Examples
///
/// ```
/// use rvtrace::VectorClock;
///
/// let mut a = VectorClock::new(3);
/// a.tick(0);
/// let mut b = VectorClock::new(3);
/// b.tick(1);
/// b.join(&a);
/// assert_eq!(b.get(0), 1);
/// assert_eq!(b.get(1), 1);
/// assert!(a.le(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// A clock of `n` threads, all zero.
    pub fn new(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Number of threads the clock tracks.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when tracking zero threads.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counter for thread index `i` (0 if out of range).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.entries.get(i).copied().unwrap_or(0)
    }

    /// Sets the counter for thread index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, v: u32) {
        self.entries[i] = v;
    }

    /// Increments the counter for thread index `i` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn tick(&mut self, i: usize) -> u32 {
        self.entries[i] += 1;
        self.entries[i]
    }

    /// Pointwise maximum with `other` (the clock join).
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.entries.len(), other.entries.len());
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise `≤` (the partial order on clocks).
    pub fn le(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.entries.len(), other.entries.len());
        self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b)
    }

    /// Raw entries.
    #[inline]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new(3);
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VectorClock::new(3);
        b.set(1, 2);
        b.set(2, 4);
        a.join(&b);
        assert_eq!(a.entries(), &[5, 2, 4]);
    }

    #[test]
    fn le_partial_order() {
        let mut a = VectorClock::new(2);
        a.set(0, 1);
        let mut b = VectorClock::new(2);
        b.set(1, 1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut c = a.clone();
        c.join(&b);
        assert!(a.le(&c) && b.le(&c));
    }

    #[test]
    fn tick_and_get() {
        let mut a = VectorClock::new(2);
        assert_eq!(a.tick(1), 1);
        assert_eq!(a.tick(1), 2);
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(7), 0); // out of range reads as 0
        assert_eq!(format!("{a}"), "⟨0,2⟩");
    }
}
