//! Race signatures: static program-location pairs.
//!
//! Once a COP is reported as a race, all other COPs from the same pair of
//! program locations are pruned with no further analysis (paper §4). The
//! signature is also the unit in which race counts are reported in Table 1.

use std::fmt;

use crate::event::{Cop, Loc};
use crate::trace::Trace;

/// An unordered pair of program locations identifying a potential race
/// statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaceSignature {
    /// The smaller location of the pair.
    pub a: Loc,
    /// The larger location of the pair.
    pub b: Loc,
}

impl RaceSignature {
    /// Creates a signature, normalizing the pair order.
    pub fn new(a: Loc, b: Loc) -> Self {
        if a <= b {
            RaceSignature { a, b }
        } else {
            RaceSignature { a: b, b: a }
        }
    }

    /// The signature of a COP within a trace.
    pub fn of_cop(trace: &Trace, cop: Cop) -> Self {
        RaceSignature::new(trace.event(cop.first).loc, trace.event(cop.second).loc)
    }

    /// A displayable form resolving location names through the trace.
    pub fn display<'a>(&'a self, trace: &'a Trace) -> SignatureDisplay<'a> {
        SignatureDisplay { sig: self, trace }
    }
}

impl fmt::Display for RaceSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.a, self.b)
    }
}

/// Displays a [`RaceSignature`] with human-readable location names.
#[derive(Debug)]
pub struct SignatureDisplay<'a> {
    sig: &'a RaceSignature,
    trace: &'a Trace,
}

impl fmt::Display for SignatureDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |l: Loc| {
            self.trace
                .loc_name(l)
                .map(str::to_owned)
                .unwrap_or_else(|| l.to_string())
        };
        write!(f, "⟨{}, {}⟩", name(self.sig.a), name(self.sig.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::{EventId, ThreadId};

    #[test]
    fn normalizes_pair_order() {
        let s1 = RaceSignature::new(Loc(5), Loc(2));
        let s2 = RaceSignature::new(Loc(2), Loc(5));
        assert_eq!(s1, s2);
        assert_eq!(format!("{s1}"), "⟨L2, L5⟩");
    }

    #[test]
    fn of_cop_and_named_display() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l1 = b.loc("Main.java:3");
        let l2 = b.loc("Main.java:10");
        let w = b.write_at(ThreadId::MAIN, x, 1, l1);
        let t2 = b.fork(ThreadId::MAIN);
        let r = b.read_at(t2, x, 1, l2);
        let tr = b.finish();
        let sig = RaceSignature::of_cop(&tr, Cop::new(w, r));
        assert_eq!(sig, RaceSignature::new(l1, l2));
        assert_eq!(
            format!("{}", sig.display(&tr)),
            "⟨Main.java:3, Main.java:10⟩"
        );
        // EventIds still usable to look the events back up.
        assert_eq!(tr.event(EventId(w.0)).loc, l1);
    }
}
