//! Error types for trace construction and validation.

use std::fmt;

use crate::event::{EventId, LockId, ThreadId, VarId};

/// An error raised while building or validating a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A thread produced an event before its `Begin` event.
    EventBeforeBegin {
        /// The offending thread.
        thread: ThreadId,
        /// The offending event.
        event: EventId,
    },
    /// A thread produced an event after its `End` event.
    EventAfterEnd {
        /// The offending thread.
        thread: ThreadId,
        /// The offending event.
        event: EventId,
    },
    /// A `Begin` event for a thread that was never forked.
    BeginWithoutFork {
        /// The offending thread.
        thread: ThreadId,
        /// The offending event.
        event: EventId,
    },
    /// A thread was forked more than once.
    DoubleFork {
        /// The twice-forked thread.
        thread: ThreadId,
        /// The second fork event.
        event: EventId,
    },
    /// A `Join` for a thread whose `End` has not occurred yet.
    JoinBeforeEnd {
        /// The joined thread.
        thread: ThreadId,
        /// The join event.
        event: EventId,
    },
    /// A release of a lock the thread does not hold.
    ReleaseWithoutAcquire {
        /// The releasing thread.
        thread: ThreadId,
        /// The released lock.
        lock: LockId,
        /// The release event.
        event: EventId,
    },
    /// An acquire of a lock currently held by another thread.
    AcquireHeldLock {
        /// The acquiring thread.
        thread: ThreadId,
        /// The contended lock.
        lock: LockId,
        /// The acquire event.
        event: EventId,
    },
    /// A read observed a value different from the most recent write
    /// (violation of read consistency, paper §2.2).
    InconsistentRead {
        /// The offending read.
        read: EventId,
        /// The variable read.
        var: VarId,
        /// What the read should have returned.
        expected: crate::event::Value,
        /// What the read claims to have returned.
        actual: crate::event::Value,
    },
    /// The builder was asked to emit an event for an unknown thread.
    UnknownThread {
        /// The unknown thread.
        thread: ThreadId,
    },
}

impl TraceError {
    /// A stable kebab-case name for the error's category, used as the key
    /// of per-category drop diagnostics in lenient (salvage) ingestion.
    pub fn category(&self) -> &'static str {
        match self {
            TraceError::EventBeforeBegin { .. } => "event-before-begin",
            TraceError::EventAfterEnd { .. } => "event-after-end",
            TraceError::BeginWithoutFork { .. } => "begin-without-fork",
            TraceError::DoubleFork { .. } => "double-fork",
            TraceError::JoinBeforeEnd { .. } => "join-before-end",
            TraceError::ReleaseWithoutAcquire { .. } => "release-without-acquire",
            TraceError::AcquireHeldLock { .. } => "acquire-held-lock",
            TraceError::InconsistentRead { .. } => "inconsistent-read",
            TraceError::UnknownThread { .. } => "unknown-thread",
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::EventBeforeBegin { thread, event } => {
                write!(f, "{event}: thread {thread} acted before its begin event")
            }
            TraceError::EventAfterEnd { thread, event } => {
                write!(f, "{event}: thread {thread} acted after its end event")
            }
            TraceError::BeginWithoutFork { thread, event } => {
                write!(f, "{event}: thread {thread} began but was never forked")
            }
            TraceError::DoubleFork { thread, event } => {
                write!(f, "{event}: thread {thread} forked twice")
            }
            TraceError::JoinBeforeEnd { thread, event } => {
                write!(f, "{event}: join on thread {thread} before it ended")
            }
            TraceError::ReleaseWithoutAcquire {
                thread,
                lock,
                event,
            } => {
                write!(
                    f,
                    "{event}: thread {thread} released {lock} without holding it"
                )
            }
            TraceError::AcquireHeldLock {
                thread,
                lock,
                event,
            } => {
                write!(
                    f,
                    "{event}: thread {thread} acquired {lock} while another thread holds it"
                )
            }
            TraceError::InconsistentRead {
                read,
                var,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "{read}: read of {var} returned {actual} but last write was {expected}"
                )
            }
            TraceError::UnknownThread { thread } => {
                write!(f, "unknown thread {thread}")
            }
        }
    }
}

impl std::error::Error for TraceError {}
