//! # rvtrace — execution traces with control-flow abstraction
//!
//! The trace model of *Maximal Sound Predictive Race Detection with Control
//! Flow Abstraction* (Huang, Meredith, Roşu — PLDI 2014), §2: events over
//! concurrent objects (shared locations, locks, threads) **plus the novel
//! `branch` event**, which abstracts thread-local control flow and is the
//! key to the paper's maximal causal model.
//!
//! This crate provides:
//!
//! * the event and trace types ([`Event`], [`Trace`], [`TraceBuilder`]);
//! * the sequential-consistency axioms checker
//!   ([`check_consistency`]): read consistency, lock mutual exclusion,
//!   must-happen-before;
//! * windowed [`View`]s with the per-window indexes race detectors need
//!   (MHB vector clocks, locksets, critical sections, access indexes);
//! * witness [`Schedule`] validation ([`check_schedule`]), used to certify
//!   that every reported race is real (paper Thm. 1/3).
//!
//! # Examples
//!
//! Build the paper's Figure 2 (case ①) trace and inspect it:
//!
//! ```
//! use rvtrace::{check_consistency, ThreadId, TraceBuilder, ViewExt};
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! let y = b.volatile_var("y");
//! let t1 = ThreadId::MAIN;
//! let t2 = b.fork(t1);
//! let e1 = b.write(t1, x, 1); // 1. x = 1
//! b.write(t1, y, 1);          // 2. y = 1
//! b.read(t2, y, 1);           // 3. r1 = y
//! let e4 = b.read(t2, x, 1);  // 4. r2 = x
//! let trace = b.finish();
//!
//! assert!(check_consistency(&trace).is_empty());
//! let view = trace.full_view();
//! // (1,4) is a conflicting pair not ordered by must-happen-before:
//! assert!(!view.mhb(e1, e4) && !view.mhb(e4, e1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
pub mod consistency;
mod error;
mod event;
pub mod frame;
pub mod json;
pub mod salvage;
mod signature;
pub mod stream;
mod trace;
mod vector_clock;
mod view;

pub use builder::{TraceBuilder, WaitToken};
pub use consistency::{
    check_consistency, check_schedule, schedule_read_values, Schedule, ScheduleError,
};
pub use error::TraceError;
pub use event::{ChanId, Cop, Event, EventId, EventKind, Loc, LockId, ThreadId, Value, VarId};
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use json::{
    escape_json, from_json, from_json_data, from_json_data_with_stats, from_json_with_stats,
    parse_json, to_json, to_ndjson, validate_wait_links, IngestStats, JsonError, JsonValue,
};
pub use salvage::{salvage_trace, SalvageReport};
pub use signature::{RaceSignature, SignatureDisplay};
pub use stream::{read_trace, read_trace_data, StreamFormat, StreamParser};
pub use trace::{MsgLink, Trace, TraceData, TraceStats, WaitLink};
pub use vector_clock::VectorClock;
pub use view::{
    BoundarySpill, BoundaryTracker, CsSpan, StraddlePlan, View, ViewExt, WindowBoundary,
    WindowStream,
};
