//! Lenient trace ingestion: salvage what is usable from a damaged trace.
//!
//! Strict ingestion rejects a trace with any consistency violation (see
//! [`check_consistency`](crate::consistency::check_consistency)). Real
//! logger output is often imperfect — truncated files lose `end`/`join`
//! events, torn writes corrupt read values, interleaved buffers drop
//! acquires — and rejecting the whole trace throws away every window that
//! was fine. [`salvage_trace`] instead replays the same consistency state
//! machine event by event and **drops** each event that would violate an
//! axiom, *without applying its state effects*, so one bad event cannot
//! cascade into rejecting its neighbours. The result is a consistent trace
//! by construction, plus a [`SalvageReport`] saying exactly what was
//! dropped and why (per [`TraceError::category`](crate::TraceError::category) name).
//!
//! Dropping events costs completeness, never soundness: detection runs on
//! a sub-trace of what was observed, so every reported race still has a
//! valid witness in the salvaged trace.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::event::{EventId, EventKind, LockId, ThreadId, Value, VarId};
use crate::trace::{MsgLink, Trace, TraceData, WaitLink};

/// What lenient ingestion dropped, and why.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Events in the damaged input.
    pub total: usize,
    /// Events kept in the salvaged trace.
    pub kept: usize,
    /// Dropped events per [`TraceError::category`](crate::TraceError::category) name.
    pub dropped: BTreeMap<&'static str, usize>,
    /// Wait links discarded because an endpoint was dropped or out of
    /// range ("dangling-wait-link" in diagnostics).
    pub dangling_wait_links: usize,
    /// Message links discarded because an endpoint was dropped, out of
    /// range, or reversed ("dangling-msg-link" in diagnostics).
    pub dangling_msg_links: usize,
    /// Wall-clock time spent salvaging (not rendered by `Display`; it
    /// feeds the `--metrics` timing section).
    pub elapsed: std::time::Duration,
}

impl SalvageReport {
    /// Total events dropped (sums the per-category counts).
    pub fn n_dropped(&self) -> usize {
        self.dropped.values().sum()
    }

    /// True when nothing was dropped — the input was already consistent.
    pub fn is_clean(&self) -> bool {
        self.dropped.is_empty() && self.dangling_wait_links == 0 && self.dangling_msg_links == 0
    }
}

impl fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "salvage: kept {}/{} events", self.kept, self.total)?;
        if !self.dropped.is_empty() {
            write!(f, "; dropped:")?;
            for (category, n) in &self.dropped {
                write!(f, " {category}={n}")?;
            }
        }
        if self.dangling_wait_links > 0 {
            write!(f, "; dangling-wait-link={}", self.dangling_wait_links)?;
        }
        if self.dangling_msg_links > 0 {
            write!(f, "; dangling-msg-link={}", self.dangling_msg_links)?;
        }
        Ok(())
    }
}

/// Per-thread salvage state, mirroring the consistency checker's.
#[derive(Default, Clone)]
struct Ts {
    forked: bool,
    begun: bool,
    ended: bool,
    seen_events: bool,
}

/// Salvages a consistent trace from damaged raw data.
///
/// Replays [`check_consistency`](crate::consistency::check_consistency)'s
/// state machine over the events in order; an event that would be flagged
/// is dropped (its state effects are not applied) and counted under its
/// error category. Kept events are renumbered densely; wait links are
/// remapped to the new ids, and links whose release/acquire endpoint was
/// dropped (or referenced a nonexistent event) are discarded as dangling.
/// Metadata (initial values, volatiles, names) passes through unchanged.
///
/// # Examples
///
/// ```
/// use rvtrace::{salvage_trace, Event, EventKind, Loc, ThreadId, TraceData, Value, VarId};
///
/// let data = TraceData {
///     events: vec![
///         Event::new(ThreadId::MAIN, EventKind::Write { var: VarId(0), value: Value(1) }, Loc(0)),
///         // Corrupt: claims to have read 9, but the last write was 1.
///         Event::new(ThreadId::MAIN, EventKind::Read { var: VarId(0), value: Value(9) }, Loc(1)),
///         Event::new(ThreadId::MAIN, EventKind::Read { var: VarId(0), value: Value(1) }, Loc(2)),
///     ],
///     ..Default::default()
/// };
/// let (trace, report) = salvage_trace(data);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(report.dropped["inconsistent-read"], 1);
/// ```
pub fn salvage_trace(data: TraceData) -> (Trace, SalvageReport) {
    let salvage_start = std::time::Instant::now();
    let TraceData {
        events,
        initial_values,
        volatiles,
        wait_links,
        msg_links,
        loc_names,
        var_names,
    } = data;

    let mut report = SalvageReport {
        total: events.len(),
        ..Default::default()
    };
    let mut kept = Vec::with_capacity(events.len());
    // Old event id -> new event id, for wait-link remapping.
    let mut remap: HashMap<EventId, EventId> = HashMap::new();
    let mut values: HashMap<VarId, Value> = HashMap::new();
    let mut lock_holder: HashMap<LockId, ThreadId> = HashMap::new();
    let mut read_holders: HashMap<LockId, Vec<ThreadId>> = HashMap::new();
    let mut ts: HashMap<ThreadId, Ts> = HashMap::new();

    for (i, e) in events.into_iter().enumerate() {
        let id = EventId(i as u32);
        // First violated axiom wins the category; the event is dropped
        // either way, so later axioms need not be consulted.
        let violation = {
            let st = ts.entry(e.thread).or_default();
            if st.ended {
                Some("event-after-end")
            } else {
                match e.kind {
                    EventKind::Begin if st.seen_events => Some("event-before-begin"),
                    EventKind::Begin if !st.forked => Some("begin-without-fork"),
                    EventKind::Begin | EventKind::End => None,
                    _ if st.forked && !st.begun => Some("event-before-begin"),
                    EventKind::Read { var, value } => {
                        let expected = values.get(&var).copied().unwrap_or_else(|| {
                            initial_values.get(&var).copied().unwrap_or_default()
                        });
                        (value != expected).then_some("inconsistent-read")
                    }
                    EventKind::Acquire { lock } => (lock_holder.contains_key(&lock)
                        || !read_holders.get(&lock).map_or(true, Vec::is_empty))
                    .then_some("acquire-held-lock"),
                    EventKind::Release { lock } => (lock_holder.get(&lock) != Some(&e.thread))
                        .then_some("release-without-acquire"),
                    EventKind::AcquireRead { lock } => (lock_holder.contains_key(&lock)
                        || read_holders
                            .get(&lock)
                            .is_some_and(|r| r.contains(&e.thread)))
                    .then_some("acquire-held-lock"),
                    EventKind::ReleaseRead { lock } => (!read_holders
                        .get(&lock)
                        .is_some_and(|r| r.contains(&e.thread)))
                    .then_some("release-without-acquire"),
                    EventKind::Fork { child } => ts
                        .get(&child)
                        .is_some_and(|c| c.forked)
                        .then_some("double-fork"),
                    EventKind::Join { child } => {
                        (!ts.get(&child).is_some_and(|c| c.ended)).then_some("join-before-end")
                    }
                    EventKind::Write { .. }
                    | EventKind::Branch
                    | EventKind::Notify { .. }
                    | EventKind::Send { .. }
                    | EventKind::Recv { .. } => None,
                }
            }
        };
        if let Some(category) = violation {
            *report.dropped.entry(category).or_insert(0) += 1;
            continue;
        }
        // Keep the event and apply its state effects.
        let st = ts.entry(e.thread).or_default();
        st.seen_events = true;
        match e.kind {
            EventKind::Begin => st.begun = true,
            EventKind::End => st.ended = true,
            EventKind::Write { var, value } => {
                values.insert(var, value);
            }
            EventKind::Acquire { lock } => {
                lock_holder.insert(lock, e.thread);
            }
            EventKind::Release { lock } => {
                lock_holder.remove(&lock);
            }
            EventKind::AcquireRead { lock } => {
                read_holders.entry(lock).or_default().push(e.thread);
            }
            EventKind::ReleaseRead { lock } => {
                let readers = read_holders.entry(lock).or_default();
                if let Some(p) = readers.iter().position(|&t| t == e.thread) {
                    readers.swap_remove(p);
                }
            }
            EventKind::Fork { child } => {
                ts.entry(child).or_default().forked = true;
            }
            _ => {}
        }
        remap.insert(id, EventId(kept.len() as u32));
        kept.push(e);
    }
    report.kept = kept.len();

    // Remap wait links; a link whose release or acquire endpoint did not
    // survive (dropped, or never existed) is dangling and discarded. A
    // dropped notify only loses the link's notify annotation.
    let wait_links: Vec<WaitLink> = wait_links
        .into_iter()
        .filter_map(
            |wl| match (remap.get(&wl.release), remap.get(&wl.acquire)) {
                (Some(&release), Some(&acquire)) => Some(WaitLink {
                    release,
                    acquire,
                    notify: wl.notify.and_then(|n| remap.get(&n).copied()),
                }),
                _ => {
                    report.dangling_wait_links += 1;
                    None
                }
            },
        )
        .collect();

    // Remap message links; a link with a dropped or out-of-range endpoint
    // — or one whose send does not precede its recv — is discarded.
    let msg_links: Vec<MsgLink> = msg_links
        .into_iter()
        .filter_map(|ml| match (remap.get(&ml.send), remap.get(&ml.recv)) {
            (Some(&send), Some(&recv)) if send < recv => Some(MsgLink { send, recv }),
            _ => {
                report.dangling_msg_links += 1;
                None
            }
        })
        .collect();

    let trace = Trace::from_data(TraceData {
        events: kept,
        initial_values,
        volatiles,
        wait_links,
        msg_links,
        loc_names,
        var_names,
    });
    report.elapsed = salvage_start.elapsed();
    (trace, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency;
    use crate::event::{Event, Loc};

    fn ev(t: u32, kind: EventKind) -> Event {
        Event::new(ThreadId(t), kind, Loc(0))
    }

    #[test]
    fn clean_trace_passes_through() {
        let data = TraceData {
            events: vec![
                ev(0, EventKind::Fork { child: ThreadId(1) }),
                ev(
                    0,
                    EventKind::Write {
                        var: VarId(0),
                        value: Value(1),
                    },
                ),
                ev(1, EventKind::Begin),
                ev(
                    1,
                    EventKind::Read {
                        var: VarId(0),
                        value: Value(1),
                    },
                ),
            ],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert_eq!(trace.len(), 4);
        assert!(report.is_clean());
        assert_eq!(report.n_dropped(), 0);
        assert_eq!(format!("{report}"), "salvage: kept 4/4 events");
    }

    #[test]
    fn unbalanced_locks_dropped() {
        let data = TraceData {
            events: vec![
                ev(0, EventKind::Release { lock: LockId(0) }), // never acquired
                ev(0, EventKind::Acquire { lock: LockId(0) }),
                ev(1, EventKind::Acquire { lock: LockId(0) }), // held by t0
                ev(0, EventKind::Release { lock: LockId(0) }),
            ],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert_eq!(trace.len(), 2);
        assert_eq!(report.dropped["release-without-acquire"], 1);
        assert_eq!(report.dropped["acquire-held-lock"], 1);
        assert!(check_consistency(&trace).is_empty());
    }

    #[test]
    fn inconsistent_reads_dropped_without_cascading() {
        let data = TraceData {
            events: vec![
                ev(
                    0,
                    EventKind::Write {
                        var: VarId(0),
                        value: Value(1),
                    },
                ),
                ev(
                    0,
                    EventKind::Read {
                        var: VarId(0),
                        value: Value(9), // torn
                    },
                ),
                ev(
                    0,
                    EventKind::Read {
                        var: VarId(0),
                        value: Value(1), // fine: last kept write is 1
                    },
                ),
            ],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert_eq!(trace.len(), 2);
        assert_eq!(report.dropped["inconsistent-read"], 1);
        assert!(check_consistency(&trace).is_empty());
    }

    #[test]
    fn truncated_thread_drops_orphan_join() {
        // The child's End was lost to truncation: the join is dropped, the
        // rest survives.
        let data = TraceData {
            events: vec![
                ev(0, EventKind::Fork { child: ThreadId(1) }),
                ev(1, EventKind::Begin),
                ev(1, EventKind::Branch),
                ev(0, EventKind::Join { child: ThreadId(1) }),
            ],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert_eq!(trace.len(), 3);
        assert_eq!(report.dropped["join-before-end"], 1);
        assert!(check_consistency(&trace).is_empty());
    }

    #[test]
    fn event_ids_renumbered_and_wait_links_remapped() {
        let data = TraceData {
            events: vec![
                ev(0, EventKind::Release { lock: LockId(1) }), // dropped
                ev(0, EventKind::Acquire { lock: LockId(0) }),
                ev(0, EventKind::Release { lock: LockId(0) }), // wait-release
                ev(1, EventKind::Notify { lock: LockId(0) }),
                ev(0, EventKind::Acquire { lock: LockId(0) }), // wait-reacquire
            ],
            wait_links: vec![WaitLink {
                release: EventId(2),
                acquire: EventId(4),
                notify: Some(EventId(3)),
            }],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert_eq!(trace.len(), 4);
        assert_eq!(report.dropped["release-without-acquire"], 1);
        let wl = trace.wait_links()[0];
        assert_eq!(
            (wl.release, wl.acquire, wl.notify),
            (EventId(1), EventId(3), Some(EventId(2)),)
        );
    }

    #[test]
    fn dangling_wait_links_discarded() {
        let data = TraceData {
            events: vec![ev(0, EventKind::Branch)],
            wait_links: vec![WaitLink {
                release: EventId(10), // out of range
                acquire: EventId(11),
                notify: None,
            }],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert!(trace.wait_links().is_empty());
        assert_eq!(report.dangling_wait_links, 1);
        assert!(!report.is_clean());
        assert!(format!("{report}").contains("dangling-wait-link=1"));
    }

    #[test]
    fn rwlock_violations_dropped() {
        let data = TraceData {
            events: vec![
                ev(0, EventKind::AcquireRead { lock: LockId(0) }),
                ev(1, EventKind::Acquire { lock: LockId(0) }), // read-held
                ev(1, EventKind::AcquireRead { lock: LockId(1) }),
                ev(2, EventKind::AcquireRead { lock: LockId(1) }), // ok: shared
                ev(0, EventKind::ReleaseRead { lock: LockId(1) }), // not a holder
                ev(1, EventKind::ReleaseRead { lock: LockId(1) }),
            ],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert_eq!(trace.len(), 4);
        assert_eq!(report.dropped["acquire-held-lock"], 1);
        assert_eq!(report.dropped["release-without-acquire"], 1);
        assert!(check_consistency(&trace).is_empty());
    }

    #[test]
    fn dangling_msg_links_discarded() {
        let data = TraceData {
            events: vec![
                ev(0, EventKind::Release { lock: LockId(0) }), // dropped
                ev(
                    0,
                    EventKind::Send {
                        chan: crate::ChanId(0),
                    },
                ),
                ev(
                    1,
                    EventKind::Recv {
                        chan: crate::ChanId(0),
                    },
                ),
            ],
            msg_links: vec![
                MsgLink {
                    send: EventId(0), // endpoint dropped
                    recv: EventId(2),
                },
                MsgLink {
                    send: EventId(1),
                    recv: EventId(2),
                },
            ],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert_eq!(report.dangling_msg_links, 1);
        assert_eq!(trace.msg_links().len(), 1);
        assert_eq!(trace.msg_links()[0].send, EventId(0)); // renumbered
        assert!(format!("{report}").contains("dangling-msg-link=1"));
    }

    #[test]
    fn salvaged_trace_is_always_consistent() {
        // The postcondition that matters: whatever garbage goes in, the
        // salvaged trace satisfies every consistency axiom.
        let data = TraceData {
            events: vec![
                ev(1, EventKind::Branch), // unforked, un-begun thread
                ev(0, EventKind::Fork { child: ThreadId(1) }),
                ev(0, EventKind::Fork { child: ThreadId(1) }), // double fork
                ev(1, EventKind::Begin),
                ev(1, EventKind::End),
                ev(1, EventKind::Branch), // after end
                ev(
                    0,
                    EventKind::Read {
                        var: VarId(0),
                        value: Value(5),
                    },
                ), // initial is 0
                ev(0, EventKind::Join { child: ThreadId(1) }),
            ],
            ..Default::default()
        };
        let (trace, report) = salvage_trace(data);
        assert!(check_consistency(&trace).is_empty(), "{report}");
        assert_eq!(report.kept + report.n_dropped(), report.total);
        assert!(report.dropped.contains_key("double-fork"));
        assert!(report.dropped.contains_key("event-after-end"));
        assert!(report.dropped.contains_key("inconsistent-read"));
    }
}
