//! Predictive atomicity-violation detection on the maximal causal model.
//!
//! Paper §2.5: "In this paper we only focus on races, but the same maximal
//! causal model approach can be used to define other notions" — atomicity
//! being the example named. This module implements the classic
//! single-variable *unserializable interleaving* check (lost updates and
//! friends): given an intended-atomic pair of same-thread accesses
//! `(a₁, a₂)` to a variable and a remote conflicting access `b`, decide
//! whether some feasible reordering serializes `b` strictly *between* them
//! — `Φ_mhb ∧ Φ_lock ∧ O_{a₁} < O_b < O_{a₂} ∧ π_cf(a₁) ∧ π_cf(a₂) ∧ π_cf(b)`.
//!
//! Intended-atomic pairs are inferred as unprotected read-modify-write
//! pairs (a read directly followed by a write of the same variable by the
//! same thread — the shape emitted by `fetch_add`-style updates), or can be
//! supplied explicitly. Soundness carries over from Theorem 1: a satisfying
//! model yields a consistent witness reordering, validated before reporting.

use std::collections::HashSet;

use rvsmt::{Budget, SmtResult, Solver, TermId};
use rvtrace::{EventId, RaceSignature, Schedule, Trace, View, ViewExt};

use crate::config::DetectorConfig;
use crate::encoder::{encode_between, EncoderOptions};
use crate::witness::build_witness_core;

/// An intended-atomic pair of same-thread accesses to one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicPair {
    /// The first access of the block.
    pub first: EventId,
    /// The second access of the block (same thread, same variable).
    pub second: EventId,
}

/// A predicted atomicity violation: `interleaved` can be serialized between
/// the pair's accesses.
#[derive(Debug, Clone)]
pub struct AtomicityViolation {
    /// The broken atomic pair.
    pub pair: AtomicPair,
    /// The remote access serialized in between.
    pub interleaved: EventId,
    /// Static signature (pair location × remote location).
    pub signature: RaceSignature,
    /// A validated witness: a consistent reordering with the remote access
    /// between the pair.
    pub schedule: Schedule,
}

/// Report of an atomicity analysis run.
#[derive(Debug, Default)]
pub struct AtomicityReport {
    /// Validated violations (one per signature).
    pub violations: Vec<AtomicityViolation>,
    /// Candidate (pair, remote) triples examined.
    pub candidates: usize,
    /// Solver SAT/UNSAT/unknown counters.
    pub sat: usize,
    /// Solver SAT/UNSAT/unknown counters.
    pub unsat: usize,
    /// Solver SAT/UNSAT/unknown counters.
    pub unknown: usize,
}

/// Infers intended-atomic pairs: a read immediately followed (in program
/// order) by a write to the same variable by the same thread, not both
/// under a common lock with… any lock at all — lock-protected RMWs are
/// atomic by construction and skipped.
pub fn infer_rmw_pairs(view: &View<'_>) -> Vec<AtomicPair> {
    let trace = view.trace();
    let mut out = Vec::new();
    for &t in trace.threads() {
        let evs = view.thread_events(t);
        for (i, &r) in evs.iter().enumerate() {
            if !view.event(r).kind.is_read() {
                continue;
            }
            // Skip intervening branch events (part of the RMW idiom, e.g.
            // a guard over the read value before the store).
            let mut j = i + 1;
            while j < evs.len() && view.event(evs[j]).kind.is_branch() {
                j += 1;
            }
            let Some(&wr) = evs.get(j) else { continue };
            let (rk, wk) = (view.event(r).kind, view.event(wr).kind);
            if wk.is_write() && rk.var() == wk.var() {
                // Lock-protected blocks are already atomic w.r.t. same-lock
                // remotes; keep only fully unprotected pairs (the classic
                // lost-update shape).
                if view.lockset(r).is_empty() && view.lockset(wr).is_empty() {
                    out.push(AtomicPair {
                        first: r,
                        second: wr,
                    });
                }
            }
        }
    }
    out
}

/// The predictive atomicity checker (windowed, like the race detector).
#[derive(Debug, Default)]
pub struct AtomicityDetector {
    /// Shared configuration (window size, budgets, mode).
    pub config: DetectorConfig,
}

impl AtomicityDetector {
    /// Runs the analysis over the whole trace with inferred RMW pairs.
    pub fn detect(&self, trace: &Trace) -> AtomicityReport {
        let mut report = AtomicityReport::default();
        for view in trace.windows(self.config.window_size) {
            let pairs = infer_rmw_pairs(&view);
            self.detect_in_view(&view, &pairs, &mut report);
        }
        report
    }

    /// Runs the analysis over one window with explicit pairs.
    pub fn detect_in_view(
        &self,
        view: &View<'_>,
        pairs: &[AtomicPair],
        report: &mut AtomicityReport,
    ) {
        let trace = view.trace();
        // Candidate triples: for each pair on x, every remote access to x
        // conflicting with the pair (any remote write; remote reads only if
        // the pair writes — here second is a write, so both qualify).
        let mut triples: Vec<(AtomicPair, EventId)> = Vec::new();
        for &pair in pairs {
            let var = view
                .event(pair.first)
                .kind
                .var()
                .expect("pair accesses a var");
            if trace.is_volatile(var) {
                continue;
            }
            let thread = view.event(pair.first).thread;
            let push = |b: EventId, triples: &mut Vec<_>| {
                if view.event(b).thread != thread {
                    triples.push((pair, b));
                }
            };
            for &wr in view.writes_of(var) {
                push(wr, &mut triples);
            }
            for &r in view.reads_of(var) {
                push(r, &mut triples);
            }
        }
        report.candidates += triples.len();
        if triples.is_empty() {
            return;
        }

        // Share one incremental encoding: base Φ plus one selector per
        // triple guarding O_{a1} < O_b < O_{a2} and, under control flow,
        // the π_cf obligations of all three events.
        // `encode_between` never slices (the serialization obligations are
        // not modeled by the COP cone analysis), so `slice` is left off.
        let opts = EncoderOptions {
            mode: self.config.mode,
            prune_write_sets: self.config.prune_write_sets,
            slice: false,
        };
        let raw: Vec<(EventId, EventId, EventId)> = triples
            .iter()
            .map(|&(p, b)| (p.first, b, p.second))
            .collect();
        let encoded = encode_between(view, &raw, opts);
        let selectors: Vec<TermId> = encoded.selectors.clone();
        let mut solver = Solver::new(&encoded.fb);
        if self.config.phase_hints {
            solver.hint_atom_phases(|a| encoded.phase_hint(a));
        }
        let budget = Budget {
            max_conflicts: self.config.max_conflicts,
            timeout: Some(self.config.solver_timeout),
        };

        let mut seen: HashSet<RaceSignature> = HashSet::new();
        for (i, &(pair, b)) in triples.iter().enumerate() {
            let signature = RaceSignature::new(view.event(pair.first).loc, view.event(b).loc);
            if self.config.dedup_signatures && seen.contains(&signature) {
                continue;
            }
            match solver.solve_assuming(&budget, &[selectors[i]]) {
                SmtResult::Unsat => report.unsat += 1,
                SmtResult::Unknown(_) => report.unknown += 1,
                SmtResult::Sat => {
                    report.sat += 1;
                    let val = |e: EventId| {
                        solver.int_value(encoded.ovars[e.index() - encoded.view_start])
                    };
                    let key = |e: EventId| (val(e), e.index() as u64);
                    let witness = build_witness_core(
                        view,
                        &[pair.first, b, pair.second],
                        &encoded.required_branches[i],
                        self.config.mode,
                        &key,
                    );
                    if let Ok(w) = witness {
                        // The remote access must land strictly between.
                        let pos = |x: EventId| {
                            w.schedule
                                .0
                                .iter()
                                .position(|&e| e == x)
                                .expect("anchor in closure")
                        };
                        if pos(pair.first) < pos(b) && pos(b) < pos(pair.second) {
                            seen.insert(signature);
                            report.violations.push(AtomicityViolation {
                                pair,
                                interleaved: b,
                                signature,
                                schedule: w.schedule,
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{ThreadId, TraceBuilder};

    /// The canonical lost update: two unprotected increments.
    #[test]
    fn lost_update_detected() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.read(t1, x, 0); // r = x
        b.write(t1, x, 1); // x = r + 1   (intended atomic)
        b.read(t2, x, 1);
        b.write(t2, x, 2);
        b.join(t1, t2);
        let trace = b.finish();
        let report = AtomicityDetector::default().detect(&trace);
        assert!(
            !report.violations.is_empty(),
            "lost update must be predicted"
        );
        let v = &report.violations[0];
        // The witness serializes the remote access between the pair.
        let pos = |e: EventId| v.schedule.0.iter().position(|&x| x == e).unwrap();
        assert!(pos(v.pair.first) < pos(v.interleaved));
        assert!(pos(v.interleaved) < pos(v.pair.second));
    }

    /// Lock-protected RMWs are atomic: no violation, and no inferred pair.
    #[test]
    fn locked_rmw_is_atomic() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.read(t1, x, 0);
        b.write(t1, x, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, x, 1);
        b.write(t2, x, 2);
        b.release(t2, l);
        b.join(t1, t2);
        let trace = b.finish();
        let view = trace.full_view();
        assert!(infer_rmw_pairs(&view).is_empty());
        let report = AtomicityDetector::default().detect(&trace);
        assert!(report.violations.is_empty());
    }

    /// MHB separation (join between the block and the remote access) makes
    /// the interleaving infeasible.
    #[test]
    fn join_prevents_interleaving() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.read(t2, x, 0);
        b.write(t2, x, 1);
        b.join(t1, t2);
        b.write(t1, x, 5); // after the join: cannot be serialized inside
        let trace = b.finish();
        let report = AtomicityDetector::default().detect(&trace);
        assert!(report.violations.is_empty(), "{report:?}");
        assert!(report.unsat >= 1);
    }

    /// Without a branch between the pair's read and write, the read's value
    /// is data-abstract and the lost update is feasible; *with* a branch,
    /// the read is pinned to its original value (written by the remote
    /// write), which forces the remote write before the pair — control
    /// flow limits atomicity prediction exactly as it limits races.
    #[test]
    fn control_flow_respected() {
        let build = |with_branch: bool| {
            let mut b = TraceBuilder::new();
            let x = b.var("x");
            let t1 = ThreadId::MAIN;
            let t2 = b.fork(t1);
            b.write(t1, x, 9); // remote write — the original justifier
            b.read(t2, x, 9); // pair: r = x
            if with_branch {
                b.branch(t2); // e.g. `if (r == 9)` before the store
            }
            b.write(t2, x, 10); // pair: x = r + 1
            b.join(t1, t2);
            b.finish()
        };
        // Data-abstract read: the remote write can slip in between.
        let detector = AtomicityDetector::default();
        let unguarded = detector.detect(&build(false));
        assert_eq!(unguarded.violations.len(), 1, "{unguarded:?}");
        // Pinned read: the remote write must come first — infeasible.
        let guarded = detector.detect(&build(true));
        assert!(guarded.violations.is_empty(), "{guarded:?}");
        assert!(guarded.unsat >= 1);
    }
}
