//! Zero-dependency observability: counters, log-scale histograms and phase
//! timers, with a deterministic merge and a versioned JSON emission.
//!
//! The evaluation of the paper (§5, Table 1) is a measurement exercise —
//! races found, windows solved, per-COP solver effort — so the detector
//! keeps a machine-readable [`Metrics`] registry instead of throwing its
//! internal tallies away. Four metric families:
//!
//! * **counters** — monotone `u64` sums (verdict counts, solver decisions,
//!   salvage drops);
//! * **histograms** — fixed log₂-bucket distributions ([`Histogram`]):
//!   bucket 0 holds the value `0`, bucket `i ≥ 1` holds values in
//!   `[2^(i-1), 2^i)`, and the last bucket tops out at `u64::MAX`;
//! * **timings** — summed [`Duration`]s (wall clock, per-phase, per-window);
//! * **gauges** — high-water marks merged by maximum (peak window
//!   residency, queue depths).
//!
//! # Determinism contract
//!
//! Counters and histograms are *count-type* metrics: two detection runs
//! that merge the same window outcomes produce byte-identical values for
//! them, whatever `DetectorConfig::parallelism` is — the parallel driver
//! tallies solver effort per surviving COP record at merge time, in window
//! order (see `RaceDetector`). Timings are wall-clock measurements and
//! gauges are run-shape measurements (peak residency depends on worker
//! count and scheduling); neither is comparable across thread counts, so
//! each lives in its own JSON section (`timings_us`, `gauges`) and both
//! are stripped by [`Metrics::without_timings`].
//!
//! [`Metrics::merge`] is associative and commutative for counters and
//! histograms (element-wise saturating sums), so sharded runs can fold
//! their registries in any order.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Version of the JSON document emitted by [`Metrics::to_json`]. Bumped on
/// any incompatible change to the schema (section names, histogram shape).
pub const METRICS_SCHEMA_VERSION: u64 = 4;

/// A fixed-shape log₂ histogram over `u64` values.
///
/// Values are assigned to one of [`Histogram::BUCKETS`] buckets: bucket 0
/// is exactly the value `0`; bucket `i` (for `1 ≤ i ≤ 64`) covers
/// `[2^(i-1), 2^i - 1]`, with bucket 64 capped at `u64::MAX`. The fixed
/// shape makes merging a plain element-wise sum — no rebinning, no
/// allocation, deterministic in any merge order.
///
/// # Examples
///
/// ```
/// use rvcore::Histogram;
///
/// let mut h = Histogram::new();
/// h.observe(0);
/// h.observe(5);
/// h.observe(u64::MAX);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), u64::MAX);
/// assert_eq!(Histogram::bucket_index(5), 3); // 5 ∈ [4, 8)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Number of buckets: one for `0`, one per power-of-two magnitude.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index for `value`: `0` for the value 0, otherwise the
    /// position of the highest set bit plus one — `value ∈ [2^(i-1), 2^i)`
    /// maps to bucket `i`. Total over the whole `u64` range, so no input
    /// can index out of bounds (`u64::MAX` lands in the last bucket).
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `(low, high)` value range of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Histogram::BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < Histogram::BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one observation. The running sum saturates at `u64::MAX`
    /// instead of wrapping.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Element-wise accumulation of `other` into `self` — associative and
    /// commutative, so shard results can merge in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The count in bucket `index` (0 when out of range).
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets.get(index).copied().unwrap_or(0)
    }

    /// `(bucket index, count)` pairs for every non-empty bucket, in
    /// ascending index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

/// A named registry of counters, histograms and timings.
///
/// # Examples
///
/// ```
/// use rvcore::Metrics;
///
/// let mut m = Metrics::new();
/// m.inc("detector.races", 2);
/// m.observe("solver.conflicts_per_cop", 17);
/// let json = m.to_json();
/// assert!(json.contains("\"schema_version\": 4"));
/// assert!(json.contains("\"detector.races\": 2"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    timings: BTreeMap<String, Duration>,
    gauges: BTreeMap<String, u64>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to the counter `name` (creating it at 0), saturating.
    pub fn inc(&mut self, name: &str, by: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(by);
    }

    /// Records one observation in the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Merges a whole histogram into the histogram `name`.
    pub fn record_histogram(&mut self, name: &str, hist: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Adds `elapsed` to the timing `name` (creating it at zero).
    pub fn record_time(&mut self, name: &str, elapsed: Duration) {
        *self.timings.entry(name.to_string()).or_default() += elapsed;
    }

    /// The counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The timing's accumulated duration (zero if absent).
    pub fn timing(&self, name: &str) -> Duration {
        self.timings.get(name).copied().unwrap_or(Duration::ZERO)
    }

    /// Raises the gauge `name` to at least `value` (creating it). Gauges
    /// are high-water marks: recording never lowers one, and merging two
    /// registries keeps the larger value.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(value);
    }

    /// The gauge's value (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: counters and histogram buckets sum
    /// (saturating), timings add. Associative and commutative for the
    /// count-type families, which is what makes `--jobs N` metric output
    /// reproducible when shards merge in a fixed order.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, &v) in &other.counters {
            self.inc(name, v);
        }
        for (name, h) in &other.histograms {
            self.record_histogram(name, h);
        }
        for (name, &d) in &other.timings {
            self.record_time(name, d);
        }
        for (name, &v) in &other.gauges {
            self.gauge_max(name, v);
        }
    }

    /// A copy with the timing and gauge sections dropped — exactly the
    /// deterministic (count-type) slice of the registry, comparable
    /// byte-for-byte across thread counts after [`Metrics::to_json`].
    /// (Gauges go with the timings: a peak-residency high-water mark
    /// depends on worker count and scheduling just like wall clock does.)
    pub fn without_timings(&self) -> Metrics {
        Metrics {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
            timings: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    /// Serializes the registry to the versioned JSON schema.
    ///
    /// Layout (all numbers are non-negative integers; timings are reported
    /// in microseconds so the document stays float-free and parseable by
    /// the in-tree integer-only JSON parser):
    ///
    /// ```json
    /// {
    ///   "schema_version": 4,
    ///   "counters": { "detector.races": 1 },
    ///   "histograms": {
    ///     "solver.conflicts_per_cop":
    ///       {"count": 2, "sum": 5, "max": 4, "buckets": {"1": 1, "3": 1}}
    ///   },
    ///   "timings_us": { "detector.wall_time": 1234 },
    ///   "gauges": { "stream.peak_window_residency": 6 }
    /// }
    /// ```
    ///
    /// Key order is the registries' `BTreeMap` order, so emission is
    /// deterministic given equal contents.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {METRICS_SCHEMA_VERSION},");
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_key(&mut out, name);
            let _ = write!(out, " {v}");
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_key(&mut out, name);
            let _ = write!(
                out,
                " {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": {{",
                h.count(),
                h.sum(),
                h.max()
            );
            for (j, (bucket, n)) in h.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{bucket}\": {n}");
            }
            out.push_str("}}");
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"timings_us\": {");
        for (i, (name, d)) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_key(&mut out, name);
            let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
            let _ = write!(out, " {us}");
        }
        out.push_str(if self.timings.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_key(&mut out, name);
            let _ = write!(out, " {v}");
        }
        out.push_str(if self.gauges.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push('}');
        out.push('\n');
        out
    }
}

/// Writes `"name":` with minimal escaping (metric names are plain ASCII in
/// practice, but quotes and backslashes must never corrupt the document).
fn write_json_key(out: &mut String, name: &str) {
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push_str("\":");
}

/// Measures one named phase; hand the elapsed time to a registry when the
/// phase ends.
///
/// # Examples
///
/// ```
/// use rvcore::{Metrics, PhaseTimer};
///
/// let mut m = Metrics::new();
/// let t = PhaseTimer::start("detect");
/// // ... work ...
/// t.stop(&mut m);
/// assert!(m.timing("detect") >= std::time::Duration::ZERO);
/// ```
#[derive(Debug)]
pub struct PhaseTimer {
    name: String,
    start: Instant,
}

impl PhaseTimer {
    /// Starts timing the phase `name`.
    pub fn start(name: impl Into<String>) -> Self {
        PhaseTimer {
            name: name.into(),
            start: Instant::now(),
        }
    }

    /// Time elapsed since the phase started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the phase, folds its duration into `metrics`, and returns it.
    pub fn stop(self, metrics: &mut Metrics) -> Duration {
        let elapsed = self.start.elapsed();
        metrics.record_time(&self.name, elapsed);
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite requirement: bucket math is total and correct at the
    /// u64 boundaries — 0, 1, each power-of-two edge, and u64::MAX.
    #[test]
    fn bucket_index_is_total_over_u64() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        for i in 1..=63usize {
            let low = 1u64 << (i - 1);
            let high = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(low), i, "low edge of bucket {i}");
            assert_eq!(Histogram::bucket_index(high), i, "high edge of bucket {i}");
        }
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert!(Histogram::bucket_index(u64::MAX) < Histogram::BUCKETS);
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Contiguous, no gaps or overlaps, and the index maps back.
        for i in 0..Histogram::BUCKETS {
            let (low, high) = Histogram::bucket_bounds(i);
            assert!(low <= high);
            assert_eq!(Histogram::bucket_index(low), i);
            assert_eq!(Histogram::bucket_index(high), i);
            if i + 1 < Histogram::BUCKETS {
                let (next_low, _) = Histogram::bucket_bounds(i + 1);
                assert_eq!(next_low, high + 1, "bucket {i} must abut bucket {}", i + 1);
            }
        }
    }

    #[test]
    fn observe_at_extremes_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.bucket(64), 2);
    }

    #[test]
    fn histogram_merge_sums_buckets() {
        let mut a = Histogram::new();
        a.observe(1);
        a.observe(100);
        let mut b = Histogram::new();
        b.observe(0);
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 201);
        assert_eq!(a.bucket(0), 1);
        assert_eq!(a.bucket(Histogram::bucket_index(100)), 2);
    }

    #[test]
    fn registry_roundtrip_and_merge() {
        let mut a = Metrics::new();
        a.inc("x", 2);
        a.observe("h", 3);
        a.record_time("t", Duration::from_micros(5));
        let mut b = Metrics::new();
        b.inc("x", 1);
        b.inc("y", 7);
        b.observe("h", 9);
        b.record_time("t", Duration::from_micros(10));
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.counter("absent"), 0);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.timing("t"), Duration::from_micros(15));
    }

    #[test]
    fn gauges_keep_the_high_water_mark() {
        let mut a = Metrics::new();
        a.gauge_max("g", 5);
        a.gauge_max("g", 3);
        assert_eq!(a.gauge("g"), 5, "recording never lowers a gauge");
        assert_eq!(a.gauge("absent"), 0);
        let mut b = Metrics::new();
        b.gauge_max("g", 9);
        b.gauge_max("other", 1);
        a.merge(&b);
        assert_eq!(a.gauge("g"), 9, "merge takes the max");
        assert_eq!(a.gauge("other"), 1);
        assert!(a.to_json().contains("\"gauges\": {\n    \"g\": 9"));
    }

    #[test]
    fn without_timings_drops_timings_and_gauges() {
        let mut m = Metrics::new();
        m.inc("c", 1);
        m.observe("h", 2);
        m.record_time("t", Duration::from_secs(1));
        m.gauge_max("g", 4);
        let d = m.without_timings();
        assert_eq!(d.counter("c"), 1);
        assert!(d.histogram("h").is_some());
        assert_eq!(d.timing("t"), Duration::ZERO);
        assert_eq!(d.gauge("g"), 0);
        assert!(!d.to_json().contains("\"t\": "));
        assert!(!d.to_json().contains("\"g\": "));
    }

    #[test]
    fn json_is_versioned_and_deterministic() {
        let mut m = Metrics::new();
        m.inc("b", 2);
        m.inc("a", 1);
        m.observe("h", 5);
        m.record_time("t", Duration::from_micros(7));
        let json = m.to_json();
        assert!(json.contains("\"schema_version\": 4"), "{json}");
        assert!(json.contains("\"a\": 1"), "{json}");
        assert!(
            json.find("\"a\": 1").unwrap() < json.find("\"b\": 2").unwrap(),
            "keys emitted in sorted order"
        );
        assert!(json.contains("\"buckets\": {\"3\": 1}"), "{json}");
        assert!(json.contains("\"timings_us\""), "{json}");
        assert_eq!(json, m.clone().to_json(), "emission is a pure function");
    }

    #[test]
    fn empty_registry_emits_valid_sections() {
        let json = Metrics::new().to_json();
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"histograms\": {}"), "{json}");
        assert!(json.contains("\"timings_us\": {}"), "{json}");
        assert!(json.contains("\"gauges\": {}"), "{json}");
    }

    #[test]
    fn keys_with_quotes_are_escaped() {
        let mut m = Metrics::new();
        m.inc("odd\"key\\name", 1);
        let json = m.to_json();
        assert!(json.contains("odd\\\"key\\\\name"), "{json}");
    }
}
