//! A brute-force reference implementation of the maximal causal model
//! (paper §2, Definitions 1–4), for differential testing.
//!
//! [`oracle_races`] enumerates — by exhaustive search with memoization —
//! every consistent (possibly symbolic) trace in `feasible(τ)` and reports
//! every conflicting pair that can be made adjacent. It implements the
//! feasibility axioms *directly*:
//!
//! * **prefix closedness** — the search appends one event at a time;
//! * **local determinism** — the next event of a thread is its next event
//!   in the observed projection, data-abstractly;
//! * **branch** — appendable only while the thread's reads so far returned
//!   exactly their observed values;
//! * **read** — takes whatever value the last write to the variable
//!   produced (or the initial value);
//! * **write** — writes its observed value while the thread's read history
//!   matches, and a fresh *symbolic* value afterwards (Def. 2);
//! * the serial specifications: lock mutual exclusion and the
//!   must-happen-before rules.
//!
//! Exponential: only for small windows (≲ 20 events). The differential
//! tests check that the SMT-based detector agrees with this oracle exactly
//! — both soundness and maximality (Theorem 3).

use std::collections::{BTreeSet, HashMap, HashSet};

use rvtrace::{Cop, EventId, EventKind, ThreadId, Value, VarId, View};

/// A runtime value in the feasibility closure: concrete or symbolic
/// (symbolic values are distinct from every concrete value and from each
/// other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Val {
    Concrete(Value),
    /// Tagged by the id of the write that produced it.
    Sym(EventId),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct State {
    /// Next position within each thread's projection.
    pos: Vec<u32>,
    /// Whether each thread's reads so far returned their observed values.
    reads_match: Vec<bool>,
    /// Current variable values (dense by var index).
    store: Vec<Val>,
    /// Lock holders (dense by lock index; thread index + 1, 0 = free).
    holder: Vec<u32>,
    /// Threads whose `end` has been appended.
    ended: Vec<bool>,
    /// Threads whose `fork` has been appended (or that need none).
    forked: Vec<bool>,
}

/// Computes the exact set of racy COPs of a (small) window under the
/// maximal causal model.
///
/// # Panics
///
/// Panics if the view contains wait/notify events (the oracle does not
/// model them) or more than `max_events` events.
pub fn oracle_races(view: &View<'_>, max_events: usize) -> BTreeSet<Cop> {
    assert!(
        view.len() <= max_events,
        "oracle is exponential; refusing {} events (cap {max_events})",
        view.len()
    );
    let trace = view.trace();
    let n_threads = trace.n_threads();
    for id in view.ids() {
        assert!(
            !matches!(view.event(id).kind, EventKind::Notify { .. }),
            "oracle does not model wait/notify"
        );
        assert!(
            trace.wait_link_of_acquire(id).is_none(),
            "oracle does not model wait/notify"
        );
    }

    // Which threads still need a fork event before their begin.
    let mut fork_needed: HashMap<ThreadId, EventId> = HashMap::new();
    for id in view.ids() {
        if let EventKind::Fork { child } = view.event(id).kind {
            fork_needed.insert(child, id);
        }
    }
    let mut end_of: HashMap<ThreadId, usize> = HashMap::new();
    for (ti, &t) in trace.threads().iter().enumerate() {
        for &e in view.thread_events(t) {
            if matches!(view.event(e).kind, EventKind::End) {
                end_of.insert(t, ti);
            }
        }
    }

    let initial_store: Vec<Val> = (0..trace.n_vars() as u32)
        .map(|v| Val::Concrete(view.initial_value(VarId(v))))
        .collect();
    let start = State {
        pos: vec![0; n_threads],
        reads_match: vec![true; n_threads],
        store: initial_store,
        holder: vec![0; trace.n_locks()],
        ended: vec![false; n_threads],
        forked: trace
            .threads()
            .iter()
            .map(|t| !fork_needed.contains_key(t))
            .collect(),
    };
    // Locks held at window start: treat as held by their holder.
    let mut start = start;
    for &(t, l) in view.held_at_start() {
        if let Some(ti) = trace.thread_index(t) {
            start.holder[l.index()] = ti as u32 + 1;
        }
    }

    let mut races: BTreeSet<Cop> = BTreeSet::new();
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![start];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        // Record races: two threads whose *next* events conflict.
        let nexts: Vec<Option<EventId>> = (0..n_threads)
            .map(|ti| {
                view.thread_events(trace.threads()[ti])
                    .get(state.pos[ti] as usize)
                    .copied()
            })
            .collect();
        for (i, &na) in nexts.iter().enumerate() {
            for &nb in &nexts[i + 1..] {
                if let (Some(a), Some(b)) = (na, nb) {
                    let (ka, kb) = (view.event(a).kind, view.event(b).kind);
                    if let (Some(va), Some(vb)) = (ka.var(), kb.var()) {
                        if va == vb && (ka.is_write() || kb.is_write()) && !trace.is_volatile(va) {
                            races.insert(Cop::new(a, b));
                        }
                    }
                }
            }
        }
        // Expand: try appending each thread's next event.
        for (ti, &ne) in nexts.iter().enumerate() {
            let Some(e) = ne else { continue };
            if let Some(next) = append(view, &state, ti, e, &fork_needed, &end_of) {
                stack.push(next);
            }
        }
    }
    races
}

fn append(
    view: &View<'_>,
    state: &State,
    ti: usize,
    e: EventId,
    fork_needed: &HashMap<ThreadId, EventId>,
    end_of: &HashMap<ThreadId, usize>,
) -> Option<State> {
    let trace = view.trace();
    let ev = view.event(e);
    let mut next = state.clone();
    next.pos[ti] += 1;
    match ev.kind {
        EventKind::Branch => {
            // Local branch determinism: the read history must be observed.
            if !state.reads_match[ti] {
                return None;
            }
        }
        EventKind::Read { var, value } => {
            let current = state.store[var.index()];
            if current != Val::Concrete(value) {
                next.reads_match[ti] = false;
            }
        }
        EventKind::Write { var, value } => {
            next.store[var.index()] = if state.reads_match[ti] {
                Val::Concrete(value)
            } else {
                Val::Sym(e) // a fresh symbolic value (Def. 2)
            };
        }
        EventKind::Acquire { lock } => {
            if state.holder[lock.index()] != 0 {
                return None;
            }
            next.holder[lock.index()] = ti as u32 + 1;
        }
        EventKind::Release { lock } => {
            if state.holder[lock.index()] != ti as u32 + 1 {
                return None;
            }
            next.holder[lock.index()] = 0;
        }
        EventKind::Begin => {
            if !state.forked[ti] {
                return None;
            }
        }
        EventKind::End => {
            next.ended[ti] = true;
        }
        EventKind::Fork { child } => {
            if let Some(ci) = trace.thread_index(child) {
                if fork_needed.get(&child) == Some(&e) {
                    next.forked[ci] = true;
                }
            }
        }
        EventKind::Join { child } => {
            match end_of.get(&child) {
                Some(&ci) => {
                    if !state.ended[ci] {
                        return None;
                    }
                }
                None => {
                    if !view.thread_events(child).is_empty() {
                        // The child has events in the window but no end:
                        // the join can never be appended.
                        return None;
                    }
                }
            }
        }
        EventKind::Notify { .. } => unreachable!("checked above"),
    }
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{TraceBuilder, ViewExt};

    #[test]
    fn figure1_oracle_finds_only_3_10() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let e3 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, y, 1);
        b.release(t2, l);
        let e10 = b.read(t2, x, 1);
        b.branch(t2);
        b.write(t2, z, 1);
        b.join(t1, t2);
        b.read(t1, z, 1);
        b.branch(t1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert_eq!(races.len(), 1);
        assert!(races.contains(&Cop::new(e3, e10)));
    }

    #[test]
    fn figure2_oracle_separates_cases() {
        // case ①
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let e1 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1);
        let e4 = b.read(t2, x, 1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(races.contains(&Cop::new(e1, e4)));
        // case ② — a branch between the reads
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t2 = b.fork(t1);
        let e1 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1);
        b.branch(t2);
        let e4 = b.read(t2, x, 1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(!races.contains(&Cop::new(e1, e4)));
    }

    #[test]
    fn oracle_respects_join() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let w = b.write(t2, x, 1);
        b.join(t1, t2);
        let r = b.read(t1, x, 1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(!races.contains(&Cop::new(w, r)), "join orders the accesses");
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn oracle_refuses_large_windows() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        for _ in 0..30 {
            b.write(ThreadId::MAIN, x, 1);
        }
        let tr = b.finish();
        let _ = oracle_races(&tr.full_view(), 20);
    }
}
