//! A brute-force reference implementation of the maximal causal model
//! (paper §2, Definitions 1–4), for differential testing.
//!
//! [`oracle_races`] enumerates — by exhaustive search with memoization —
//! every consistent (possibly symbolic) trace in `feasible(τ)` and reports
//! every conflicting pair that can be made adjacent. It implements the
//! feasibility axioms *directly*:
//!
//! * **prefix closedness** — the search appends one event at a time;
//! * **local determinism** — the next event of a thread is its next event
//!   in the observed projection, data-abstractly;
//! * **branch** — appendable only while the thread's reads so far returned
//!   exactly their observed values;
//! * **read** — takes whatever value the last write to the variable
//!   produced (or the initial value);
//! * **write** — writes its observed value while the thread's read history
//!   matches, and a fresh *symbolic* value afterwards (Def. 2);
//! * the serial specifications: lock mutual exclusion and the
//!   must-happen-before rules.
//!
//! Exponential: only for small windows (≲ 20 events). The differential
//! tests check that the SMT-based detector agrees with this oracle exactly
//! — both soundness and maximality (Theorem 3).

use std::collections::{BTreeSet, HashMap, HashSet};

use rvtrace::{Cop, EventId, EventKind, LockId, ThreadId, Value, VarId, View};

/// A runtime value in the feasibility closure: concrete or symbolic
/// (symbolic values are distinct from every concrete value and from each
/// other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Val {
    Concrete(Value),
    /// Tagged by the id of the write that produced it.
    Sym(EventId),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct State {
    /// Next position within each thread's projection.
    pos: Vec<u32>,
    /// Whether each thread's reads so far returned their observed values.
    reads_match: Vec<bool>,
    /// Current variable values (dense by var index).
    store: Vec<Val>,
    /// Lock holders (dense by lock index; thread index + 1, 0 = free).
    holder: Vec<u32>,
    /// Read-mode holders (dense by lock index; bitmask of thread indexes).
    readers: Vec<u64>,
    /// Threads whose `end` has been appended.
    ended: Vec<bool>,
    /// Threads whose `fork` has been appended (or that need none).
    forked: Vec<bool>,
}

/// Computes the exact set of racy COPs of a (small) window under the
/// maximal causal model.
///
/// # Panics
///
/// Panics if the view contains wait/notify events (the oracle does not
/// model them) or more than `max_events` events.
pub fn oracle_races(view: &View<'_>, max_events: usize) -> BTreeSet<Cop> {
    let trace = view.trace();
    let mut races: BTreeSet<Cop> = BTreeSet::new();
    explore(view, max_events, |_state, nexts| {
        // Record races: two threads whose *next* events conflict.
        for (i, &na) in nexts.iter().enumerate() {
            for &nb in &nexts[i + 1..] {
                if let (Some(a), Some(b)) = (na, nb) {
                    let (ka, kb) = (view.event(a).kind, view.event(b).kind);
                    if let (Some(va), Some(vb)) = (ka.var(), kb.var()) {
                        if va == vb && (ka.is_write() || kb.is_write()) && !trace.is_volatile(va) {
                            races.insert(Cop::new(a, b));
                        }
                    }
                }
            }
        }
    });
    races
}

/// Computes the exact set of predictable deadlock cycles of a (small)
/// window under the maximal causal model, as canonical signatures: the
/// sorted list of locks in the cycle.
///
/// A state deadlocks when a set of threads forms a circular wait: each
/// thread's next event is a write-mode acquire of a lock write-held by the
/// next thread in the cycle. Read-mode holds are not part of cycles (the
/// detector makes the same write-mode restriction).
///
/// # Panics
///
/// As [`oracle_races`]: wait/notify events and oversized windows are
/// rejected.
pub fn oracle_deadlocks(view: &View<'_>, max_events: usize) -> BTreeSet<Vec<LockId>> {
    let mut cycles: BTreeSet<Vec<LockId>> = BTreeSet::new();
    explore(view, max_events, |state, nexts| {
        // Wait-for graph: ti -> (holder of the lock ti's next acquire
        // needs, that lock). Functional: at most one outgoing edge each.
        let n = nexts.len();
        let mut wait_for: Vec<Option<(usize, LockId)>> = vec![None; n];
        for (ti, &ne) in nexts.iter().enumerate() {
            let Some(e) = ne else { continue };
            if let EventKind::Acquire { lock } = view.event(e).kind {
                let h = state.holder[lock.index()];
                if h != 0 && h as usize - 1 != ti {
                    wait_for[ti] = Some((h as usize - 1, lock));
                }
            }
        }
        // Every cycle in a functional graph is reachable by pointer
        // chasing from any of its nodes.
        for start in 0..n {
            let mut path: Vec<usize> = Vec::new();
            let mut cur = start;
            while let Some((to, _)) = wait_for[cur] {
                if let Some(p) = path.iter().position(|&x| x == cur) {
                    let mut locks: Vec<LockId> = path[p..]
                        .iter()
                        .map(|&x| wait_for[x].expect("on path").1)
                        .collect();
                    locks.sort();
                    cycles.insert(locks);
                    break;
                }
                path.push(cur);
                cur = to;
            }
        }
    });
    cycles
}

/// Computes the exact set of predictable single-variable atomicity
/// violations of a (small) window under the maximal causal model, as
/// triples `(first, interleaved, second)`.
///
/// Candidates are exactly the detector's: inferred unprotected RMW pairs
/// ([`infer_rmw_pairs`](crate::atomicity::infer_rmw_pairs)) crossed with
/// every remote access of the same (non-volatile) variable. A triple
/// violates iff some consistent trace in the closure appends `first`, then
/// `interleaved`, then `second` — decided by a phase-augmented exhaustive
/// search.
///
/// # Panics
///
/// As [`oracle_races`]: wait/notify events and oversized windows are
/// rejected.
pub fn oracle_atomicity(
    view: &View<'_>,
    max_events: usize,
) -> BTreeSet<(EventId, EventId, EventId)> {
    let ctx = Ctx::new(view, max_events);
    let trace = view.trace();
    let mut triples: Vec<(EventId, EventId, EventId)> = Vec::new();
    for pair in crate::atomicity::infer_rmw_pairs(view) {
        let var = view
            .event(pair.first)
            .kind
            .var()
            .expect("pair accesses a var");
        if trace.is_volatile(var) {
            continue;
        }
        let thread = view.event(pair.first).thread;
        for &b in view.writes_of(var).iter().chain(view.reads_of(var)) {
            if view.event(b).thread != thread {
                triples.push((pair.first, b, pair.second));
            }
        }
    }
    triples
        .into_iter()
        .filter(|&(a1, b, a2)| witnesses_between(&ctx, a1, b, a2))
        .collect()
}

/// True when some consistent trace of the closure appends `a1`, then `b`,
/// then `a2` (strict interleaving). DFS over (state, phase) where phase 0
/// = before `a1`, 1 = after `a1` before `b`, 2 = after `b`; paths that
/// order the anchors any other way are pruned (they can never witness).
fn witnesses_between(ctx: &Ctx<'_, '_>, a1: EventId, b: EventId, a2: EventId) -> bool {
    let mut visited: HashSet<(State, u8)> = HashSet::new();
    let mut stack: Vec<(State, u8)> = vec![(ctx.start.clone(), 0)];
    while let Some((state, phase)) = stack.pop() {
        if !visited.insert((state.clone(), phase)) {
            continue;
        }
        for (ti, &ne) in ctx.nexts(&state).iter().enumerate() {
            let Some(e) = ne else { continue };
            let next_phase = if e == a1 {
                1
            } else if e == b {
                if phase != 1 {
                    continue; // b before a1: can never interleave
                }
                2
            } else if e == a2 {
                if phase != 2 {
                    continue; // a2 before b: can never interleave
                }
                return true;
            } else {
                phase
            };
            if let Some(next) = ctx.step(&state, ti, e) {
                stack.push((next, next_phase));
            }
        }
    }
    false
}

/// Precomputed search context of one window: fork/end maps and the start
/// state, shared by every exploration over the window.
struct Ctx<'v, 't> {
    view: &'v View<'t>,
    fork_needed: HashMap<ThreadId, EventId>,
    end_of: HashMap<ThreadId, usize>,
    start: State,
    n_threads: usize,
}

impl<'v, 't> Ctx<'v, 't> {
    fn new(view: &'v View<'t>, max_events: usize) -> Self {
        assert!(
            view.len() <= max_events,
            "oracle is exponential; refusing {} events (cap {max_events})",
            view.len()
        );
        let trace = view.trace();
        let n_threads = trace.n_threads();
        for id in view.ids() {
            assert!(
                !matches!(view.event(id).kind, EventKind::Notify { .. }),
                "oracle does not model wait/notify"
            );
            assert!(
                trace.wait_link_of_acquire(id).is_none(),
                "oracle does not model wait/notify"
            );
        }

        // Which threads still need a fork event before their begin.
        let mut fork_needed: HashMap<ThreadId, EventId> = HashMap::new();
        for id in view.ids() {
            if let EventKind::Fork { child } = view.event(id).kind {
                fork_needed.insert(child, id);
            }
        }
        let mut end_of: HashMap<ThreadId, usize> = HashMap::new();
        for (ti, &t) in trace.threads().iter().enumerate() {
            for &e in view.thread_events(t) {
                if matches!(view.event(e).kind, EventKind::End) {
                    end_of.insert(t, ti);
                }
            }
        }

        let initial_store: Vec<Val> = (0..trace.n_vars() as u32)
            .map(|v| Val::Concrete(view.initial_value(VarId(v))))
            .collect();
        let start = start_state(view, n_threads, initial_store, &fork_needed);
        Ctx {
            view,
            fork_needed,
            end_of,
            start,
            n_threads,
        }
    }

    /// Each thread's next unappended event in `state`.
    fn nexts(&self, state: &State) -> Vec<Option<EventId>> {
        let trace = self.view.trace();
        (0..self.n_threads)
            .map(|ti| {
                self.view
                    .thread_events(trace.threads()[ti])
                    .get(state.pos[ti] as usize)
                    .copied()
            })
            .collect()
    }

    /// Appends thread `ti`'s next event `e`, if the axioms allow it.
    fn step(&self, state: &State, ti: usize, e: EventId) -> Option<State> {
        append(self.view, state, ti, e, &self.fork_needed, &self.end_of)
    }
}

/// Exhaustively enumerates the reachable states of the window's
/// feasibility closure, invoking `visit` once per state with each
/// thread's next unappended event.
fn explore<F: FnMut(&State, &[Option<EventId>])>(view: &View<'_>, max_events: usize, mut visit: F) {
    let ctx = Ctx::new(view, max_events);
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![ctx.start.clone()];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        let nexts = ctx.nexts(&state);
        visit(&state, &nexts);
        // Expand: try appending each thread's next event.
        for (ti, &ne) in nexts.iter().enumerate() {
            let Some(e) = ne else { continue };
            if let Some(next) = ctx.step(&state, ti, e) {
                stack.push(next);
            }
        }
    }
}

fn start_state(
    view: &View<'_>,
    n_threads: usize,
    initial_store: Vec<Val>,
    fork_needed: &HashMap<ThreadId, EventId>,
) -> State {
    let trace = view.trace();
    assert!(n_threads <= 64, "oracle models at most 64 threads");
    let mut start = State {
        pos: vec![0; n_threads],
        reads_match: vec![true; n_threads],
        store: initial_store,
        holder: vec![0; trace.n_locks()],
        readers: vec![0; trace.n_locks()],
        ended: vec![false; n_threads],
        forked: trace
            .threads()
            .iter()
            .map(|t| !fork_needed.contains_key(t))
            .collect(),
    };
    // Locks held at window start: treat as held by their holder.
    for &(t, l) in view.held_at_start() {
        if let Some(ti) = trace.thread_index(t) {
            start.holder[l.index()] = ti as u32 + 1;
        }
    }
    for &(t, l) in view.held_read_at_start() {
        if let Some(ti) = trace.thread_index(t) {
            start.readers[l.index()] |= 1 << ti;
        }
    }
    start
}

fn append(
    view: &View<'_>,
    state: &State,
    ti: usize,
    e: EventId,
    fork_needed: &HashMap<ThreadId, EventId>,
    end_of: &HashMap<ThreadId, usize>,
) -> Option<State> {
    let trace = view.trace();
    let ev = view.event(e);
    let mut next = state.clone();
    next.pos[ti] += 1;
    match ev.kind {
        EventKind::Branch => {
            // Local branch determinism: the read history must be observed.
            if !state.reads_match[ti] {
                return None;
            }
        }
        EventKind::Read { var, value } => {
            let current = state.store[var.index()];
            if current != Val::Concrete(value) {
                next.reads_match[ti] = false;
            }
        }
        EventKind::Write { var, value } => {
            next.store[var.index()] = if state.reads_match[ti] {
                Val::Concrete(value)
            } else {
                Val::Sym(e) // a fresh symbolic value (Def. 2)
            };
        }
        EventKind::Acquire { lock } => {
            if state.holder[lock.index()] != 0 || state.readers[lock.index()] != 0 {
                return None;
            }
            next.holder[lock.index()] = ti as u32 + 1;
        }
        EventKind::Release { lock } => {
            if state.holder[lock.index()] != ti as u32 + 1 {
                return None;
            }
            next.holder[lock.index()] = 0;
        }
        EventKind::AcquireRead { lock } => {
            if state.holder[lock.index()] != 0 {
                return None;
            }
            next.readers[lock.index()] |= 1 << ti;
        }
        EventKind::ReleaseRead { lock } => {
            if state.readers[lock.index()] & (1 << ti) == 0 {
                return None;
            }
            next.readers[lock.index()] &= !(1 << ti);
        }
        EventKind::Send { .. } => {}
        EventKind::Recv { .. } => {
            // A linked recv requires its in-view send appended first.
            if let Some(ml) = trace.msg_link_of_recv(e) {
                if view.contains(ml.send) && !is_appended(view, state, ml.send) {
                    return None;
                }
            }
        }
        EventKind::Begin => {
            if !state.forked[ti] {
                return None;
            }
        }
        EventKind::End => {
            next.ended[ti] = true;
        }
        EventKind::Fork { child } => {
            if let Some(ci) = trace.thread_index(child) {
                if fork_needed.get(&child) == Some(&e) {
                    next.forked[ci] = true;
                }
            }
        }
        EventKind::Join { child } => {
            match end_of.get(&child) {
                Some(&ci) => {
                    if !state.ended[ci] {
                        return None;
                    }
                }
                None => {
                    if !view.thread_events(child).is_empty() {
                        // The child has events in the window but no end:
                        // the join can never be appended.
                        return None;
                    }
                }
            }
        }
        EventKind::Notify { .. } => unreachable!("checked above"),
    }
    Some(next)
}

/// True when `id` has already been appended in `state` (its thread's
/// position is past it in the projection).
fn is_appended(view: &View<'_>, state: &State, id: EventId) -> bool {
    let t = view.event(id).thread;
    let Some(ti) = view.trace().thread_index(t) else {
        return false;
    };
    view.thread_events(t)
        .iter()
        .position(|&x| x == id)
        .is_some_and(|idx| (state.pos[ti] as usize) > idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{TraceBuilder, ViewExt};

    #[test]
    fn figure1_oracle_finds_only_3_10() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let e3 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, y, 1);
        b.release(t2, l);
        let e10 = b.read(t2, x, 1);
        b.branch(t2);
        b.write(t2, z, 1);
        b.join(t1, t2);
        b.read(t1, z, 1);
        b.branch(t1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert_eq!(races.len(), 1);
        assert!(races.contains(&Cop::new(e3, e10)));
    }

    #[test]
    fn figure2_oracle_separates_cases() {
        // case ①
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let e1 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1);
        let e4 = b.read(t2, x, 1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(races.contains(&Cop::new(e1, e4)));
        // case ② — a branch between the reads
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t2 = b.fork(t1);
        let e1 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1);
        b.branch(t2);
        let e4 = b.read(t2, x, 1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(!races.contains(&Cop::new(e1, e4)));
    }

    #[test]
    fn oracle_respects_join() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let w = b.write(t2, x, 1);
        b.join(t1, t2);
        let r = b.read(t1, x, 1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(!races.contains(&Cop::new(w, r)), "join orders the accesses");
    }

    #[test]
    fn rwlock_read_mode_is_shared_write_mode_exclusive() {
        // Two read-mode critical sections can overlap: a write inside one
        // races with a read inside the other.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire_read(t1, l);
        let w = b.write(t1, x, 1);
        b.release_read(t1, l);
        b.acquire_read(t2, l);
        let r = b.read(t2, x, 1);
        b.release_read(t2, l);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(races.contains(&Cop::new(w, r)));
        // Writer in write mode vs reader in read mode: mutually exclusive,
        // no race.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let w = b.write(t1, x, 1);
        b.release(t1, l);
        b.acquire_read(t2, l);
        let r = b.read(t2, x, 1);
        b.release_read(t2, l);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(!races.contains(&Cop::new(w, r)));
    }

    #[test]
    fn channel_link_orders_accesses() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let c = b.new_chan("c");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let w = b.write(t1, x, 1);
        let s = b.send(t1, c);
        b.recv(t2, c, Some(s));
        let r = b.read(t2, x, 1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(!races.contains(&Cop::new(w, r)), "send->recv orders them");
        // Without the link the same shape races.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let c = b.new_chan("c");
        let t2 = b.fork(t1);
        let w = b.write(t1, x, 1);
        b.send(t1, c);
        b.recv(t2, c, None);
        let r = b.read(t2, x, 1);
        let tr = b.finish();
        let races = oracle_races(&tr.full_view(), 20);
        assert!(races.contains(&Cop::new(w, r)));
    }

    #[test]
    fn deadlock_cycle_found_and_gate_lock_respected() {
        use rvtrace::LockId;
        // Classic inversion: t1 takes l1 then l2; t2 takes l2 then l1.
        let mut b = TraceBuilder::new();
        let l1 = b.new_lock("l1");
        let l2 = b.new_lock("l2");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l1);
        b.acquire(t1, l2);
        b.release(t1, l2);
        b.release(t1, l1);
        b.acquire(t2, l2);
        b.acquire(t2, l1);
        b.release(t2, l1);
        b.release(t2, l2);
        let tr = b.finish();
        let cycles = oracle_deadlocks(&tr.full_view(), 20);
        assert_eq!(cycles.len(), 1);
        assert!(cycles.contains(&vec![LockId(0), LockId(1)]));
        // Same shape under a common gate lock: no predictable deadlock.
        let mut b = TraceBuilder::new();
        let g = b.new_lock("g");
        let l1 = b.new_lock("l1");
        let l2 = b.new_lock("l2");
        let t2 = b.fork(t1);
        b.acquire(t1, g);
        b.acquire(t1, l1);
        b.acquire(t1, l2);
        b.release(t1, l2);
        b.release(t1, l1);
        b.release(t1, g);
        b.acquire(t2, g);
        b.acquire(t2, l2);
        b.acquire(t2, l1);
        b.release(t2, l1);
        b.release(t2, l2);
        b.release(t2, g);
        let tr = b.finish();
        assert!(oracle_deadlocks(&tr.full_view(), 24).is_empty());
    }

    #[test]
    fn atomicity_oracle_lost_update_and_join_separation() {
        // Lost update: the remote RMW interleaves between the pair.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let r1 = b.read(t1, x, 0);
        let w1 = b.write(t1, x, 1);
        let r2 = b.read(t2, x, 1);
        let w2 = b.write(t2, x, 2);
        b.join(t1, t2);
        let tr = b.finish();
        let viol = oracle_atomicity(&tr.full_view(), 20);
        assert!(
            viol.contains(&(r1, r2, w1)) || viol.contains(&(r1, w2, w1)),
            "{viol:?}"
        );
        // Join separation: the remote access cannot reach the inside.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t2 = b.fork(t1);
        b.read(t2, x, 0);
        b.write(t2, x, 1);
        b.join(t1, t2);
        b.write(t1, x, 5);
        let tr = b.finish();
        assert!(oracle_atomicity(&tr.full_view(), 20).is_empty());
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn oracle_refuses_large_windows() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        for _ in 0..30 {
            b.write(ThreadId::MAIN, x, 1);
        }
        let tr = b.finish();
        let _ = oracle_races(&tr.full_view(), 20);
    }
}
