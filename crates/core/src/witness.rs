//! Witness extraction and validation (operationalizing Theorems 1 and 3).
//!
//! From a satisfying model of the encoded formula we build a concrete
//! schedule `τ₁ a b`: the smallest event set closed under
//!
//! 1. per-thread prefixes (local determinism),
//! 2. fork→begin / end→join edges,
//! 3. lock-region completion (if an acquire is included and another same-lock
//!    region is model-ordered before it, that region's release is included),
//! 4. concrete-feasibility support: every asserted branch's prior reads, the
//!    reads preceding justifying writes, and the justifying writes
//!    themselves (the model-last same-variable write before each required
//!    read),
//!
//! ordered by model order values. The schedule is then *validated*: it must
//! pass the structural checks of [`rvtrace::check_schedule`] and every
//! required read must observe its original value under replay. Like the
//! paper's Theorem 3 construction, branches pulled in only through rule 3
//! are carried data-abstractly.

use std::collections::{HashMap, HashSet};

use rvsmt::Solver;
use rvtrace::{check_schedule, schedule_read_values, Cop, EventId, EventKind, Schedule, View};

use crate::config::ConsistencyMode;
use crate::encoder::Encoded;

/// A validated race witness.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The schedule: a consistent reordering ending with the two racing
    /// events adjacent.
    pub schedule: Schedule,
    /// Reads whose original values the witness preserves (the concretely
    /// feasible reads of the encoding).
    pub required_reads: Vec<EventId>,
}

/// Why a witness failed to validate (should not happen for a correct
/// encoder+solver; surfaced for debugging and property tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// Structural schedule violation.
    Structural(rvtrace::ScheduleError),
    /// A required read replays to a different value.
    ReadValueChanged(EventId),
    /// The racing events are not the last two entries of the schedule.
    NotAdjacent,
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::Structural(e) => write!(f, "structural: {e}"),
            WitnessError::ReadValueChanged(e) => write!(f, "{e}: required read value changed"),
            WitnessError::NotAdjacent => write!(f, "racing events not adjacent"),
        }
    }
}

impl std::error::Error for WitnessError {}

/// Builds and validates a witness schedule from a satisfying model.
///
/// # Errors
///
/// Returns a [`WitnessError`] when the model does not induce a valid
/// witness; the detector treats this as "no race" (soundness gate).
pub fn extract_witness(
    view: &View<'_>,
    cop: Cop,
    encoded: &Encoded,
    solver: &Solver,
    mode: ConsistencyMode,
) -> Result<Witness, WitnessError> {
    extract_witness_with(
        view,
        cop,
        |e| encoded.ovar(e),
        &encoded.required_branches,
        solver,
        mode,
    )
}

/// Like [`extract_witness`] but with an explicit order-variable accessor
/// and required-branch set — the entry point for batch
/// ([`EncodedWindow`](crate::encoder::EncodedWindow)) solving, where the
/// racing pair holds *adjacent* order values instead of sharing a glued
/// variable.
pub fn extract_witness_with(
    view: &View<'_>,
    cop: Cop,
    ovar: impl Fn(EventId) -> rvsmt::IntVar,
    required_branches: &[EventId],
    solver: &Solver,
    mode: ConsistencyMode,
) -> Result<Witness, WitnessError> {
    let val = |e: EventId| solver.int_value(ovar(e));
    let anchors = [cop.first, cop.second];
    // Total order key: model value, ties broken by trace order, with the
    // racing pair pinned adjacent. Glued encoding: both share a value, so
    // a gets the second-highest tie rank and b the highest. Equality
    // encoding: val(b) = val(a)+1, so a must sort *after* its tie group and
    // b *before* its own.
    let glued = val(cop.first) == val(cop.second);
    let key = move |e: EventId| -> (i64, u64) {
        let tie = if e == cop.first {
            if glued {
                u64::MAX - 1
            } else {
                u64::MAX
            }
        } else if e == cop.second {
            if glued {
                u64::MAX
            } else {
                0
            }
        } else {
            1 + e.index() as u64
        };
        (val(e), tie)
    };
    let witness = build_witness_core(view, &anchors, required_branches, mode, &key)?;
    // Adjacency check specific to races.
    let schedule = &witness.schedule;
    let n = schedule.0.len();
    let pos_a = schedule.0.iter().position(|&e| e == cop.first);
    match (mode, pos_a) {
        (ConsistencyMode::ControlFlow, _)
            if n < 2 || schedule.0[n - 2] != cop.first || schedule.0[n - 1] != cop.second =>
        {
            return Err(WitnessError::NotAdjacent)
        }
        (ConsistencyMode::WholeTrace, Some(p)) if schedule.0.get(p + 1) != Some(&cop.second) => {
            return Err(WitnessError::NotAdjacent)
        }
        (ConsistencyMode::WholeTrace, None) => return Err(WitnessError::NotAdjacent),
        _ => {}
    }
    Ok(witness)
}

/// The mode-generic witness builder: required-feasibility fixpoint, closure
/// rules 1–3, ordering by `key`, structural validation and required-read
/// replay. Callers add their own shape checks (race adjacency, atomicity
/// between-ness).
pub(crate) fn build_witness_core(
    view: &View<'_>,
    anchors: &[EventId],
    required_branches: &[EventId],
    mode: ConsistencyMode,
    key: &dyn Fn(EventId) -> (i64, u64),
) -> Result<Witness, WitnessError> {
    // ---- Required concrete events (rule 4). ----
    let mut required_reads: HashSet<EventId> = HashSet::new();
    let mut required_writes: HashSet<EventId> = HashSet::new();
    let mut work: Vec<EventId> = Vec::new(); // branches/writes to expand
    match mode {
        ConsistencyMode::ControlFlow => {
            work.extend(required_branches.iter().copied());
        }
        ConsistencyMode::WholeTrace => {
            // Every read is required to keep its value.
            for id in view.ids() {
                if view.event(id).kind.is_read() {
                    required_reads.insert(id);
                }
            }
        }
    }
    let mut expanded: HashSet<EventId> = HashSet::new();
    let mut read_queue: Vec<EventId> = required_reads.iter().copied().collect();
    loop {
        // Expand branches/writes → their thread's earlier reads.
        while let Some(e) = work.pop() {
            if !expanded.insert(e) {
                continue;
            }
            for &r in view.thread_reads_before(e) {
                if required_reads.insert(r) {
                    read_queue.push(r);
                }
            }
        }
        // Expand reads → their justifying write under the model order.
        let Some(r) = read_queue.pop() else { break };
        let var = view.event(r).kind.var().expect("read has var");
        let kr = key(r);
        let justifier = view
            .writes_of(var)
            .iter()
            .copied()
            .filter(|&w| key(w) < kr)
            .max_by_key(|&w| key(w));
        if let Some(w) = justifier {
            if required_writes.insert(w) && mode == ConsistencyMode::ControlFlow {
                work.push(w);
            }
        }
    }

    // ---- Closure rules 1–3. ----
    let mut in_c: HashSet<EventId> = HashSet::new();
    let mut queue: Vec<EventId> = anchors.to_vec();
    queue.extend(required_branches.iter().copied());
    queue.extend(required_reads.iter().copied());
    queue.extend(required_writes.iter().copied());
    // fork/end lookup within the view.
    let mut fork_of: HashMap<rvtrace::ThreadId, EventId> = HashMap::new();
    let mut end_of: HashMap<rvtrace::ThreadId, EventId> = HashMap::new();
    for id in view.ids() {
        match view.event(id).kind {
            EventKind::Fork { child } => {
                fork_of.insert(child, id);
            }
            EventKind::End => {
                end_of.insert(view.event(id).thread, id);
            }
            _ => {}
        }
    }
    while let Some(e) = queue.pop() {
        if !in_c.insert(e) {
            continue;
        }
        // Rule 1: thread prefix.
        let thread_evs = view.thread_events(view.event(e).thread);
        let pos = view.vpos(e);
        for &p in &thread_evs[..pos] {
            if !in_c.contains(&p) {
                queue.push(p);
            }
        }
        // Rule 2: fork/join edges.
        match view.event(e).kind {
            EventKind::Begin => {
                if let Some(&f) = fork_of.get(&view.event(e).thread) {
                    queue.push(f);
                }
            }
            EventKind::Join { child } => {
                if let Some(&en) = end_of.get(&child) {
                    queue.push(en);
                }
            }
            EventKind::Acquire { lock } => {
                // Rule 3: complete model-earlier same-lock regions. A
                // write acquire excludes both write- and read-mode spans.
                let ke = key(e);
                for span in view
                    .critical_sections(lock)
                    .iter()
                    .chain(view.read_critical_sections(lock))
                {
                    if span.acquire == Some(e) {
                        continue;
                    }
                    if let Some(r2) = span.release {
                        if key(r2) < ke {
                            queue.push(r2);
                        }
                    }
                }
            }
            EventKind::AcquireRead { lock } => {
                // Rule 3 for shared acquisitions: only write-mode spans
                // exclude a read span, so only those need completing.
                let ke = key(e);
                for span in view.critical_sections(lock) {
                    if let Some(r2) = span.release {
                        if key(r2) < ke {
                            queue.push(r2);
                        }
                    }
                }
            }
            EventKind::Recv { .. } => {
                // A received message needs its send: the encoder orders
                // linked send < recv, and the structural check demands the
                // send be scheduled first.
                if let Some(ml) = view.trace().msg_link_of_recv(e) {
                    queue.push(ml.send);
                }
            }
            _ => {}
        }
    }

    // ---- Order and validate. ----
    let mut events: Vec<EventId> = match mode {
        // Control-flow witnesses are the paper's `τ₁ a b` prefix shape.
        ConsistencyMode::ControlFlow => in_c.into_iter().collect(),
        // Whole-trace witnesses are complete reorderings of the window.
        ConsistencyMode::WholeTrace => view.ids().collect(),
    };
    events.sort_by_key(|&e| key(e));
    let schedule = Schedule(events);
    check_schedule(view, &schedule).map_err(WitnessError::Structural)?;
    let replayed = schedule_read_values(view, &schedule);
    let mut required_reads: Vec<EventId> = required_reads.into_iter().collect();
    required_reads.sort_unstable();
    for &r in &required_reads {
        let original = view.event(r).kind.value().expect("read value");
        match replayed.get(&r) {
            Some(&v) if v == original => {}
            _ => return Err(WitnessError::ReadValueChanged(r)),
        }
    }
    Ok(Witness {
        schedule,
        required_reads,
    })
}

// Witnesses are extracted on worker threads and shipped to the merge loop;
// keep them (and their errors) thread-portable.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Witness>();
    assert_send::<WitnessError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, EncoderOptions};
    use rvsmt::{Budget, SmtResult, Solver};
    use rvtrace::{ThreadId, TraceBuilder, ViewExt};

    fn witness_for(
        trace: &rvtrace::Trace,
        cop: Cop,
        mode: ConsistencyMode,
    ) -> Result<Witness, WitnessError> {
        let view = trace.full_view();
        // Witness extraction roams the whole window (justifier search),
        // so it always runs against an unsliced encoding — as in the
        // detector's canonical-witness solve.
        let opts = EncoderOptions {
            mode,
            prune_write_sets: true,
            slice: false,
        };
        let enc = encode(&view, cop, opts);
        let mut solver = Solver::new(&enc.fb);
        assert_eq!(
            solver.solve(&Budget::UNLIMITED),
            SmtResult::Sat,
            "expected SAT"
        );
        extract_witness(&view, cop, &enc, &solver, mode)
    }

    #[test]
    fn simple_unprotected_race_witness() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let w = b.write(t1, x, 1);
        let r = b.read(t2, x, 1);
        let tr = b.finish();
        let wit = witness_for(&tr, Cop::new(w, r), ConsistencyMode::ControlFlow).unwrap();
        let n = wit.schedule.0.len();
        assert_eq!(wit.schedule.0[n - 2], w);
        assert_eq!(wit.schedule.0[n - 1], r);
    }

    #[test]
    fn figure1_witness_reorders_lock_regions() {
        // The paper's Figure 1: the witness for (3,10) must schedule t2's
        // critical section before t1's.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let e3 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, y, 1);
        b.release(t2, l);
        let e10 = b.read(t2, x, 1);
        b.branch(t2);
        b.write(t2, z, 1);
        b.join(t1, t2);
        b.read(t1, z, 1);
        b.branch(t1);
        let tr = b.finish();
        let wit = witness_for(&tr, Cop::new(e3, e10), ConsistencyMode::ControlFlow).unwrap();
        // The schedule is a valid consistent reordering ending in e3, e10 —
        // check_schedule already ran inside; spot-check the shape.
        let pos = |e: EventId| wit.schedule.0.iter().position(|&x| x == e).unwrap();
        assert!(pos(e3) + 1 == pos(e10));
        // t2's release (e8 in trace ids) must appear before t1's acquire for
        // mutual exclusion, given e3 is inside t1's region.
        let t2_release = tr
            .events()
            .iter()
            .enumerate()
            .filter(|(_, ev)| ev.thread != t1 && matches!(ev.kind, EventKind::Release { .. }))
            .map(|(i, _)| EventId(i as u32))
            .next()
            .unwrap();
        let t1_acquire = tr
            .events()
            .iter()
            .enumerate()
            .filter(|(_, ev)| ev.thread == t1 && matches!(ev.kind, EventKind::Acquire { .. }))
            .map(|(i, _)| EventId(i as u32))
            .next()
            .unwrap();
        assert!(
            pos(t2_release) < pos(t1_acquire),
            "t2's region scheduled first"
        );
    }

    #[test]
    fn witness_includes_justifying_writes() {
        // t2's racing access is guarded by a branch on y; the witness must
        // include t1's write of y so the branch's read replays to 1.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let wy = b.write(t1, y, 1);
        let wx = b.write(t1, x, 1);
        b.read(t2, y, 1);
        b.branch(t2);
        let rx = b.read(t2, x, 1);
        let tr = b.finish();
        let wit = witness_for(&tr, Cop::new(wx, rx), ConsistencyMode::ControlFlow).unwrap();
        assert!(wit.schedule.0.contains(&wy), "justifying write included");
        assert!(!wit.required_reads.is_empty());
    }

    #[test]
    fn whole_trace_witness_keeps_all_read_values() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.write(t1, y, 1);
        let wx = b.write(t1, x, 1);
        b.read(t2, y, 1);
        let rx = b.read(t2, x, 1);
        let tr = b.finish();
        let wit = witness_for(&tr, Cop::new(wx, rx), ConsistencyMode::WholeTrace).unwrap();
        // All reads required in Said mode.
        assert_eq!(wit.required_reads.len(), 2);
    }
}
