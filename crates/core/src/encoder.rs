//! The constraint encoder (paper §3.2): `Φ = Φ_mhb ∧ Φ_lock ∧ Φ_race`.
//!
//! One integer order variable `O_e` per window event; the race constraint
//! `O_b − O_a = 1` is realized by *substituting* `O_a := O_b` (paper §4), so
//! every atom is a pure difference-logic ordering and the formula solves in
//! IDL.
//!
//! The control-flow part is the paper's contribution: the data-abstract
//! feasibility `π_cf(e)` of a race event reduces to the *concrete*
//! feasibility `cf(b')` of the last branch events `B_e` that
//! must-happen-before `e`; `cf` of a branch or write is the conjunction of
//! `cf` over the thread's earlier reads; and `cf` of a read is a disjunction
//! over same-value writes it could read from, interference-free, whose own
//! `cf` holds recursively. Definitions may be mutually recursive across
//! threads, so each event gets a boolean definition variable asserted as an
//! implication `cf_e ⇒ rhs(e)`; circular support is impossible because it
//! would close an ordering cycle the IDL theory rejects (see DESIGN.md).

use std::collections::HashMap;

use rvsmt::{FormulaBuilder, IntVar, TermId};
use rvtrace::{Cop, EventId, EventKind, View};

use crate::config::ConsistencyMode;
use crate::slice::{Cone, WindowSkeleton};

/// Encoder knobs (a subset of
/// [`DetectorConfig`](crate::DetectorConfig), so the encoder can be driven
/// independently).
#[derive(Debug, Clone, Copy)]
pub struct EncoderOptions {
    /// Consistency discipline (control-flow vs. whole-trace).
    pub mode: ConsistencyMode,
    /// Apply MHB-based pruning of write sets (paper §3.2, last paragraph).
    pub prune_write_sets: bool,
    /// Relevance slicing: encode only over the COP's cone of influence
    /// (see [`crate::slice`]). Verdict-preserving; `--no-slice` turns it
    /// off for A/B checks. No effect under
    /// [`ConsistencyMode::WholeTrace`], whose read constraints span the
    /// window by definition.
    pub slice: bool,
}

impl Default for EncoderOptions {
    fn default() -> Self {
        EncoderOptions {
            mode: ConsistencyMode::ControlFlow,
            prune_write_sets: true,
            slice: true,
        }
    }
}

impl EncoderOptions {
    /// Whether slicing actually applies: the whole-trace baseline asserts
    /// a read-match for every read of the window, so its cone is always
    /// the full window and slicing would only add overhead.
    pub fn slicing_active(&self) -> bool {
        self.slice && self.mode == ConsistencyMode::ControlFlow
    }
}

/// The compiled constraint system for one COP in one window.
#[derive(Debug)]
pub struct Encoded {
    /// The formula (asserted roots are `Φ`).
    pub fb: FormulaBuilder,
    /// Order variable per view offset (the COP's two events share one).
    pub ovars: Vec<IntVar>,
    /// Start of the view range (to map `EventId` → offset).
    pub view_start: usize,
    /// The branch events whose concrete feasibility the formula asserts
    /// (`B_a ∪ B_b`); used by witness validation.
    pub required_branches: Vec<EventId>,
    /// Count of MHB conjuncts (for Figure-5-style dumps and stats).
    pub n_mhb: usize,
    /// Count of lock-mutual-exclusion disjunctions.
    pub n_lock: usize,
    /// Count of read-match constraints generated.
    pub n_read_matches: usize,
    /// Count of `cf` definition variables.
    pub n_cf_vars: usize,
    /// Original trace position of each order variable's (first) event,
    /// indexed by `IntVar` — the phase-hint near-model.
    pub var_pos: Vec<i64>,
    /// Events actually encoded (the cone; equals `window_events` when
    /// slicing is off or inactive).
    pub cone_events: usize,
    /// Events in the window view the formula was cut from.
    pub window_events: usize,
    /// Total asserted constraints in the formula.
    pub n_constraints: usize,
}

impl Encoded {
    /// The order variable of an event.
    ///
    /// # Panics
    ///
    /// Panics if the event is outside the encoded view.
    pub fn ovar(&self, e: EventId) -> IntVar {
        self.ovars[e.index() - self.view_start]
    }

    /// The truth value of a difference atom under the original trace order
    /// (with the racing pair glued at the first event's position). The
    /// observed trace satisfies `Φ_mhb ∧ Φ_lock` and read consistency, so
    /// seeding SAT phases with this near-model speeds up both SAT and UNSAT
    /// instances considerably.
    pub fn phase_hint(&self, atom: &rvsmt::Atom) -> bool {
        let p = |v: rvsmt::IntVar| self.var_pos.get(v.index()).copied().unwrap_or(0);
        p(atom.x) - p(atom.y) <= atom.k
    }

    /// A compact description of the constraint system, in the spirit of the
    /// paper's Figure 5. Reports the cone-vs-window slice ratio and the
    /// post-slicing constraint-group counts so `--trace-log` output stays
    /// meaningful under relevance slicing.
    pub fn describe(&self) -> String {
        format!(
            "cone {}/{} events ({} sliced out); Φ_mhb: {} orderings; Φ_lock: {} region pairs; Φ_race: {} cf vars, {} read matches; {} branches asserted feasible; {} constraints",
            self.cone_events,
            self.window_events,
            self.window_events - self.cone_events,
            self.n_mhb, self.n_lock, self.n_cf_vars, self.n_read_matches,
            self.required_branches.len(),
            self.n_constraints
        )
    }
}

struct Encoder<'v, 't> {
    view: &'v View<'t>,
    fb: FormulaBuilder,
    ovars: Vec<IntVar>,
    var_pos: Vec<i64>,
    view_start: usize,
    /// In single-COP mode the pair shares one order variable (`O_a := O_b`
    /// substitution); in batch mode every event has its own variable and
    /// adjacency is an equality guarded by a per-COP selector.
    glued: Option<Cop>,
    /// When slicing, the cone of influence: events outside it get no real
    /// order variable and no constraints.
    cone: Option<&'v Cone>,
    opts: EncoderOptions,
    cf_cache: HashMap<EventId, TermId>,
    n_mhb: usize,
    n_lock: usize,
    n_read_matches: usize,
}

impl<'v, 't> Encoder<'v, 't> {
    fn new(
        view: &'v View<'t>,
        glued: Option<Cop>,
        cone: Option<&'v Cone>,
        opts: EncoderOptions,
    ) -> Self {
        let mut fb = FormulaBuilder::new();
        let view_start = view.range().start;
        let mut ovars = Vec::with_capacity(view.len());
        let mut var_pos: Vec<i64> = Vec::new();
        // Sliced-out events all map to one dummy variable that no
        // constraint may mention (`o()` debug-asserts cone membership), so
        // `ovars` keeps its dense event→var indexing.
        let dummy = match cone {
            Some(c) if c.n_events() < view.len() => {
                let v = fb.int_var();
                debug_assert_eq!(v.index(), var_pos.len());
                var_pos.push(0);
                Some(v)
            }
            _ => None,
        };
        for id in view.ids() {
            if glued.map(|c| c.second) == Some(id) {
                // O_a := O_b substitution (paper §4): the pair shares a var.
                let first = ovars[glued.expect("checked").first.index() - view_start];
                ovars.push(first);
            } else if let (Some(d), Some(c)) = (dummy, cone) {
                if c.contains(view, id) {
                    let v = fb.int_var();
                    debug_assert_eq!(v.index(), var_pos.len());
                    var_pos.push(id.index() as i64);
                    ovars.push(v);
                } else {
                    ovars.push(d);
                }
            } else {
                let v = fb.int_var();
                debug_assert_eq!(v.index(), var_pos.len());
                var_pos.push(id.index() as i64);
                ovars.push(v);
            }
        }
        Encoder {
            view,
            fb,
            ovars,
            var_pos,
            view_start,
            glued,
            cone,
            opts,
            cf_cache: HashMap::new(),
            n_mhb: 0,
            n_lock: 0,
            n_read_matches: 0,
        }
    }

    #[inline]
    fn o(&self, e: EventId) -> IntVar {
        debug_assert!(
            self.cone.map_or(true, |c| c.contains(self.view, e)),
            "order variable requested for sliced-out event {e:?}"
        );
        self.ovars[e.index() - self.view_start]
    }

    /// The ordering atom `p < q`, aware of the `O_a := O_b` substitution:
    /// the glued pair is oriented "first immediately before second", so a
    /// direct constraint between them folds to ⊤ or ⊥ rather than to the
    /// contradictory `O − O ≤ −1`.
    fn lt_term(&mut self, p: EventId, q: EventId) -> TermId {
        if p == q {
            return self.fb.ff();
        }
        let (op, oq) = (self.o(p), self.o(q));
        if op == oq {
            let glued = self.glued.expect("shared vars only exist for a glued pair");
            return if p == glued.first && q == glued.second {
                self.fb.tt()
            } else {
                self.fb.ff()
            };
        }
        self.fb.lt(op, oq)
    }

    fn assert_lt(&mut self, a: EventId, b: EventId) {
        let t = self.lt_term(a, b);
        self.fb.assert_term(t);
        self.n_mhb += 1;
    }

    /// `Φ_mhb`: program order, fork→begin, end→join, and the wait/notify
    /// matching constraints of paper §4. With a cone, only the cone's
    /// per-thread prefixes, edges, and marked links are constrained; the
    /// dropped tail is satisfiable in trace order (see DESIGN.md,
    /// "Relevance slicing").
    fn encode_mhb(&mut self) {
        if let Some(cone) = self.cone {
            self.encode_mhb_sliced(cone);
            return;
        }
        let view = self.view;
        let trace = view.trace();
        // Program order: adjacent pairs suffice (IDL `<` is transitive).
        for &t in trace.threads() {
            let evs = view.thread_events(t);
            for w in evs.windows(2) {
                self.assert_lt(w[0], w[1]);
            }
        }
        // fork→begin and end→join edges within the view.
        let mut fork_of: HashMap<rvtrace::ThreadId, EventId> = HashMap::new();
        let mut end_of: HashMap<rvtrace::ThreadId, EventId> = HashMap::new();
        for id in view.ids() {
            match view.event(id).kind {
                EventKind::Fork { child } => {
                    fork_of.insert(child, id);
                }
                EventKind::End => {
                    end_of.insert(view.event(id).thread, id);
                }
                _ => {}
            }
        }
        for id in view.ids() {
            match view.event(id).kind {
                EventKind::Begin => {
                    if let Some(&f) = fork_of.get(&view.event(id).thread) {
                        self.assert_lt(f, id);
                    }
                }
                EventKind::Join { child } => {
                    if let Some(&e) = end_of.get(&child) {
                        self.assert_lt(e, id);
                    }
                }
                _ => {}
            }
        }
        // wait/notify: the notify is ordered inside its wait's
        // release–acquire span and outside every other same-lock wait span.
        let in_view = |e: EventId| view.contains(e);
        let links: Vec<_> = trace
            .wait_links()
            .iter()
            .filter(|wl| {
                in_view(wl.release)
                    && in_view(wl.acquire)
                    && wl.notify.map(in_view).unwrap_or(false)
            })
            .copied()
            .collect();
        self.encode_wait_links(&links);
        // Channel matching: each linked recv observes its send.
        let mlinks: Vec<rvtrace::MsgLink> = trace
            .msg_links()
            .iter()
            .filter(|ml| in_view(ml.send) && in_view(ml.recv))
            .copied()
            .collect();
        for ml in mlinks {
            self.assert_lt(ml.send, ml.recv);
        }
    }

    /// The cone-restricted `Φ_mhb`: program order over each thread's cone
    /// prefix, the cone's fork/join edges, and the cone's wait links.
    fn encode_mhb_sliced(&mut self, cone: &Cone) {
        let view = self.view;
        let threads: Vec<rvtrace::ThreadId> = view.trace().threads().to_vec();
        for (ti, &t) in threads.iter().enumerate() {
            let evs = view.thread_events(t);
            let cut = cone.need(ti).min(evs.len());
            for w in evs[..cut].windows(2) {
                self.assert_lt(w[0], w[1]);
            }
        }
        let edges = cone.edges().to_vec();
        for (src, dst) in edges {
            self.assert_lt(src, dst);
        }
        let links = cone.links().to_vec();
        self.encode_wait_links(&links);
        // Channel links whose endpoints both survived the cut. (Slicing is
        // disabled for views with extended sync events, so this arm is a
        // defensive no-op in the detector pipeline.)
        let mlinks: Vec<rvtrace::MsgLink> = view.trace().msg_links().to_vec();
        for ml in mlinks {
            if view.contains(ml.send)
                && view.contains(ml.recv)
                && cone.contains(view, ml.send)
                && cone.contains(view, ml.recv)
            {
                self.assert_lt(ml.send, ml.recv);
            }
        }
    }

    /// Asserts the wait/notify matching constraints for `links` (each
    /// notify inside its own release–acquire span, outside every other
    /// same-lock span of the set).
    fn encode_wait_links(&mut self, links: &[rvtrace::WaitLink]) {
        let view = self.view;
        for wl in links {
            let n = wl.notify.expect("filtered");
            self.assert_lt(wl.release, n);
            self.assert_lt(n, wl.acquire);
            let lock = view.event(n).kind.lock();
            for other in links {
                if other.release == wl.release {
                    continue;
                }
                let other_lock = view.event(other.acquire).kind.lock();
                if lock != other_lock {
                    continue;
                }
                // n ∉ (other.release, other.acquire)
                let before = self.lt_term(n, other.release);
                let after = self.lt_term(other.acquire, n);
                let t = self.fb.or2(before, after);
                self.fb.assert_term(t);
            }
        }
    }

    /// The *conditional* `Φ_lock` used by deadlock prediction: mutual
    /// exclusion is only required of spans scheduled before the deadlock
    /// point `D`. For each cross-thread same-lock span pair the
    /// disjunction gains `D < a₁` and `D < a₂` escape hatches: a span
    /// whose acquire falls after `D` is outside the witness prefix and
    /// needs no serialization. Spans open *at* `D` (acquire before,
    /// release after) still exclude each other — all four disjuncts are
    /// false for two such spans, which is exactly the one-holder-per-lock
    /// invariant of the deadlocked state.
    fn encode_lock_conditional(&mut self, d: IntVar) {
        for lock_idx in 0..self.view.trace().n_locks() as u32 {
            let lock = rvtrace::LockId(lock_idx);
            if let Some(cone) = self.cone {
                if !cone.lock_held(lock) {
                    continue;
                }
            }
            let spans = self.view.critical_sections(lock);
            let rspans = self.view.read_critical_sections(lock);
            let mut pairs: Vec<(&rvtrace::CsSpan, &rvtrace::CsSpan)> = Vec::new();
            for i in 0..spans.len() {
                for j in i + 1..spans.len() {
                    pairs.push((&spans[i], &spans[j]));
                }
            }
            for s in spans {
                for r in rspans {
                    pairs.push((s, r));
                }
            }
            for (s1, s2) in pairs {
                if s1.thread == s2.thread {
                    continue;
                }
                let mut disjuncts: Vec<TermId> = Vec::new();
                if let (Some(r1), Some(a2)) = (s1.release, s2.acquire) {
                    disjuncts.push(self.lt_term(r1, a2));
                }
                if let (Some(r2), Some(a1)) = (s2.release, s1.acquire) {
                    disjuncts.push(self.lt_term(r2, a1));
                }
                if let Some(a1) = s1.acquire {
                    let o = self.o(a1);
                    disjuncts.push(self.fb.lt(d, o));
                }
                if let Some(a2) = s2.acquire {
                    let o = self.o(a2);
                    disjuncts.push(self.fb.lt(d, o));
                }
                let t = self.fb.or_n(disjuncts);
                self.fb.assert_term(t);
                self.n_lock += 1;
            }
        }
    }

    /// `Φ_lock`: for every pair of same-lock critical sections by different
    /// threads, one releases before the other acquires. With a cone, only
    /// cone-held locks are constrained — a lock no cone event holds has
    /// all its spans outside the cone (locksets cover the acquire and
    /// release endpoints), so the dropped disjunctions hold in trace order
    /// for any tail extension of a sliced model.
    fn encode_lock(&mut self) {
        for lock_idx in 0..self.view.trace().n_locks() as u32 {
            if let Some(cone) = self.cone {
                if !cone.lock_held(rvtrace::LockId(lock_idx)) {
                    continue;
                }
            }
            let spans = self.view.critical_sections(rvtrace::LockId(lock_idx));
            for i in 0..spans.len() {
                for j in i + 1..spans.len() {
                    let (s1, s2) = (&spans[i], &spans[j]);
                    if s1.thread == s2.thread {
                        continue; // ordered by program order already
                    }
                    self.exclusion_pair(s1, s2);
                }
            }
            // Read-mode spans exclude write-mode spans (but not each
            // other): every (write span, read span) pair is serialized.
            let rspans = self.view.read_critical_sections(rvtrace::LockId(lock_idx));
            for s in spans {
                for r in rspans {
                    if s.thread == r.thread {
                        continue;
                    }
                    self.exclusion_pair(s, r);
                }
            }
        }
    }

    /// One mutual-exclusion disjunction: `s1` wholly before `s2` or vice
    /// versa (each direction requires its release/acquire endpoints in
    /// view).
    fn exclusion_pair(&mut self, s1: &rvtrace::CsSpan, s2: &rvtrace::CsSpan) {
        let d1 = match (s1.release, s2.acquire) {
            (Some(r1), Some(a2)) => Some(self.lt_term(r1, a2)),
            _ => None,
        };
        let d2 = match (s2.release, s1.acquire) {
            (Some(r2), Some(a1)) => Some(self.lt_term(r2, a1)),
            _ => None,
        };
        let t = match (d1, d2) {
            (Some(x), Some(y)) => self.fb.or2(x, y),
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (None, None) => self.fb.ff(), // inconsistent input
        };
        self.fb.assert_term(t);
        self.n_lock += 1;
    }

    /// The read-match constraint for `r` (paper §3.2, the `cf(r)`
    /// disjunction). With `recursive`, matched writes must be concretely
    /// feasible themselves (`cf(w)`); the Said baseline sets
    /// `recursive = false` because it fixes all written values.
    fn read_match(&mut self, r: EventId, recursive: bool) -> TermId {
        self.n_read_matches += 1;
        let view = self.view;
        let ev = view.event(r);
        let (var, value) = match ev.kind {
            EventKind::Read { var, value } => (var, value),
            _ => unreachable!("read_match on non-read"),
        };
        let prune = self.opts.prune_write_sets;
        let (wr, wrv) = write_sets(view, r, prune);
        let mut disjuncts: Vec<TermId> = Vec::with_capacity(wrv.len() + 1);
        for &w in &wrv {
            let mut conj: Vec<TermId> = Vec::new();
            if recursive {
                conj.push(self.cf(w));
            }
            if !view.mhb(w, r) {
                let t = self.lt_term(w, r);
                conj.push(t);
            }
            for &w2 in &wr {
                if w2 == w || (prune && view.mhb(w2, w)) {
                    continue;
                }
                // Use ⪯ to degenerate the disjunction where possible
                // (paper §3.2's size reduction): if w2 ⪯ r the second
                // disjunct is impossible; if w ⪯ w2 the first is.
                let t = if prune && view.mhb(w2, r) {
                    self.lt_term(w2, w)
                } else if prune && view.mhb(w, w2) {
                    self.lt_term(r, w2)
                } else {
                    let before = self.lt_term(w2, w);
                    let after = self.lt_term(r, w2);
                    self.fb.or2(before, after)
                };
                conj.push(t);
            }
            let d = self.fb.and_n(conj);
            disjuncts.push(d);
        }
        // The virtual initial write: allowed when the read's value equals the
        // variable's value at window start (licenses e.g. the paper's
        // 8' = read(t2, y, 0) reordering of Figure 4).
        if value == view.initial_value(var) {
            let mut conj: Vec<TermId> = Vec::new();
            for &w2 in &wr {
                let t = self.lt_term(r, w2);
                conj.push(t);
            }
            let d = self.fb.and_n(conj);
            disjuncts.push(d);
        }
        self.fb.or_n(disjuncts)
    }

    /// The concrete-feasibility definition variable `cf(e)` for a branch,
    /// write, or read (memoized; cycles allowed through the definition
    /// variable).
    fn cf(&mut self, e: EventId) -> TermId {
        if let Some(&t) = self.cf_cache.get(&e) {
            return t;
        }
        let var = self.fb.bool_var();
        self.cf_cache.insert(e, var);
        let rhs = match self.view.event(e).kind {
            EventKind::Branch | EventKind::Write { .. } => {
                let reads: Vec<EventId> = self.view.thread_reads_before(e).to_vec();
                let parts: Vec<TermId> = reads.iter().map(|&r| self.cf(r)).collect();
                self.fb.and_n(parts)
            }
            EventKind::Read { .. } => self.read_match(e, true),
            _ => self.fb.tt(),
        };
        let imp = self.fb.implies(var, rhs);
        self.fb.assert_term(imp);
        var
    }

    /// `Φ_race` for the COP: the control-flow feasibility of both events
    /// (the adjacency itself is the variable substitution).
    fn encode_race(&mut self, cop: Cop) -> Vec<EventId> {
        match self.opts.mode {
            ConsistencyMode::ControlFlow => {
                let mut required = Vec::new();
                for e in [cop.first, cop.second] {
                    for b in self.view.last_branches_before(e) {
                        let t = self.cf(b);
                        self.fb.assert_term(t);
                        required.push(b);
                    }
                }
                required.sort_unstable();
                required.dedup();
                required
            }
            ConsistencyMode::WholeTrace => {
                // Said et al.: every read keeps its original value.
                let reads: Vec<EventId> = self
                    .view
                    .ids()
                    .filter(|&id| self.view.event(id).kind.is_read())
                    .collect();
                for r in reads {
                    let t = self.read_match(r, false);
                    self.fb.assert_term(t);
                }
                Vec::new()
            }
        }
    }
}

/// The write sets of a read `r` (paper §3.2): `W^r`, every write on `r`'s
/// variable not forced after it, and `W^r_v`, the same-value candidates it
/// may match (shadow-pruned when `prune`). Shared between the encoder's
/// `read_match` and the cone computation so the slice admits exactly the
/// writes the formula will mention.
pub(crate) fn write_sets(view: &View<'_>, r: EventId, prune: bool) -> (Vec<EventId>, Vec<EventId>) {
    let (var, value) = match view.event(r).kind {
        EventKind::Read { var, value } => (var, value),
        _ => unreachable!("write_sets on non-read"),
    };
    // W^r: all writes on the variable, minus those forced after r.
    let wr: Vec<EventId> = view
        .writes_of(var)
        .iter()
        .copied()
        .filter(|&w| w != r && !(prune && view.mhb(r, w)))
        .collect();
    // W^r_v: candidate matched writes (same value).
    let mut wrv: Vec<EventId> = wr
        .iter()
        .copied()
        .filter(|&w| view.event(w).kind.value() == Some(value))
        .collect();
    if prune {
        // Drop w1 when some other candidate w2 satisfies w1 ⪯ w2 ⪯ r.
        let shadowed: Vec<bool> = wrv
            .iter()
            .map(|&w1| {
                wrv.iter()
                    .any(|&w2| w2 != w1 && view.mhb(w1, w2) && view.mhb(w2, r))
            })
            .collect();
        let mut keep = shadowed.iter().map(|s| !s);
        wrv.retain(|_| keep.next().expect("aligned"));
    }
    (wr, wrv)
}

/// Encodes the maximal race-detection problem for `cop` over `view`.
///
/// The returned formula is satisfiable iff `cop` is a race in the maximal
/// sense of paper Definition 4 (restricted to the window), per Theorem 3.
///
/// # Examples
///
/// ```
/// use rvcore::{encode, EncoderOptions};
/// use rvsmt::{Budget, SmtResult, Solver};
/// use rvtrace::{Cop, ThreadId, TraceBuilder, ViewExt};
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// let t2 = b.fork(ThreadId::MAIN);
/// let w = b.write(ThreadId::MAIN, x, 1);
/// let r = b.read(t2, x, 1);
/// let trace = b.finish();
/// let view = trace.full_view();
/// let enc = encode(&view, Cop::new(w, r), EncoderOptions::default());
/// let mut solver = Solver::new(&enc.fb);
/// assert_eq!(solver.solve(&Budget::UNLIMITED), SmtResult::Sat);
/// ```
pub fn encode(view: &View<'_>, cop: Cop, opts: EncoderOptions) -> Encoded {
    if opts.slicing_active() && !view.has_extended_sync() {
        let skel = WindowSkeleton::new(view);
        return encode_with_skeleton(&skel, cop, opts);
    }
    encode_cop(view, cop, None, opts)
}

/// [`encode`] with a precomputed per-window [`WindowSkeleton`], so the
/// skeleton's one-time indexes are shared across all of a window's COPs.
/// Computes the COP's cone of influence and encodes only over it (when
/// slicing is active for `opts`; otherwise identical to [`encode`]).
pub fn encode_with_skeleton(
    skel: &WindowSkeleton<'_, '_>,
    cop: Cop,
    opts: EncoderOptions,
) -> Encoded {
    if !opts.slicing_active() || skel.view().has_extended_sync() {
        // Conservative admission: a window with rwlock/channel events is
        // encoded whole — the cone analysis does not model their edges.
        return encode_cop(skel.view(), cop, None, opts);
    }
    let cone = skel.cone(std::slice::from_ref(&cop), opts.prune_write_sets);
    encode_cop(skel.view(), cop, Some(&cone), opts)
}

fn encode_cop(view: &View<'_>, cop: Cop, cone: Option<&Cone>, opts: EncoderOptions) -> Encoded {
    debug_assert!(view.contains(cop.first) && view.contains(cop.second));
    let mut enc = Encoder::new(view, Some(cop), cone, opts);
    enc.encode_mhb();
    match opts.mode {
        ConsistencyMode::ControlFlow => {
            // The witness for a race is the prefix `{e : O_e ≤ O_cop}` —
            // a lock region whose acquire lands past the pair needs no
            // serialization, so Φ_lock takes the conditional form with
            // the cut `D` pinned to the (glued) pair itself. The
            // unconditional form would demand nested regions *behind*
            // the pair complete, refuting e.g. the race just ahead of a
            // two-lock inversion.
            let d = enc.fb.int_var();
            debug_assert_eq!(d.index(), enc.var_pos.len());
            enc.var_pos.push(cop.first.index() as i64);
            let o = enc.o(cop.first);
            let le = enc.fb.diff_le(d, o, 0);
            enc.fb.assert_term(le);
            let ge = enc.fb.diff_le(o, d, 0);
            enc.fb.assert_term(ge);
            enc.encode_lock_conditional(d);
        }
        // Said et al. predict over whole-trace reorderings; full spans
        // keep the baseline's published (non-maximal) discipline.
        ConsistencyMode::WholeTrace => enc.encode_lock(),
    }
    let required_branches = enc.encode_race(cop);
    let n_cf_vars = enc.cf_cache.len();
    let n_constraints = enc.fb.asserted().len();
    Encoded {
        fb: enc.fb,
        ovars: enc.ovars,
        view_start: enc.view_start,
        required_branches,
        n_mhb: enc.n_mhb,
        n_lock: enc.n_lock,
        n_read_matches: enc.n_read_matches,
        n_cf_vars,
        var_pos: enc.var_pos,
        cone_events: cone.map_or(view.len(), |c| c.n_events()),
        window_events: view.len(),
        n_constraints,
    }
}

/// The shared constraint system for *all* COPs of one window (batch mode):
/// `Φ_mhb ∧ Φ_lock` plus shared `cf`/read-consistency definitions, with one
/// boolean *selector* per COP guarding its adjacency equality (and, under
/// control flow, its `π_cf` obligations). Queries run under assumptions on
/// one incremental solver, sharing learnt clauses across COPs.
#[derive(Debug)]
pub struct EncodedWindow {
    /// The formula.
    pub fb: FormulaBuilder,
    /// Order variable per view offset (every event has its own).
    pub ovars: Vec<IntVar>,
    /// Start of the view range.
    pub view_start: usize,
    /// The encoded COPs, aligned with `selectors`.
    pub cops: Vec<Cop>,
    /// One selector (free boolean) per COP, for `solve_assuming`.
    pub selectors: Vec<TermId>,
    /// Per COP, the branches whose feasibility its selector asserts.
    pub required_branches: Vec<Vec<EventId>>,
    /// Original trace position per order variable (phase hints).
    pub var_pos: Vec<i64>,
    /// Events actually encoded (the union cone over all the window's
    /// COPs; equals `window_events` when slicing is off or inactive).
    pub cone_events: usize,
    /// Events in the window view the formula was cut from.
    pub window_events: usize,
    /// Total asserted constraints in the formula.
    pub n_constraints: usize,
}

impl EncodedWindow {
    /// The order variable of an event.
    ///
    /// # Panics
    ///
    /// Panics if the event is outside the encoded view.
    pub fn ovar(&self, e: EventId) -> IntVar {
        self.ovars[e.index() - self.view_start]
    }

    /// Phase hint from the original trace order (see [`Encoded::phase_hint`]).
    pub fn phase_hint(&self, atom: &rvsmt::Atom) -> bool {
        let p = |v: rvsmt::IntVar| self.var_pos.get(v.index()).copied().unwrap_or(0);
        p(atom.x) - p(atom.y) <= atom.k
    }
}

/// Encodes one window's base constraints plus selector-guarded race
/// constraints for every COP (the incremental batch interface). When
/// slicing is active, the base formula covers the *union* cone of all the
/// window's COPs (one skeleton built internally; use
/// [`encode_window_with_skeleton`] to share one across calls).
pub fn encode_window(view: &View<'_>, cops: &[Cop], opts: EncoderOptions) -> EncodedWindow {
    if opts.slicing_active() && !view.has_extended_sync() {
        let skel = WindowSkeleton::new(view);
        return encode_window_with_skeleton(&skel, cops, opts);
    }
    encode_window_cops(view, cops, None, opts)
}

/// [`encode_window`] with a precomputed [`WindowSkeleton`].
pub fn encode_window_with_skeleton(
    skel: &WindowSkeleton<'_, '_>,
    cops: &[Cop],
    opts: EncoderOptions,
) -> EncodedWindow {
    if !opts.slicing_active() || skel.view().has_extended_sync() {
        return encode_window_cops(skel.view(), cops, None, opts);
    }
    let cone = skel.cone(cops, opts.prune_write_sets);
    encode_window_cops(skel.view(), cops, Some(&cone), opts)
}

fn encode_window_cops(
    view: &View<'_>,
    cops: &[Cop],
    cone: Option<&Cone>,
    opts: EncoderOptions,
) -> EncodedWindow {
    let mut enc = Encoder::new(view, None, cone, opts);
    enc.encode_mhb();
    // Shared prefix cut `D`: queries assume exactly one selector, and each
    // selector pins `D` onto its own COP, so one variable serves every
    // COP's conditional Φ_lock (see `encode_cop` for why the maximal mode
    // must not demand post-pair lock regions complete).
    let dvar = match opts.mode {
        ConsistencyMode::ControlFlow => {
            let d = enc.fb.int_var();
            debug_assert_eq!(d.index(), enc.var_pos.len());
            enc.var_pos.push(
                cops.iter()
                    .map(|c| c.second.index() as i64)
                    .max()
                    .unwrap_or(0),
            );
            enc.encode_lock_conditional(d);
            Some(d)
        }
        ConsistencyMode::WholeTrace => {
            enc.encode_lock();
            None
        }
    };
    if opts.mode == ConsistencyMode::WholeTrace {
        // Whole-trace read consistency is COP-independent: assert it once.
        let reads: Vec<EventId> = view
            .ids()
            .filter(|&id| view.event(id).kind.is_read())
            .collect();
        for r in reads {
            let t = enc.read_match(r, false);
            enc.fb.assert_term(t);
        }
    }
    let mut selectors = Vec::with_capacity(cops.len());
    let mut required_branches = Vec::with_capacity(cops.len());
    for &cop in cops {
        debug_assert!(view.contains(cop.first) && view.contains(cop.second));
        let sel = enc.fb.bool_var();
        let (oa, ob) = (enc.o(cop.first), enc.o(cop.second));
        // Adjacency as an equality: O_b − O_a ≤ 1 ∧ O_a − O_b ≤ −1.
        let up = enc.fb.diff_le(ob, oa, 1);
        let lo = enc.fb.diff_le(oa, ob, -1);
        let mut obligations = vec![up, lo];
        if let Some(d) = dvar {
            // This COP's cut: D == O_b (the later of the glued pair).
            obligations.push(enc.fb.diff_le(d, ob, 0));
            obligations.push(enc.fb.diff_le(ob, d, 0));
        }
        let mut branches = Vec::new();
        if opts.mode == ConsistencyMode::ControlFlow {
            for e in [cop.first, cop.second] {
                for b in view.last_branches_before(e) {
                    obligations.push(enc.cf(b));
                    branches.push(b);
                }
            }
            branches.sort_unstable();
            branches.dedup();
        }
        let body = enc.fb.and_n(obligations);
        let imp = enc.fb.implies(sel, body);
        enc.fb.assert_term(imp);
        selectors.push(sel);
        required_branches.push(branches);
    }
    let n_constraints = enc.fb.asserted().len();
    EncodedWindow {
        fb: enc.fb,
        ovars: enc.ovars,
        view_start: enc.view_start,
        cops: cops.to_vec(),
        selectors,
        required_branches,
        var_pos: enc.var_pos,
        cone_events: cone.map_or(view.len(), |c| c.n_events()),
        window_events: view.len(),
        n_constraints,
    }
}

/// Encodes one window's base constraints plus selector-guarded
/// *serialization* constraints `O_{a₁} < O_b < O_{a₂}` for every triple
/// (the atomicity-violation interface; see
/// [`atomicity`](crate::atomicity)). Under control flow each selector also
/// asserts the `π_cf` obligations of all three events.
///
/// Always encodes the full window: the atomicity client reasons about
/// arbitrary interleavings of the block's interior, and the per-COP cone
/// analysis does not model its serialization obligations.
pub fn encode_between(
    view: &View<'_>,
    triples: &[(EventId, EventId, EventId)],
    opts: EncoderOptions,
) -> EncodedWindow {
    let mut enc = Encoder::new(view, None, None, opts);
    enc.encode_mhb();
    // As for races: the violation witness is the prefix ending at the
    // serialized triple, so the maximal mode takes conditional Φ_lock
    // with the shared cut pinned per-selector onto `a2`.
    let dvar = match opts.mode {
        ConsistencyMode::ControlFlow => {
            let d = enc.fb.int_var();
            debug_assert_eq!(d.index(), enc.var_pos.len());
            enc.var_pos.push(
                triples
                    .iter()
                    .map(|t| t.2.index() as i64)
                    .max()
                    .unwrap_or(0),
            );
            enc.encode_lock_conditional(d);
            Some(d)
        }
        ConsistencyMode::WholeTrace => {
            enc.encode_lock();
            None
        }
    };
    if opts.mode == ConsistencyMode::WholeTrace {
        let reads: Vec<EventId> = view
            .ids()
            .filter(|&id| view.event(id).kind.is_read())
            .collect();
        for r in reads {
            let t = enc.read_match(r, false);
            enc.fb.assert_term(t);
        }
    }
    let mut selectors = Vec::with_capacity(triples.len());
    let mut required_branches = Vec::with_capacity(triples.len());
    for &(a1, b, a2) in triples {
        let sel = enc.fb.bool_var();
        let lt1 = enc.lt_term(a1, b);
        let lt2 = enc.lt_term(b, a2);
        let mut obligations = vec![lt1, lt2];
        if let Some(d) = dvar {
            let o2 = enc.o(a2);
            obligations.push(enc.fb.diff_le(d, o2, 0));
            obligations.push(enc.fb.diff_le(o2, d, 0));
        }
        let mut branches = Vec::new();
        if opts.mode == ConsistencyMode::ControlFlow {
            for e in [a1, b, a2] {
                for br in view.last_branches_before(e) {
                    obligations.push(enc.cf(br));
                    branches.push(br);
                }
            }
            branches.sort_unstable();
            branches.dedup();
        }
        let body = enc.fb.and_n(obligations);
        let imp = enc.fb.implies(sel, body);
        enc.fb.assert_term(imp);
        selectors.push(sel);
        required_branches.push(branches);
    }
    let n_constraints = enc.fb.asserted().len();
    EncodedWindow {
        fb: enc.fb,
        ovars: enc.ovars,
        view_start: enc.view_start,
        cops: Vec::new(),
        selectors,
        required_branches,
        var_pos: enc.var_pos,
        cone_events: view.len(),
        window_events: view.len(),
        n_constraints,
    }
}

/// The compiled constraint system for one candidate deadlock cycle: `Φ_mhb`
/// plus the *conditional* `Φ_lock`, a fresh order variable `D` (the deadlock
/// point), per-branch feasibility obligations `D < O_b ∨ cf(b)`, and the
/// cycle constraints pinning each blocked acquire just after `D`. See
/// [`deadlock`](crate::deadlock) and DESIGN.md ("Violation classes").
#[derive(Debug)]
pub struct EncodedDeadlock {
    /// The formula.
    pub fb: FormulaBuilder,
    /// Order variable per view offset.
    pub ovars: Vec<IntVar>,
    /// Start of the view range.
    pub view_start: usize,
    /// The deadlock-point variable `D`.
    pub dvar: IntVar,
    /// Original trace position per order variable (phase hints).
    pub var_pos: Vec<i64>,
    /// Total asserted constraints in the formula.
    pub n_constraints: usize,
}

impl EncodedDeadlock {
    /// The order variable of an event.
    ///
    /// # Panics
    ///
    /// Panics if the event is outside the encoded view.
    pub fn ovar(&self, e: EventId) -> IntVar {
        self.ovars[e.index() - self.view_start]
    }

    /// Phase hint from the original trace order (see [`Encoded::phase_hint`]).
    pub fn phase_hint(&self, atom: &rvsmt::Atom) -> bool {
        let p = |v: rvsmt::IntVar| self.var_pos.get(v.index()).copied().unwrap_or(0);
        p(atom.x) - p(atom.y) <= atom.k
    }
}

/// Encodes the predictive-deadlock problem for one candidate cycle: the
/// formula is satisfiable iff some feasible reordering of the window
/// reaches a state where each `cycle[i]` is its thread's next event and the
/// requested lock is held by the next cycle thread (circular wait). The
/// satisfying model's `{e : O_e < D}` prefix, sorted by model value, is the
/// witness — a consistent, data-abstract, deadlocked partial schedule.
///
/// `cycle` holds the blocked acquire events, one per cycle thread, each
/// preceded in program order by the acquire of the lock it contributes to
/// the cycle. Never slices: the cone analysis does not model the prefix
/// obligations.
pub fn encode_deadlock(
    view: &View<'_>,
    cycle: &[EventId],
    opts: EncoderOptions,
) -> EncodedDeadlock {
    let mut enc = Encoder::new(view, None, None, opts);
    enc.encode_mhb();
    // D: the deadlock point every witness event precedes.
    let d = enc.fb.int_var();
    debug_assert_eq!(d.index(), enc.var_pos.len());
    // Near-model hint: just before the earliest blocked acquire.
    enc.var_pos
        .push(cycle.iter().map(|a| a.index() as i64).min().unwrap_or(0));
    enc.encode_lock_conditional(d);
    // Prefix feasibility: every branch scheduled before D is concretely
    // feasible (control flow), or every read before D keeps its observed
    // value (the whole-trace baseline discipline).
    match opts.mode {
        ConsistencyMode::ControlFlow => {
            let branches: Vec<EventId> = view
                .ids()
                .filter(|&id| view.event(id).kind.is_branch())
                .collect();
            for b in branches {
                let ob = enc.o(b);
                let after_d = enc.fb.lt(d, ob);
                let cfb = enc.cf(b);
                let t = enc.fb.or2(after_d, cfb);
                enc.fb.assert_term(t);
            }
        }
        ConsistencyMode::WholeTrace => {
            let reads: Vec<EventId> = view
                .ids()
                .filter(|&id| view.event(id).kind.is_read())
                .collect();
            for r in reads {
                let or_ = enc.o(r);
                let after_d = enc.fb.lt(d, or_);
                let m = enc.read_match(r, false);
                let t = enc.fb.or2(after_d, m);
                enc.fb.assert_term(t);
            }
        }
    }
    // The cycle: each blocked acquire sits just past D — its program-order
    // prefix (which includes the hold of its contributed lock, but not the
    // release) is in the witness, the acquire itself is not.
    for &a in cycle {
        let t = view.event(a).thread;
        let evs = view.thread_events(t);
        let pos = evs
            .iter()
            .position(|&x| x == a)
            .expect("cycle event in view");
        if pos > 0 {
            let op = enc.o(evs[pos - 1]);
            let t = enc.fb.lt(op, d);
            enc.fb.assert_term(t);
        }
        let oa = enc.o(a);
        let t = enc.fb.lt(d, oa);
        enc.fb.assert_term(t);
    }
    let n_constraints = enc.fb.asserted().len();
    EncodedDeadlock {
        fb: enc.fb,
        ovars: enc.ovars,
        view_start: enc.view_start,
        dvar: d,
        var_pos: enc.var_pos,
        n_constraints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsmt::{Budget, SmtResult, Solver};
    use rvtrace::{ThreadId, TraceBuilder, ViewExt};

    fn solve(enc: &Encoded) -> SmtResult {
        let mut s = Solver::new(&enc.fb);
        s.solve(&Budget::UNLIMITED)
    }

    /// The paper's Figure 1/4 trace. Returns (trace, e3, e10, e12, e15, e4, e8).
    fn figure1() -> (rvtrace::Trace, [rvtrace::EventId; 6]) {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1); // 1. fork
        b.acquire(t1, l); // 2. lock
        let e3 = b.write(t1, x, 1); // 3. x = 1
        let e4 = b.write(t1, y, 1); // 4. y = 1
        b.release(t1, l); // 5. unlock
        b.acquire(t2, l); // 6. begin, 7. lock
        let e8 = b.read(t2, y, 1); // 8. r1 = y
        b.release(t2, l); // 9. unlock
        let e10 = b.read(t2, x, 1); // 10. r2 = x
        b.branch(t2); // 11. if (r1 == r2)
        let e12 = b.write(t2, z, 1); // 12. z = 1
        b.join(t1, t2); // 13. end, 14. join
        let e15 = b.read(t1, z, 1); // 15. r3 = z
        b.branch(t1); // 16. if (r3 == 0)
        (b.finish(), [e3, e10, e12, e15, e4, e8])
    }

    #[test]
    fn figure1_race_3_10_detected() {
        let (tr, ids) = figure1();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(ids[0], ids[1]), EncoderOptions::default());
        assert_eq!(
            solve(&enc),
            SmtResult::Sat,
            "(3,10) is a race under control flow"
        );
    }

    #[test]
    fn figure1_race_3_10_missed_by_whole_trace() {
        let (tr, ids) = figure1();
        let v = tr.full_view();
        let opts = EncoderOptions {
            mode: ConsistencyMode::WholeTrace,
            ..Default::default()
        };
        let enc = encode(&v, Cop::new(ids[0], ids[1]), opts);
        assert_eq!(solve(&enc), SmtResult::Unsat, "Said et al. misses (3,10)");
    }

    #[test]
    fn figure1_cop_12_15_not_a_race() {
        let (tr, ids) = figure1();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(ids[2], ids[3]), EncoderOptions::default());
        assert_eq!(
            solve(&enc),
            SmtResult::Unsat,
            "(12,15) is MHB-ordered via join"
        );
    }

    #[test]
    fn figure1_cop_4_8_not_a_race() {
        let (tr, ids) = figure1();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(ids[4], ids[5]), EncoderOptions::default());
        assert_eq!(solve(&enc), SmtResult::Unsat, "(4,8) is lock-protected");
    }

    /// Figure 2 case ①: y volatile, read then an independent read of x.
    #[test]
    fn figure2_case_read_is_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let e1 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1); // r1 = y — no branch follows
        let e4 = b.read(t2, x, 1);
        let tr = b.finish();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(e1, e4), EncoderOptions::default());
        assert_eq!(solve(&enc), SmtResult::Sat, "(1,4) races in case ①");
        // …and Said misses it (line 3 must read 1, forcing 2 < 3 and 1 < 4
        // non-adjacent).
        let opts = EncoderOptions {
            mode: ConsistencyMode::WholeTrace,
            ..Default::default()
        };
        let enc = encode(&v, Cop::new(e1, e4), opts);
        assert_eq!(solve(&enc), SmtResult::Unsat, "Said misses (1,4) in case ①");
    }

    /// Figure 2 case ②: the read feeds a while-loop condition — a branch
    /// event between lines 3 and 4 kills the race.
    #[test]
    fn figure2_case_loop_is_not_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.volatile_var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let e1 = b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1); // while (y == 0);
        b.branch(t2); // the loop condition
        let e4 = b.read(t2, x, 1);
        let tr = b.finish();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(e1, e4), EncoderOptions::default());
        assert_eq!(
            solve(&enc),
            SmtResult::Unsat,
            "(1,4) is not a race in case ②"
        );
        assert_eq!(enc.required_branches.len(), 1);
    }

    /// §4's array example: `a[x] = 2` under a lock, `x = 1` under the lock,
    /// then `a[0] = 1` unprotected. The implicit branch before the array
    /// store forces `x`'s read to stay 0, which forces the lock order, so
    /// (2,7) is not a race.
    #[test]
    fn array_index_example_not_a_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let a0 = b.var("a[0]");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l); // 1. lock
        b.read(t1, x, 0); // read of the index x (part of line 2)
        b.branch(t1); // implicit branch: array indexing a[x]
        let e2 = b.write(t1, a0, 2); // 2. a[x] = 2 with x == 0
        b.release(t1, l); // 3. unlock
        b.acquire(t2, l); // 4. lock (+begin)
        b.write(t2, x, 1); // 5. x = 1
        b.release(t2, l); // 6. unlock
        let e7 = b.write(t2, a0, 1); // 7. a[0] = 1
        let tr = b.finish();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(e2, e7), EncoderOptions::default());
        assert_eq!(solve(&enc), SmtResult::Unsat, "(2,7) is not a race (§4)");
        // Without the implicit branch the encoder would wrongly report it:
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let a0 = b.var("a[0]");
        let l = b.new_lock("l");
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.read(t1, x, 0);
        let e2 = b.write(t1, a0, 2);
        b.release(t1, l);
        b.acquire(t2, l);
        b.write(t2, x, 1);
        b.release(t2, l);
        let e7 = b.write(t2, a0, 1);
        let tr = b.finish();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(e2, e7), EncoderOptions::default());
        assert_eq!(
            solve(&enc),
            SmtResult::Sat,
            "dropping the implicit branch loses soundness"
        );
    }

    #[test]
    fn mhb_ordered_pair_unsat() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let w = b.write(t1, x, 1);
        let t2 = b.fork(t1);
        let r = b.read(t2, x, 1);
        let tr = b.finish();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(w, r), EncoderOptions::default());
        assert_eq!(solve(&enc), SmtResult::Unsat);
    }

    #[test]
    fn describe_mentions_groups() {
        let (tr, ids) = figure1();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(ids[0], ids[1]), EncoderOptions::default());
        let d = enc.describe();
        assert!(d.contains("Φ_mhb") && d.contains("Φ_lock") && d.contains("Φ_race"));
        assert!(d.contains("cone") && d.contains("sliced out") && d.contains("constraints"));
        assert!(enc.n_mhb > 0);
        assert!(enc.n_lock >= 1);
        assert!(enc.cone_events > 0 && enc.cone_events <= enc.window_events);
        assert!(enc.n_constraints > 0);
    }

    /// Every Figure 1/2 verdict is identical with slicing off — the A/B
    /// toggle the CLI's `--no-slice` exposes.
    #[test]
    fn slicing_preserves_figure_verdicts() {
        let (tr, ids) = figure1();
        let v = tr.full_view();
        let sliced = EncoderOptions::default();
        let full = EncoderOptions {
            slice: false,
            ..Default::default()
        };
        assert!(sliced.slicing_active() && !full.slicing_active());
        for (a, b) in [
            (ids[0], ids[1]),
            (ids[2], ids[3]),
            (ids[4], ids[5]),
            (ids[0], ids[4]),
        ] {
            let cop = Cop::new(a, b);
            let vs = solve(&encode(&v, cop, sliced));
            let vf = solve(&encode(&v, cop, full));
            assert_eq!(vs, vf, "slicing changed the verdict of ({a},{b})");
        }
    }

    /// Whole-trace mode spans the window by definition, so slicing must be
    /// inert there even when requested.
    #[test]
    fn slicing_inactive_under_whole_trace() {
        let opts = EncoderOptions {
            mode: ConsistencyMode::WholeTrace,
            ..Default::default()
        };
        assert!(opts.slice && !opts.slicing_active());
        let (tr, ids) = figure1();
        let v = tr.full_view();
        let enc = encode(&v, Cop::new(ids[0], ids[1]), opts);
        assert_eq!(enc.cone_events, enc.window_events);
    }

    #[test]
    fn wait_notify_constraints_emitted() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let tok = b.wait_begin(t1, l);
        b.acquire(t2, l);
        let n = b.notify(t2, l);
        b.release(t2, l);
        b.wait_end(tok, Some(n));
        let w1 = b.write(t1, x, 1);
        b.release(t1, l);
        let w2 = b.write(t2, x, 2);
        let tr = b.finish();
        let v = tr.full_view();
        // (w1, w2): w1 is inside t1's re-acquired region, w2 unprotected.
        let enc = encode(&v, Cop::new(w1, w2), EncoderOptions::default());
        let mut s = Solver::new(&enc.fb);
        let res = s.solve(&Budget::UNLIMITED);
        // Whatever the verdict, the notify ordering must hold in any model.
        if res == SmtResult::Sat {
            let o = |e| s.int_value(enc.ovar(e));
            let wl = tr.wait_links()[0];
            assert!(o(wl.release) < o(n) && o(n) < o(wl.acquire));
        }
    }
}
