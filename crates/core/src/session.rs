//! Multi-tenant detection sessions over a shared solver worker pool.
//!
//! The building blocks of the `rvserved` daemon: a [`SessionManager`] owns
//! one pool of solver workers for the whole process, and each concurrent
//! trace stream gets a [`Session`] — its own incremental parser, window
//! cursor, confirmed-signature state and private [`Metrics`] registry. The
//! failure domain is the session, never the process:
//!
//! * **Isolation** — a window solve that panics degrades to a
//!   [`FailedWindow`](crate::report::FailedWindow) record in *its* session's
//!   report (the PR 2 path); a session torn down mid-stream (disconnect,
//!   idle timeout, client kill) retires its queued work and leaves a
//!   deterministic [`SessionError`] record, without touching neighbors.
//! * **Fairness** — the scheduler round-robins over sessions with pending
//!   windows, so one firehose tenant cannot starve the others.
//! * **Backpressure** — a session may keep at most
//!   [`SessionConfig::max_resident_windows`] windows in flight; past that,
//!   *its own* ingest blocks until a result merges. Slow solving stalls
//!   only the stream that caused it.
//! * **Degradation** — when the pool's total backlog exceeds the shed
//!   threshold, newly submitted windows are shed: solved with an
//!   already-expired window deadline, so every COP degrades to
//!   `Undecided(Timeout)` through exactly the `--timeout-ms` verdict path,
//!   and the session's report says so instead of the queue growing
//!   unboundedly.
//!
//! # Determinism
//!
//! A session's merged report is byte-identical (summary and count-type
//! metrics) to running the same trace through the standalone drivers, at
//! any worker count and any co-tenant mix: windows are solved as pure
//! functions of their view via [`RaceDetector::solve_window_result`] and
//! merged in window order via [`RaceDetector::merge_window_result`], with
//! a per-session published-signature set — the same solve-then-merge
//! protocol as `detect`/`detect_pipelined`/`detect_stream`. (Shedding and
//! real wall-clock window budgets are by nature load-dependent; the
//! contract holds whenever they do not fire.)
//!
//! # Examples
//!
//! ```
//! use rvcore::{SessionConfig, SessionManager};
//! use rvtrace::{to_ndjson, ThreadId, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! let t2 = b.fork(ThreadId::MAIN);
//! b.write(ThreadId::MAIN, x, 1);
//! b.read(t2, x, 1);
//! let trace = b.finish();
//!
//! let manager = SessionManager::new(2);
//! let mut session = manager.open_session(SessionConfig::default());
//! session.feed(to_ndjson(&trace).as_bytes()).unwrap();
//! let outcome = session.finish().unwrap();
//! assert_eq!(outcome.report.n_races(), 1);
//! ```

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rvtrace::{
    salvage_trace, validate_wait_links, BoundaryTracker, IngestStats, JsonError, RaceSignature,
    SalvageReport, StraddlePlan, StreamParser, Trace, WindowBoundary,
};

use crate::config::{DetectorConfig, WindowMode};
use crate::detector::{panic_reason, PublishedSet, RaceDetector, WindowResult};
use crate::metrics::Metrics;
use crate::report::DetectionReport;

/// Per-tenant configuration: the detector settings this stream runs under
/// (window size, budgets, slicing/tier toggles, fault plan — exactly the
/// standalone CLI's knobs) plus the session-level budgets.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The detector configuration for this stream. `parallelism` is
    /// ignored — the pool is the manager's.
    pub detector: DetectorConfig,
    /// Salvage a damaged trace instead of failing the parse. Lenient
    /// sessions buffer the whole stream, salvage at end-of-input, and then
    /// dispatch every window through the shared pool (mirroring the CLI's
    /// `--lenient` semantics, which need the full trace before repair).
    pub lenient: bool,
    /// Backpressure: the most windows this session may have submitted but
    /// not yet merged. Ingest blocks (stalling only this stream) once the
    /// cap is reached.
    pub max_resident_windows: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            detector: DetectorConfig::default(),
            lenient: false,
            max_resident_windows: 32,
        }
    }
}

/// The deterministic record of a torn-down session: which session died and
/// why (a panic message, an idle timeout, a mid-stream disconnect). The
/// record depends only on the failure itself, never on co-tenant timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionError {
    /// The session's id within its manager.
    pub session: u64,
    /// Human-readable teardown reason.
    pub reason: String,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {} torn down: {}", self.session, self.reason)
    }
}

impl std::error::Error for SessionError {}

/// Everything a completed session hands back: the reconstructed trace, the
/// merged report, ingestion counters, the salvage report (lenient mode
/// only) and the session's private metrics registry.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The complete trace, as reconstructed from the stream.
    pub trace: Trace,
    /// The merged detection report — byte-identical (summary and
    /// count-type metrics) to the standalone drivers on the same trace.
    pub report: DetectionReport,
    /// Bytes, events and parse time of the ingestion.
    pub ingest: IngestStats,
    /// The salvage diagnostics, for lenient sessions.
    pub salvage: Option<SalvageReport>,
    /// Windows shed to `Undecided(Timeout)` under pool saturation.
    pub shed_windows: u64,
    /// The session's private metrics registry (`session.*` family).
    pub metrics: Metrics,
}

/// One queued window solve. Carries everything the worker needs, so
/// workers never reach into session state: a retired session simply stops
/// receiving results (the sender errors are ignored).
struct SessionJob {
    session: u64,
    index: usize,
    range: Range<usize>,
    boundary: WindowBoundary,
    /// The window's straddle plan (cone mode only) — computed by the
    /// session's sequential tracker, so it is identical to the standalone
    /// drivers' plans regardless of pool size or co-tenant mix.
    plan: Option<StraddlePlan>,
    trace: Arc<Trace>,
    detector: Arc<RaceDetector>,
    shed_detector: Arc<RaceDetector>,
    published: Arc<PublishedSet>,
    out: mpsc::Sender<WindowResult>,
    shed: bool,
}

/// The scheduler: per-session FIFO queues plus a round-robin rotation of
/// sessions that currently have work. Invariant: a session id is in `rr`
/// exactly when its queue is non-empty.
#[derive(Default)]
struct Sched {
    queues: HashMap<u64, VecDeque<SessionJob>>,
    rr: VecDeque<u64>,
    total_pending: usize,
    shutdown: bool,
}

impl Sched {
    fn push_job(&mut self, job: SessionJob) {
        let q = self.queues.entry(job.session).or_default();
        if q.is_empty() {
            self.rr.push_back(job.session);
        }
        q.push_back(job);
        self.total_pending += 1;
    }

    /// Pops the next job fairly: the head-of-rotation session gives up one
    /// window and, if it still has more, goes to the back of the line.
    fn pop_job(&mut self) -> Option<SessionJob> {
        let id = self.rr.pop_front()?;
        let q = self.queues.get_mut(&id)?;
        let job = q.pop_front()?;
        if q.is_empty() {
            self.queues.remove(&id);
        } else {
            self.rr.push_back(id);
        }
        self.total_pending -= 1;
        Some(job)
    }

    /// Drops every queued job of a torn-down session.
    fn retire(&mut self, id: u64) {
        if let Some(q) = self.queues.remove(&id) {
            self.total_pending -= q.len();
        }
        self.rr.retain(|&x| x != id);
    }
}

/// State shared between the manager handle, its sessions and the workers.
struct PoolShared {
    sched: Mutex<Sched>,
    ready: Condvar,
    shed_threshold: usize,
    next_id: AtomicU64,
}

impl PoolShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One shared solver worker pool plus the session factory. Dropping the
/// manager shuts the pool down (any still-open session's in-flight windows
/// then merge as failed — don't do that outside of teardown tests).
pub struct SessionManager {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionManager")
            .field("workers", &self.workers.len())
            .field("shed_threshold", &self.shared.shed_threshold)
            .finish()
    }
}

impl SessionManager {
    /// A pool of `workers` solver threads with a generous shed threshold
    /// (`workers * 64` pending windows) that healthy workloads never hit.
    pub fn new(workers: usize) -> Self {
        SessionManager::with_shed_threshold(workers, workers.max(1) * 64)
    }

    /// A pool with an explicit saturation threshold: once the pool-wide
    /// backlog reaches `shed_threshold` queued windows, newly submitted
    /// windows are shed to `Undecided(Timeout)` instead of queueing.
    pub fn with_shed_threshold(workers: usize, shed_threshold: usize) -> Self {
        let shared = Arc::new(PoolShared {
            sched: Mutex::new(Sched::default()),
            ready: Condvar::new(),
            shed_threshold,
            next_id: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        SessionManager { shared, workers }
    }

    /// The number of solver workers in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Opens a session: a fresh parser, window cursor, published set and
    /// metrics registry, multiplexed onto the shared pool.
    pub fn open_session(&self, config: SessionConfig) -> Session {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let mut detector_cfg = config.detector.clone();
        // The pool is the parallelism; a session never spawns workers.
        detector_cfg.parallelism = 1;
        let shed_cfg = DetectorConfig {
            // An already-expired window deadline: every COP takes the
            // `--timeout-ms` path without a single solver call.
            window_timeout: Some(Duration::ZERO),
            ..detector_cfg.clone()
        };
        let (out_tx, out_rx) = mpsc::channel();
        let mut metrics = Metrics::new();
        // Session bookkeeping lives in the *gauges* section: a daemon
        // response merges this registry into the CLI-identical metrics
        // document, and the count-type sections (counters, histograms)
        // must stay byte-identical to a solo run's.
        metrics.gauge_max("session.opened", 1);
        Session {
            id,
            shared: self.shared.clone(),
            detector: Arc::new(RaceDetector::with_config(detector_cfg)),
            shed_detector: Arc::new(RaceDetector::with_config(shed_cfg)),
            config,
            parser: StreamParser::new(),
            boundary: None,
            tracker: None,
            next_start: 0,
            next_index: 0,
            submitted: 0,
            received: 0,
            merge_cursor: 0,
            peak_resident: 0,
            shed_windows: 0,
            published: Arc::new(PublishedSet::new()),
            out_tx,
            out_rx,
            report: DetectionReport::default(),
            confirmed: HashSet::new(),
            pending: BTreeMap::new(),
            metrics,
            start: Instant::now(),
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        {
            let mut s = self.shared.lock();
            s.shutdown = true;
            // Queued work of sessions that outlive the manager is dropped;
            // their receivers see the results never arrive and fail the
            // windows at drain time.
            s.queues.clear();
            s.rr.clear();
            s.total_pending = 0;
        }
        self.ready_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl SessionManager {
    fn ready_all(&self) {
        self.shared.ready.notify_all();
    }
}

/// The pool worker: pop fairly, solve under panic isolation, post the
/// result to the owning session. A panic anywhere — view construction
/// included — becomes that window's `Failed` record; the worker and its
/// neighbors keep running.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut s = shared.lock();
            loop {
                if let Some(job) = s.pop_job() {
                    break job;
                }
                if s.shutdown {
                    return;
                }
                s = shared.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let SessionJob {
            index,
            range,
            boundary,
            plan,
            trace,
            detector,
            shed_detector,
            published,
            out,
            shed,
            ..
        } = job;
        let fallback_range = range.clone();
        let solve = std::panic::AssertUnwindSafe(|| {
            let det = if shed { &shed_detector } else { &detector };
            let view = boundary.view(&trace, range);
            det.solve_window_result(index, &view, plan.as_ref(), Some(&published))
        });
        let result = std::panic::catch_unwind(solve).unwrap_or_else(|payload| {
            WindowResult::failed(index, fallback_range, panic_reason(payload.as_ref()))
        });
        // A retired session dropped its receiver; nobody wants the result.
        let _ = out.send(result);
    }
}

/// One tenant's detection stream: feed it chunks as they arrive, then
/// [`finish`](Session::finish) for the merged outcome — or
/// [`abort`](Session::abort) to tear it down. Dropping a session retires
/// its queued work from the scheduler either way.
pub struct Session {
    id: u64,
    shared: Arc<PoolShared>,
    detector: Arc<RaceDetector>,
    shed_detector: Arc<RaceDetector>,
    config: SessionConfig,
    parser: StreamParser,
    boundary: Option<WindowBoundary>,
    /// The straddle tracker (cone mode only), advanced in lockstep with
    /// `boundary` as windows are dispatched.
    tracker: Option<BoundaryTracker>,
    next_start: usize,
    next_index: usize,
    submitted: usize,
    received: usize,
    merge_cursor: usize,
    peak_resident: usize,
    shed_windows: u64,
    published: Arc<PublishedSet>,
    out_tx: mpsc::Sender<WindowResult>,
    out_rx: mpsc::Receiver<WindowResult>,
    report: DetectionReport,
    confirmed: HashSet<RaceSignature>,
    pending: BTreeMap<usize, WindowResult>,
    metrics: Metrics,
    start: Instant,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("submitted", &self.submitted)
            .field("merged", &self.merge_cursor)
            .finish()
    }
}

impl Session {
    /// The session's id within its manager (stable teardown identity).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Windows submitted but not yet merged.
    fn in_flight(&self) -> usize {
        self.submitted - self.received
    }

    /// Feeds the next chunk of the stream. Strict sessions dispatch every
    /// newly completed window to the pool before returning; lenient
    /// sessions buffer (salvage needs the whole trace). A parse error is
    /// fatal to the session — same message, offset and snippet as the
    /// whole-file parser.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), JsonError> {
        self.parser.feed(chunk)?;
        if !self.config.lenient {
            self.dispatch_ready();
        }
        Ok(())
    }

    /// Dispatches every complete window the parser has accumulated,
    /// mirroring `detect_stream`: gated on the metadata (boundary state
    /// needs the initial values), solving against prefix snapshots.
    fn dispatch_ready(&mut self) {
        let size = self.detector.config().window_size.max(1);
        if !self.parser.metadata_complete() || self.parser.events().len() < self.next_start + size {
            return;
        }
        let snapshot = Arc::new(Trace::from_data(self.parser.data().clone()));
        let mut boundary = self.boundary.take().unwrap_or_else(|| {
            WindowBoundary::from_initial_values(&snapshot.data().initial_values)
        });
        if self.cone_mode() && self.tracker.is_none() {
            self.tracker = Some(BoundaryTracker::new(
                WindowBoundary::from_initial_values(&snapshot.data().initial_values),
                self.detector.config().spill_events(),
            ));
        }
        while self.next_start + size <= snapshot.len() {
            let range = self.next_start..self.next_start + size;
            let job_boundary = boundary.clone();
            let plan = self.tracker.as_ref().and_then(|t| {
                t.plan(snapshot.events(), range.clone(), |v| {
                    snapshot.is_volatile(v)
                })
            });
            if let Some(t) = self.tracker.as_mut() {
                t.advance(snapshot.events(), range.clone());
            }
            boundary.advance(snapshot.events(), range.clone());
            self.next_start += size;
            self.submit(range, job_boundary, plan, snapshot.clone());
        }
        self.boundary = Some(boundary);
    }

    /// True when cross-boundary prediction (`--window-mode cone`) is on
    /// for this session's detector.
    fn cone_mode(&self) -> bool {
        self.detector.config().window_mode == WindowMode::Cone
    }

    /// Submits one window to the pool, applying backpressure first: while
    /// this session is at its residency cap, block merging its own results
    /// (stalling only this stream's ingest).
    fn submit(
        &mut self,
        range: Range<usize>,
        boundary: WindowBoundary,
        plan: Option<StraddlePlan>,
        trace: Arc<Trace>,
    ) {
        while self.in_flight() >= self.config.max_resident_windows.max(1) {
            let result = self
                .out_rx
                .recv()
                .expect("solver pool shut down with windows in flight");
            self.absorb(result);
        }
        let shed = {
            let mut s = self.shared.lock();
            let shed = s.total_pending >= self.shared.shed_threshold;
            s.push_job(SessionJob {
                session: self.id,
                index: self.next_index,
                range,
                boundary,
                plan,
                trace,
                detector: self.detector.clone(),
                shed_detector: self.shed_detector.clone(),
                published: self.published.clone(),
                out: self.out_tx.clone(),
                shed,
            });
            self.shared.ready.notify_one();
            shed
        };
        if shed {
            self.shed_windows += 1;
        }
        self.next_index += 1;
        self.submitted += 1;
        self.peak_resident = self.peak_resident.max(self.in_flight());
    }

    /// Buffers one result and merges everything now contiguous, in window
    /// order — the replay that keeps reports deterministic.
    fn absorb(&mut self, result: WindowResult) {
        self.received += 1;
        self.pending.insert(result.window_index(), result);
        while let Some(result) = self.pending.remove(&self.merge_cursor) {
            self.detector.merge_window_result(
                result,
                &mut self.report,
                &mut self.confirmed,
                Some(&self.published),
            );
            self.merge_cursor += 1;
        }
        if self.report.stats.time_to_first_race.is_none() && !self.report.races.is_empty() {
            self.report.stats.time_to_first_race = Some(self.start.elapsed());
        }
    }

    /// Blocks until every submitted window has merged.
    fn drain(&mut self) {
        while self.received < self.submitted {
            let result = self
                .out_rx
                .recv()
                .expect("solver pool shut down with windows in flight");
            self.absorb(result);
        }
        debug_assert!(self.pending.is_empty(), "every window outcome merged");
    }

    /// Ends the stream: completes the parse, dispatches the tail window,
    /// waits for every in-flight window and returns the merged outcome.
    /// Strict sessions validate wait links exactly like the whole-file
    /// reader; lenient sessions salvage the damaged trace first and then
    /// solve the repaired one through the same pool.
    pub fn finish(mut self) -> Result<SessionOutcome, JsonError> {
        self.parser.finish()?;
        let ingest = self.parser.stats();
        let parser = std::mem::take(&mut self.parser);
        let (trace, salvage) = if self.config.lenient {
            let (trace, report) = salvage_trace(parser.into_data());
            (Arc::new(trace), Some(report))
        } else {
            validate_wait_links(parser.data())?;
            (Arc::new(Trace::from_data(parser.into_data())), None)
        };
        let size = self.detector.config().window_size.max(1);
        let mut boundary = self
            .boundary
            .take()
            .unwrap_or_else(|| WindowBoundary::from_initial_values(&trace.data().initial_values));
        if self.cone_mode() && self.tracker.is_none() {
            self.tracker = Some(BoundaryTracker::new(
                WindowBoundary::from_initial_values(&trace.data().initial_values),
                self.detector.config().spill_events(),
            ));
        }
        while self.next_start < trace.len() {
            let end = (self.next_start + size).min(trace.len());
            let range = self.next_start..end;
            let job_boundary = boundary.clone();
            let plan = self
                .tracker
                .as_ref()
                .and_then(|t| t.plan(trace.events(), range.clone(), |v| trace.is_volatile(v)));
            if let Some(t) = self.tracker.as_mut() {
                t.advance(trace.events(), range.clone());
            }
            boundary.advance(trace.events(), range.clone());
            self.next_start = end;
            self.submit(range, job_boundary, plan, trace.clone());
        }
        self.drain();
        let mut report = std::mem::take(&mut self.report);
        report.stats.peak_window_residency = self.peak_resident;
        report.stats.wall_time = self.start.elapsed();
        self.metrics
            .gauge_max("session.windows", self.submitted as u64);
        self.metrics
            .gauge_max("session.shed_windows", self.shed_windows);
        // Spill residency: the deepest any window's straddle pass reached
        // back, in events. Counted against the session, not the pool —
        // extended views are rebuilt per solve, never kept resident.
        if report.stats.spill_peak_events > 0 {
            self.metrics.gauge_max(
                "session.spill_peak_events",
                report.stats.spill_peak_events as u64,
            );
        }
        self.metrics
            .gauge_max("session.peak_resident_windows", self.peak_resident as u64);
        let metrics = std::mem::take(&mut self.metrics);
        // Workers hold no snapshot past their solve; after the drain this
        // session's Arcs are the last ones standing.
        let trace = Arc::try_unwrap(trace).unwrap_or_else(|a| (*a).clone());
        Ok(SessionOutcome {
            trace,
            report,
            ingest,
            salvage,
            shed_windows: self.shed_windows,
            metrics,
        })
    }

    /// Tears the session down mid-stream (disconnect, idle timeout, client
    /// kill): retires its queued windows from the scheduler and returns
    /// the deterministic teardown record. In-flight results are dropped on
    /// the floor; neighbors never notice.
    pub fn abort(self, reason: impl Into<String>) -> SessionError {
        SessionError {
            session: self.id,
            reason: reason.into(),
        }
        // Drop retires the scheduler queue.
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.shared.lock().retire(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{to_ndjson, ThreadId, TraceBuilder};

    /// A multi-window trace with exactly one racy COP near the head.
    fn racy_trace(iters: usize) -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t2 = b.fork(ThreadId::MAIN);
        b.write(ThreadId::MAIN, x, 1);
        b.read(t2, x, 1);
        for i in 0..iters {
            b.acquire(ThreadId::MAIN, l);
            b.write(ThreadId::MAIN, x, i as i64);
            b.release(ThreadId::MAIN, l);
            b.acquire(t2, l);
            b.read(t2, x, i as i64);
            b.release(t2, l);
        }
        b.finish()
    }

    fn config(window: usize) -> SessionConfig {
        SessionConfig {
            detector: DetectorConfig {
                window_size: window,
                ..DetectorConfig::default()
            },
            ..SessionConfig::default()
        }
    }

    #[test]
    fn session_report_matches_standalone_detect() {
        let trace = racy_trace(120);
        let bytes = to_ndjson(&trace);
        let manager = SessionManager::new(3);
        let mut session = manager.open_session(config(50));
        for chunk in bytes.as_bytes().chunks(97) {
            session.feed(chunk).unwrap();
        }
        let outcome = session.finish().unwrap();
        let mut cfg = DetectorConfig {
            window_size: 50,
            ..DetectorConfig::default()
        };
        cfg.parallelism = 1;
        let solo = RaceDetector::with_config(cfg).detect(&trace);
        assert_eq!(
            outcome.report.deterministic_summary(),
            solo.deterministic_summary()
        );
        assert_eq!(outcome.trace.len(), trace.len());
    }

    #[test]
    fn sessions_are_isolated_from_neighbor_aborts() {
        let trace = racy_trace(60);
        let bytes = to_ndjson(&trace);
        let manager = SessionManager::new(2);
        let mut keep = manager.open_session(config(40));
        let mut kill = manager.open_session(config(40));
        let half = bytes.len() / 2;
        keep.feed(&bytes.as_bytes()[..half]).unwrap();
        kill.feed(&bytes.as_bytes()[..half]).unwrap();
        let err = kill.abort("client disconnected");
        assert_eq!(err.reason, "client disconnected");
        keep.feed(&bytes.as_bytes()[half..]).unwrap();
        let outcome = keep.finish().unwrap();
        let mut cfg = DetectorConfig {
            window_size: 40,
            ..DetectorConfig::default()
        };
        cfg.parallelism = 1;
        let solo = RaceDetector::with_config(cfg).detect(&trace);
        assert_eq!(
            outcome.report.deterministic_summary(),
            solo.deterministic_summary()
        );
    }

    #[test]
    fn saturation_sheds_to_undecided_instead_of_queueing() {
        let trace = racy_trace(200);
        let bytes = to_ndjson(&trace);
        // Threshold 0: every submitted window is shed.
        let manager = SessionManager::with_shed_threshold(2, 0);
        let mut session = manager.open_session(config(50));
        session.feed(bytes.as_bytes()).unwrap();
        let outcome = session.finish().unwrap();
        assert!(outcome.shed_windows > 0, "every window shed");
        assert_eq!(outcome.report.n_races(), 0, "no solving under shed");
        assert!(outcome.report.is_degraded());
        assert_eq!(
            outcome.report.stats.undecided, outcome.report.stats.cops_solved,
            "every COP degraded to Undecided(Timeout)"
        );
    }

    #[test]
    fn round_robin_pops_alternate_between_sessions() {
        let mut sched = Sched::default();
        let (tx, _rx) = mpsc::channel();
        let trace = Arc::new(racy_trace(1));
        let boundary = WindowBoundary::from_initial_values(&trace.data().initial_values);
        let det = Arc::new(RaceDetector::new());
        let mut push = |session: u64, index: usize| {
            sched.push_job(SessionJob {
                session,
                index,
                range: 0..1,
                boundary: boundary.clone(),
                plan: None,
                trace: trace.clone(),
                detector: det.clone(),
                shed_detector: det.clone(),
                published: Arc::new(PublishedSet::new()),
                out: tx.clone(),
                shed: false,
            });
        };
        // Session 0 floods; session 1 trickles.
        for i in 0..3 {
            push(0, i);
        }
        push(1, 0);
        let order: Vec<(u64, usize)> = std::iter::from_fn(|| sched.pop_job())
            .map(|j| (j.session, j.index))
            .collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (0, 2)]);
        assert_eq!(sched.total_pending, 0);
    }

    #[test]
    fn parse_error_matches_whole_file_reader() {
        let manager = SessionManager::new(1);
        let mut session = manager.open_session(config(10));
        let bad = b"{\"events\": [nope";
        let session_err = session
            .feed(bad)
            .err()
            .or_else(|| session.finish().err())
            .expect("bad stream fails");
        let whole_err = rvtrace::read_trace(&bad[..]).unwrap_err();
        assert_eq!(session_err, whole_err);
    }
}
