//! # rvcore — maximal sound predictive race detection
//!
//! The algorithm of *Maximal Sound Predictive Race Detection with Control
//! Flow Abstraction* (Huang, Meredith, Roşu — PLDI 2014), §3–4:
//!
//! * [`enumerate_cops`] / [`quick_check`] — conflicting-operation-pair
//!   enumeration with the hybrid lockset + weak-HB filter;
//! * [`encode`] — the constraint system `Φ = Φ_mhb ∧ Φ_lock ∧ Φ_race`
//!   over per-event order variables, with the control-flow feasibility
//!   formulas `π_cf`/`cf` that make the technique *maximal* (Thm. 3);
//! * [`extract_witness`] — builds and validates a concrete reordering
//!   (`τ₁ a b`) from each satisfying model, so every reported race ships
//!   with a replayable schedule (soundness, Thm. 1);
//! * [`RaceDetector`] — the windowed driver with signature deduplication
//!   and per-COP solver budgets.
//!
//! The Said et al. baseline (whole-trace read-write consistency, no branch
//! events) is the same machinery under
//! [`ConsistencyMode::WholeTrace`].
//!
//! # Examples
//!
//! ```
//! use rvcore::{DetectorConfig, RaceDetector};
//! use rvtrace::{ThreadId, TraceBuilder};
//!
//! // Two unsynchronized writes to x by different threads.
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! let t2 = b.fork(ThreadId::MAIN);
//! b.write(ThreadId::MAIN, x, 1);
//! b.write(t2, x, 2);
//! let trace = b.finish();
//!
//! let report = RaceDetector::new().detect(&trace);
//! assert_eq!(report.n_races(), 1);
//! // The witness is a validated consistent reordering:
//! println!("{}", report.races[0].display(&trace));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomicity;
mod config;
mod cop;
pub mod deadlock;
mod detector;
mod encoder;
pub mod metrics;
pub mod oracle;
mod report;
pub mod session;
mod slice;
mod tiers;
mod witness;

pub use atomicity::{
    infer_rmw_pairs, AtomicPair, AtomicityDetector, AtomicityReport, AtomicityViolation,
};
pub use config::{
    ConsistencyMode, DetectorConfig, Fault, FaultPlan, WindowMode, SPILL_EVENT_BYTES,
};
pub use cop::{enumerate_cops, quick_check, CopEnumeration, QuickCheckVerdict};
pub use deadlock::{DeadlockCycle, DeadlockDetector, DeadlockReport};
pub use detector::{PublishedSet, RaceDetector, StreamDetection, WindowResult};
pub use encoder::{
    encode, encode_deadlock, encode_window, encode_window_with_skeleton, encode_with_skeleton,
    Encoded, EncodedDeadlock, EncodedWindow, EncoderOptions,
};
pub use metrics::{Histogram, Metrics, PhaseTimer, METRICS_SCHEMA_VERSION};
pub use oracle::{oracle_atomicity, oracle_deadlocks, oracle_races};
pub use report::{
    DetectionReport, DetectionStats, FailedWindow, RaceReport, RaceReportDisplay, SolverTotals,
    UndecidedReason,
};
pub use session::{Session, SessionConfig, SessionError, SessionManager, SessionOutcome};
pub use slice::{Cone, WindowSkeleton};
pub use tiers::{Tier, TierAnalysis, TierDecision};
pub use witness::{extract_witness, extract_witness_with, Witness, WitnessError};
