//! The windowed detection driver (paper §4–5).
//!
//! For each fixed-size window: enumerate COPs, quick-check them, encode the
//! survivors, solve with a per-COP budget, extract and validate a witness on
//! SAT, and deduplicate by signature across the whole run.
//!
//! # Parallel driver
//!
//! Windows are independent solving problems (each gets its own encoder and
//! solver), so [`RaceDetector::detect`] farms them out to a bounded pool of
//! scoped worker threads ([`DetectorConfig::parallelism`]). Determinism is
//! preserved by splitting the work into a *solve* phase and a *merge*
//! phase:
//!
//! * each worker produces a [`WindowOutcome`]: an ordered list of per-COP
//!   records whose content depends only on the window itself (workers never
//!   consult cross-window state when deciding verdicts);
//! * the driver merges outcomes **in window order**, replaying each record
//!   against the authoritative set of confirmed signatures — a record whose
//!   signature was already confirmed (in an earlier window, or earlier in
//!   the same window) is discarded wholesale, exactly as the serial driver
//!   would have skipped it before solving.
//!
//! Speculative work (a worker solving a COP whose signature an earlier,
//! still-unmerged window will confirm) costs time but never changes output.
//! As an optimization, merged signatures are also published through a shared
//! `RwLock<HashSet<_>>` so workers can skip work that is already known
//! redundant. To keep output bit-identical across thread counts the skip is
//! only taken where it cannot perturb any surviving verdict: per COP in
//! per-COP mode (every COP gets a fresh solver), and only for a whole
//! window in batch mode (selector solves share learnt clauses, so dropping
//! one mid-window could change a later model and thus a reported schedule).
//!
//! # Fault tolerance
//!
//! Every window solve runs under [`std::panic::catch_unwind`]: a worker
//! panic (a solver bug, a poisoned window, an injected fault) is converted
//! into a [`WindowOutcome::Failed`] record that merges in window order
//! like any other outcome, so one bad window degrades the report instead
//! of tearing down the whole `std::thread::scope` run. Per-COP budget
//! exhaustion is three-valued: `Undecided(Timeout | ConflictBudget |
//! WorkerPanic | EncodeError)` is tallied in [`DetectionStats`] rather
//! than silently reading as "no race". The shared published-signature set
//! is accessed poison-tolerantly throughout. A deterministic
//! [`FaultPlan`](crate::config::FaultPlan) can inject panics, forced
//! timeouts, and encode errors at chosen (window, COP) coordinates so the
//! robustness suite can prove the merge stays byte-identical across
//! thread counts *under faults*.
//!
//! [`DetectionStats`]: crate::report::DetectionStats

use std::collections::{BTreeMap, HashSet};
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use rvsmt::{Budget, SmtResult, Solver, StopReason};
use rvtrace::{
    validate_wait_links, BoundaryTracker, Cop, IngestStats, JsonError, RaceSignature, Schedule,
    StraddlePlan, StreamParser, Trace, View, ViewExt, WindowBoundary,
};

use crate::config::{DetectorConfig, Fault, WindowMode};
use crate::cop::enumerate_cops;
use crate::encoder::{encode, encode_window, encode_with_skeleton, EncoderOptions};
use crate::report::{DetectionReport, FailedWindow, RaceReport, SolverTotals, UndecidedReason};
use crate::slice::WindowSkeleton;
use crate::tiers::{Tier, TierAnalysis, TierDecision};
use crate::witness::{extract_witness, Witness};

/// How one COP fared inside a worker. `Skipped` records mark COPs the
/// worker never solved because their signature was locally confirmed
/// earlier in the window or already published by the merge loop; the merge
/// replay discards them (their signature is always confirmed by then).
#[derive(Debug)]
enum CopVerdict {
    Skipped,
    Unsat,
    /// No verdict: the budget ran out, encoding failed, or a fault was
    /// injected. The reason is tallied honestly in the report.
    Undecided(UndecidedReason),
    WitnessFailed,
    /// SAT with a certified (or trivially assembled, when validation is
    /// off) witness schedule.
    Race(Schedule),
}

/// One solved (or skipped) COP, in the window's solve order.
///
/// `profile` and `retried` ride along with the verdict so the merge loop
/// can tally solver effort for *surviving* records only — a speculative
/// solve whose record the dedup replay discards contributes nothing, which
/// is what keeps the count-type metrics byte-identical across thread
/// counts.
#[derive(Debug)]
struct CopRecord {
    cop: Cop,
    signature: RaceSignature,
    verdict: CopVerdict,
    /// SAT-core effort spent on this COP (all its solver invocations;
    /// zero for skipped and fault-forced records).
    profile: SolverTotals,
    /// Whether the split-window retry policy re-solved this COP.
    retried: bool,
    /// Events the COP's encoding actually constrained (its cone of
    /// influence; the whole window with slicing off). Zero for skipped
    /// and fault-forced records, which encode nothing.
    cone_events: usize,
    /// Events in the window the COP was encoded against (zero when
    /// nothing was encoded). Tallied at merge for surviving records
    /// only, like `profile`.
    window_events: usize,
    /// Asserted constraints in the COP's formula (zero when nothing was
    /// encoded).
    constraints: usize,
    /// Which cascade stage decided this COP: `Tier::A`/`Tier::B` for the
    /// pre-solver screens, `Tier::Solver` for the residue (and for
    /// fault-forced verdicts, which bypass the screens so planned fault
    /// coordinates always take effect). `None` for skipped records and
    /// whenever the cascade is disabled.
    decided_by: Option<Tier>,
    /// For boundary-straddling COPs (`--window-mode cone`): the extended
    /// view range the verdict was solved on, reported as the race's
    /// window. `None` for every in-window record.
    ext_range: Option<std::ops::Range<usize>>,
}

/// Everything a worker learned about one window; merged in window order.
#[derive(Debug)]
struct SolvedWindow {
    window_index: usize,
    range: std::ops::Range<usize>,
    pairs_considered: usize,
    qc_signatures: usize,
    records: Vec<CopRecord>,
    /// Encode + solve time inside this window.
    solver_time: Duration,
    /// Total worker time on this window (enumerate + encode + solve).
    window_time: Duration,
    /// Time inside the Tier A confirmation screen.
    tier_a_time: Duration,
    /// Time inside the Tier B refutation screen (including the base
    /// entailment graph construction).
    tier_b_time: Duration,
    /// Events this window's straddle pass reached back beyond the window
    /// start (zero without a straddle plan). Deterministic: a pure
    /// function of the trace prefix and the spill budget.
    spill_events: usize,
}

/// What a worker hands to the merge loop: the window's records, or — when
/// the solve panicked — a failure record. Both merge in window order, so a
/// poisoned window degrades the report deterministically instead of
/// aborting the run.
#[derive(Debug)]
enum WindowOutcome {
    Solved(SolvedWindow),
    Failed(FailedWindow),
}

impl WindowOutcome {
    fn window_index(&self) -> usize {
        match self {
            WindowOutcome::Solved(s) => s.window_index,
            WindowOutcome::Failed(f) => f.window_index,
        }
    }
}

/// An opaque solved-window result: produced by
/// [`RaceDetector::solve_window_result`], consumed (in window order) by
/// [`RaceDetector::merge_window_result`]. These are the two halves of the
/// solve-then-merge protocol every built-in driver runs; exposing them
/// lets an external driver — the multi-tenant session layer — schedule
/// the solves on its own worker pool while keeping the merged report
/// byte-identical to the built-in drivers.
#[derive(Debug)]
pub struct WindowResult(WindowOutcome);

impl WindowResult {
    /// The window index this result belongs to (the merge-order key).
    pub fn window_index(&self) -> usize {
        self.0.window_index()
    }

    /// A synthetic failure result for a window whose solve never
    /// completed (e.g. a worker that died outside the isolated solve).
    /// Merges exactly like a window poisoned by an in-solve panic.
    pub fn failed(window_index: usize, range: std::ops::Range<usize>, reason: String) -> Self {
        WindowResult(WindowOutcome::Failed(FailedWindow {
            window_index,
            range,
            reason,
        }))
    }
}

/// Renders a panic payload for a [`FailedWindow`] record.
pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps a solver budget exhaustion to its verdict accounting.
fn undecided_of_stop(reason: StopReason) -> UndecidedReason {
    match reason {
        StopReason::Timeout => UndecidedReason::Timeout,
        StopReason::Conflicts => UndecidedReason::ConflictBudget,
        // Cancelled results carry no verdict and are discarded by the
        // portfolio driver before they can reach a record; this arm is
        // defensive (a cancellation is budget-shaped, so account it as
        // one if it ever leaks).
        StopReason::Cancelled => UndecidedReason::Timeout,
    }
}

/// The record of a Tier B refutation: `Φ` is entailment-unsatisfiable, so
/// the verdict is exactly the solver's `Unsat` — with no encoding and no
/// solver effort to account.
fn tier_refuted_record(cop: Cop, signature: RaceSignature) -> CopRecord {
    CopRecord {
        cop,
        signature,
        verdict: CopVerdict::Unsat,
        profile: SolverTotals::default(),
        retried: false,
        cone_events: 0,
        window_events: 0,
        constraints: 0,
        decided_by: Some(Tier::B),
        ext_range: None,
    }
}

/// True once the window's wall-clock deadline (if any) has passed.
fn past_deadline(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// The per-COP solver budget under a window deadline: the configured
/// budget clamped to the window's remaining wall-clock, so a COP started
/// near the deadline cannot overshoot the window budget by a whole
/// per-COP budget.
fn clamp_budget(budget: &Budget, deadline: Option<Instant>) -> Budget {
    let Some(d) = deadline else { return *budget };
    let remaining = d.saturating_duration_since(Instant::now());
    Budget {
        timeout: Some(budget.timeout.map_or(remaining, |t| t.min(remaining))),
        ..*budget
    }
}

/// The record of a COP reached after the window deadline expired: the
/// exact `Undecided(Timeout)` record a per-COP budget exhaustion leaves,
/// with no encoding and no solver effort to account.
fn deadline_expired_record(cop: Cop, signature: RaceSignature, cascade_on: bool) -> CopRecord {
    CopRecord {
        cop,
        signature,
        verdict: CopVerdict::Undecided(UndecidedReason::Timeout),
        profile: SolverTotals::default(),
        retried: false,
        cone_events: 0,
        window_events: 0,
        constraints: 0,
        decided_by: cascade_on.then_some(Tier::Solver),
        ext_range: None,
    }
}

/// Signatures confirmed by a merge loop, readable by in-flight workers.
///
/// Internal to the built-in drivers historically; public so external
/// drivers (the multi-tenant session layer) can run the same
/// solve-then-merge protocol with the same early-skip optimization. The
/// set is only ever used to *skip* solves whose records the merge replay
/// is guaranteed to discard, so sharing it never changes merged output.
#[derive(Debug, Default)]
pub struct PublishedSet(RwLock<HashSet<RaceSignature>>);

impl PublishedSet {
    /// An empty set.
    pub fn new() -> Self {
        PublishedSet::default()
    }
}

/// Signatures confirmed by the merge loop, readable by in-flight workers.
type Published = PublishedSet;

/// One window of streamed detection work: the window's range, the boundary
/// state (lock/value carry) at its start, and an [`Arc`] snapshot of a
/// trace *prefix* that covers it. A window's view — and therefore its SMT
/// encoding and verdicts — is a pure function of the window's own events
/// plus the boundary, so solving against any prefix that reaches the
/// window's end is byte-identical to solving against the full trace.
struct StreamJob {
    index: usize,
    range: std::ops::Range<usize>,
    boundary: WindowBoundary,
    trace: Arc<Trace>,
    /// The window's straddle plan (cone mode only). Like the boundary, a
    /// pure function of the event prefix, so streamed plans are identical
    /// to the whole-file drivers'.
    plan: Option<StraddlePlan>,
}

/// The result of [`RaceDetector::detect_stream`]: the fully ingested
/// trace, the detection report, and the ingestion counters.
#[derive(Debug)]
pub struct StreamDetection {
    /// The complete trace, as reconstructed from the stream.
    pub trace: Trace,
    /// The detection report — byte-identical (summary and count-type
    /// metrics) to `detect` on the same trace, at every worker count.
    pub report: DetectionReport,
    /// Bytes, events and parse time of the ingestion.
    pub ingest: IngestStats,
}

/// Bytes read from the input per pump round.
const STREAM_CHUNK: usize = 64 * 1024;

/// Converts an I/O failure into the ingestion error type.
fn io_error(bytes_fed: usize, e: std::io::Error) -> JsonError {
    JsonError {
        message: format!("read error: {e}"),
        offset: bytes_fed,
        snippet: String::new(),
    }
}

/// Records the time of the first merged race, once.
fn note_first_race(report: &mut DetectionReport, start: Instant) {
    if report.stats.time_to_first_race.is_none() && !report.races.is_empty() {
        report.stats.time_to_first_race = Some(start.elapsed());
    }
}

/// The maximal sound predictive race detector.
///
/// # Examples
///
/// Detect the paper's Figure 1 race:
///
/// ```
/// use rvcore::RaceDetector;
/// use rvtrace::{ThreadId, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// let t2 = b.fork(ThreadId::MAIN);
/// b.write(ThreadId::MAIN, x, 1);
/// b.read(t2, x, 1);
/// let trace = b.finish();
///
/// let report = RaceDetector::new().detect(&trace);
/// assert_eq!(report.n_races(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RaceDetector {
    config: DetectorConfig,
}

impl RaceDetector {
    /// A detector with the paper's default configuration.
    pub fn new() -> Self {
        RaceDetector {
            config: DetectorConfig::default(),
        }
    }

    /// A detector with an explicit configuration.
    pub fn with_config(config: DetectorConfig) -> Self {
        RaceDetector { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// True when cross-boundary prediction (`--window-mode cone`) is on.
    fn cone_mode(&self) -> bool {
        self.config.window_mode == WindowMode::Cone
    }

    /// The straddle plan for every window of `trace`, computed by one
    /// sequential [`BoundaryTracker`] sweep. Plans are pure functions of
    /// the trace prefix and the spill budget, so every driver — eager,
    /// pipelined, streamed, session — derives identical plans at every
    /// worker count. All-`None` in fixed mode (and for every window whose
    /// COPs all sit inside their own window, which keeps the non-straddling
    /// fast path byte-identical to fixed mode).
    fn window_plans(&self, trace: &Trace) -> Vec<Option<StraddlePlan>> {
        let size = self.config.window_size.max(1);
        if !self.cone_mode() {
            return (0..trace.len().div_ceil(size)).map(|_| None).collect();
        }
        let mut tracker =
            BoundaryTracker::new(WindowBoundary::initial(trace), self.config.spill_events());
        let mut plans = Vec::with_capacity(trace.len().div_ceil(size));
        let mut start = 0usize;
        while start < trace.len() {
            let end = (start + size).min(trace.len());
            plans.push(tracker.plan(trace.events(), start..end, |v| trace.is_volatile(v)));
            tracker.advance(trace.events(), start..end);
            start = end;
        }
        plans
    }

    /// Runs detection over the whole trace, window by window.
    ///
    /// With `config.parallelism == 1` windows are solved inline; otherwise
    /// a scoped pool of worker threads claims windows from a shared
    /// counter. Either way outcomes are merged in window order, so races,
    /// signatures and verdict counters are identical for every thread
    /// count (wall-clock timings, of course, are not).
    pub fn detect(&self, trace: &Trace) -> DetectionReport {
        let start = Instant::now();
        let mut report = DetectionReport::default();
        let mut confirmed: HashSet<RaceSignature> = HashSet::new();
        let workers = self.config.parallelism.max(1);
        // Eager windowing: every view is materialized up front, so the
        // whole run's window state is resident at once (cf. the bounded
        // `detect_pipelined`/`detect_stream` drivers).
        let views: Vec<View<'_>> = trace.windows(self.config.window_size);
        let plans = self.window_plans(trace);
        report.stats.peak_window_residency = views.len();
        if workers == 1 {
            // Inline solve-then-merge per window. The published set is
            // always fully caught up here, so the early-skip rules fire
            // exactly as in the historical serial driver.
            let published: Published = PublishedSet::new();
            for (index, view) in views.iter().enumerate() {
                let plan = plans.get(index).and_then(Option::as_ref);
                let outcome = self.solve_window_isolated(index, view, plan, Some(&published));
                self.merge_outcome(outcome, &mut report, &mut confirmed, Some(&published));
                note_first_race(&mut report, start);
            }
        } else {
            // The window carry (lock/value state at each window boundary)
            // forces view *construction* to stay sequential; only solving
            // fans out.
            self.detect_parallel(&views, &plans, workers, &mut report, &mut confirmed, start);
        }
        report.stats.wall_time = start.elapsed();
        report
    }

    /// Runs detection over a single pre-built view (used by benchmarks and
    /// by the baselines that share this driver).
    pub fn detect_in_window(&self, view: &View<'_>) -> DetectionReport {
        let start = Instant::now();
        let mut report = DetectionReport::default();
        let mut confirmed = HashSet::new();
        let outcome = self.solve_window_isolated(0, view, None, None);
        self.merge_outcome(outcome, &mut report, &mut confirmed, None);
        report.stats.wall_time = start.elapsed();
        report
    }

    /// Like [`RaceDetector::detect`], but windows are built lazily from a
    /// [`WindowStream`] and handed to the workers through a bounded queue,
    /// so at most `parallelism + queue` window views are resident at once
    /// instead of all of them. Output is byte-identical to `detect` —
    /// summary and count-type metrics — at every worker count; only the
    /// `peak_window_residency` gauge and the wall-clock timings differ.
    pub fn detect_pipelined(&self, trace: &Trace) -> DetectionReport {
        let start = Instant::now();
        let mut report = DetectionReport::default();
        let mut confirmed: HashSet<RaceSignature> = HashSet::new();
        let workers = self.config.parallelism.max(1);
        let size = self.config.window_size;
        let published: Published = PublishedSet::new();
        // Plans are tiny relative to views (only straddling windows carry
        // one), so computing them eagerly keeps residency claims about
        // *views* intact.
        let plans = self.window_plans(trace);
        if workers == 1 {
            // One view alive at a time: build, solve, merge, drop.
            let mut peak = 0usize;
            for (index, view) in trace.window_stream(size).enumerate() {
                peak = 1;
                let plan = plans.get(index).and_then(Option::as_ref);
                let outcome = self.solve_window_isolated(index, &view, plan, Some(&published));
                drop(view);
                self.merge_outcome(outcome, &mut report, &mut confirmed, Some(&published));
                note_first_race(&mut report, start);
            }
            report.stats.peak_window_residency = peak;
        } else {
            let residency = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            // The bounded queue is the backpressure: when every worker is
            // busy and the queue is full, the producer blocks instead of
            // materializing further views.
            let (job_tx, job_rx) = mpsc::sync_channel::<(usize, View<'_>)>(workers + 2);
            let job_rx = Mutex::new(job_rx);
            let (out_tx, out_rx) = mpsc::channel::<WindowOutcome>();
            std::thread::scope(|scope| {
                let published = &published;
                let residency = &residency;
                let peak = &peak;
                let job_rx = &job_rx;
                let plans = &plans;
                for _ in 0..workers {
                    let out_tx = out_tx.clone();
                    scope.spawn(move || loop {
                        let job = job_rx
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .recv();
                        let Ok((index, view)) = job else { break };
                        let plan = plans.get(index).and_then(Option::as_ref);
                        let outcome =
                            self.solve_window_isolated(index, &view, plan, Some(published));
                        drop(view);
                        residency.fetch_sub(1, Ordering::Relaxed);
                        if out_tx.send(outcome).is_err() {
                            break;
                        }
                    });
                }
                drop(out_tx);
                // The producer gets its own thread so this one can merge
                // outcomes (and publish confirmed signatures) while views
                // are still being constructed.
                scope.spawn(move || {
                    for (index, view) in trace.window_stream(size).enumerate() {
                        let live = residency.fetch_add(1, Ordering::Relaxed) + 1;
                        peak.fetch_max(live, Ordering::Relaxed);
                        if job_tx.send((index, view)).is_err() {
                            break;
                        }
                    }
                });
                let mut pending: BTreeMap<usize, WindowOutcome> = BTreeMap::new();
                let mut cursor = 0usize;
                for outcome in out_rx {
                    pending.insert(outcome.window_index(), outcome);
                    while let Some(outcome) = pending.remove(&cursor) {
                        self.merge_outcome(outcome, &mut report, &mut confirmed, Some(published));
                        note_first_race(&mut report, start);
                        cursor += 1;
                    }
                }
                debug_assert!(pending.is_empty(), "every window outcome merged");
            });
            report.stats.peak_window_residency = peak.load(Ordering::Relaxed);
        }
        report.stats.wall_time = start.elapsed();
        report
    }

    /// Streaming detection: ingests the trace from `reader` (format
    /// auto-detected, see [`StreamParser`]) and solves windows while the
    /// tail of the input is still being read. A window is dispatched as
    /// soon as its events *and* the trace metadata have arrived — with the
    /// NDJSON layout (metadata header first) solving overlaps ingestion
    /// from the first complete window; with the whole-document layout
    /// (metadata after the events) dispatch starts when the metadata
    /// completes near the end of the document.
    ///
    /// Workers solve against [`Arc`] snapshots of the trace *prefix*
    /// ingested so far; a window's verdicts are a pure function of its
    /// events and its boundary state, so the merged report is
    /// byte-identical to [`RaceDetector::detect`] on the whole file, at
    /// every worker count. Window-state residency is bounded by the worker
    /// pool plus the dispatch queue (the `stream.peak_window_residency`
    /// gauge), and the first race can be reported while ingestion is still
    /// running (`detector.time_to_first_race`).
    ///
    /// The input is validated exactly like the whole-file strict path:
    /// syntax and shape errors surface with the same message and byte
    /// offset, and wait-link validation runs once ingestion completes
    /// (speculatively solved windows are discarded on failure).
    pub fn detect_stream<R: Read>(&self, mut reader: R) -> Result<StreamDetection, JsonError> {
        let start = Instant::now();
        let workers = self.config.parallelism.max(1);
        let size = self.config.window_size.max(1);
        let published: Published = PublishedSet::new();
        let residency = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let (job_tx, job_rx) = mpsc::sync_channel::<StreamJob>(workers + 2);
        let job_rx = Mutex::new(job_rx);
        let (out_tx, out_rx) = mpsc::channel::<WindowOutcome>();
        std::thread::scope(|scope| {
            let published = &published;
            let residency = &residency;
            let peak = &peak;
            let job_rx = &job_rx;
            for _ in 0..workers {
                let out_tx = out_tx.clone();
                scope.spawn(move || loop {
                    let job = job_rx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .recv();
                    let Ok(job) = job else { break };
                    let view = job.boundary.view(&job.trace, job.range.clone());
                    let outcome = self.solve_window_isolated(
                        job.index,
                        &view,
                        job.plan.as_ref(),
                        Some(published),
                    );
                    drop(view);
                    drop(job);
                    residency.fetch_sub(1, Ordering::Relaxed);
                    if out_tx.send(outcome).is_err() {
                        break;
                    }
                });
            }
            drop(out_tx);
            let merger = scope.spawn(move || {
                let mut report = DetectionReport::default();
                let mut confirmed: HashSet<RaceSignature> = HashSet::new();
                let mut pending: BTreeMap<usize, WindowOutcome> = BTreeMap::new();
                let mut cursor = 0usize;
                for outcome in out_rx {
                    pending.insert(outcome.window_index(), outcome);
                    while let Some(outcome) = pending.remove(&cursor) {
                        self.merge_outcome(outcome, &mut report, &mut confirmed, Some(published));
                        note_first_race(&mut report, start);
                        cursor += 1;
                    }
                }
                debug_assert!(pending.is_empty(), "every window outcome merged");
                report
            });
            // Ingest + dispatch on this thread. The immediately-invoked
            // closure lets `?` short-circuit on a parse error while the
            // cleanup below still runs: dropping `job_tx` closes the job
            // queue, the workers drain and exit, the merger finishes.
            let dispatch = |job: StreamJob| {
                let live = residency.fetch_add(1, Ordering::Relaxed) + 1;
                peak.fetch_max(live, Ordering::Relaxed);
                // Send fails only if every worker died; the report will
                // show the windows that never merged as missing — but
                // worker panics are caught per window, so in practice the
                // queue outlives ingestion.
                let _ = job_tx.send(job);
            };
            let io_result = (|| -> Result<(Arc<Trace>, IngestStats, Duration), JsonError> {
                let mut parser = StreamParser::new();
                let mut chunk = vec![0u8; STREAM_CHUNK];
                let mut boundary: Option<WindowBoundary> = None;
                // Cone mode: the dispatcher also runs the straddle
                // tracker, in lockstep with the boundary.
                let mut tracker: Option<BoundaryTracker> = None;
                let mut next_start = 0usize;
                let mut next_index = 0usize;
                let mut first_dispatch: Option<Duration> = None;
                loop {
                    let n = reader
                        .read(&mut chunk)
                        .map_err(|e| io_error(parser.bytes_fed(), e))?;
                    if n == 0 {
                        break;
                    }
                    parser.feed(&chunk[..n])?;
                    // Dispatch every newly completed window. Gated on the
                    // metadata: boundary state needs the initial values,
                    // and a snapshot without the full metadata would not
                    // be prefix-equivalent to the final trace.
                    if !parser.metadata_complete() || parser.events().len() < next_start + size {
                        continue;
                    }
                    let snapshot = Arc::new(Trace::from_data(parser.data().clone()));
                    let boundary = boundary.get_or_insert_with(|| {
                        WindowBoundary::from_initial_values(&snapshot.data().initial_values)
                    });
                    if self.cone_mode() && tracker.is_none() {
                        tracker = Some(BoundaryTracker::new(
                            WindowBoundary::from_initial_values(&snapshot.data().initial_values),
                            self.config.spill_events(),
                        ));
                    }
                    while next_start + size <= snapshot.len() {
                        let range = next_start..next_start + size;
                        first_dispatch.get_or_insert_with(|| start.elapsed());
                        let plan = tracker.as_ref().and_then(|t| {
                            t.plan(snapshot.events(), range.clone(), |v| {
                                snapshot.is_volatile(v)
                            })
                        });
                        dispatch(StreamJob {
                            index: next_index,
                            range: range.clone(),
                            boundary: boundary.clone(),
                            trace: snapshot.clone(),
                            plan,
                        });
                        if let Some(t) = tracker.as_mut() {
                            t.advance(snapshot.events(), range.clone());
                        }
                        boundary.advance(snapshot.events(), range);
                        next_start += size;
                        next_index += 1;
                    }
                }
                parser.finish()?;
                // Strict-path parity: the whole-file reader validates
                // wait links after parsing; so does the stream. On
                // failure every speculative verdict is discarded.
                validate_wait_links(parser.data())?;
                let ingest = parser.stats();
                let ingest_done = start.elapsed();
                let trace = Arc::new(Trace::from_data(parser.into_data()));
                let boundary = boundary.get_or_insert_with(|| {
                    WindowBoundary::from_initial_values(&trace.data().initial_values)
                });
                if self.cone_mode() && tracker.is_none() {
                    tracker = Some(BoundaryTracker::new(
                        WindowBoundary::from_initial_values(&trace.data().initial_values),
                        self.config.spill_events(),
                    ));
                }
                while next_start < trace.len() {
                    let end = (next_start + size).min(trace.len());
                    let range = next_start..end;
                    let plan = tracker.as_ref().and_then(|t| {
                        t.plan(trace.events(), range.clone(), |v| trace.is_volatile(v))
                    });
                    dispatch(StreamJob {
                        index: next_index,
                        range: range.clone(),
                        boundary: boundary.clone(),
                        trace: trace.clone(),
                        plan,
                    });
                    if let Some(t) = tracker.as_mut() {
                        t.advance(trace.events(), range.clone());
                    }
                    boundary.advance(trace.events(), range);
                    next_start = end;
                    next_index += 1;
                }
                let overlap = first_dispatch
                    .map(|t| ingest_done.saturating_sub(t))
                    .unwrap_or(Duration::ZERO);
                Ok((trace, ingest, overlap))
            })();
            drop(job_tx);
            let mut report = merger.join().expect("merge thread panicked");
            let (trace, ingest, overlap) = io_result?;
            report.stats.peak_window_residency = peak.load(Ordering::Relaxed);
            report.stats.ingest_overlap = Some(overlap);
            report.stats.wall_time = start.elapsed();
            // Every worker has exited (the merger saw the channel close),
            // so the final Arc is the last one standing.
            let trace = Arc::try_unwrap(trace).unwrap_or_else(|a| (*a).clone());
            Ok(StreamDetection {
                trace,
                report,
                ingest,
            })
        })
    }

    /// Fans `views` out to a bounded scoped pool; merges in window order as
    /// outcomes stream back.
    fn detect_parallel(
        &self,
        views: &[View<'_>],
        plans: &[Option<StraddlePlan>],
        workers: usize,
        report: &mut DetectionReport,
        confirmed: &mut HashSet<RaceSignature>,
        start: Instant,
    ) {
        let published: Published = PublishedSet::new();
        let next_window = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<WindowOutcome>();
        std::thread::scope(|scope| {
            let published = &published;
            let next_window = &next_window;
            for _ in 0..workers.min(views.len()) {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let index = next_window.fetch_add(1, Ordering::Relaxed);
                    let Some(view) = views.get(index) else { break };
                    let plan = plans.get(index).and_then(Option::as_ref);
                    let outcome = self.solve_window_isolated(index, view, plan, Some(published));
                    if tx.send(outcome).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Outcomes arrive in completion order; buffer and merge them in
            // window order so dedup decisions are reproducible.
            let mut pending: BTreeMap<usize, WindowOutcome> = BTreeMap::new();
            let mut cursor = 0usize;
            for outcome in rx {
                pending.insert(outcome.window_index(), outcome);
                while let Some(outcome) = pending.remove(&cursor) {
                    self.merge_outcome(outcome, report, confirmed, Some(published));
                    note_first_race(report, start);
                    cursor += 1;
                }
            }
            debug_assert!(pending.is_empty(), "every window outcome merged");
        });
    }

    /// Solves one window under panic isolation: a panic anywhere in the
    /// solve (including injected `Fault::Panic`s) becomes a
    /// [`WindowOutcome::Failed`] record instead of unwinding into the
    /// worker loop or the serial driver.
    fn solve_window_isolated(
        &self,
        window_index: usize,
        view: &View<'_>,
        plan: Option<&StraddlePlan>,
        published: Option<&Published>,
    ) -> WindowOutcome {
        let solve =
            std::panic::AssertUnwindSafe(|| self.solve_window(window_index, view, plan, published));
        match std::panic::catch_unwind(solve) {
            Ok(solved) => WindowOutcome::Solved(solved),
            Err(payload) => WindowOutcome::Failed(FailedWindow {
                window_index,
                range: view.range(),
                reason: panic_reason(payload.as_ref()),
            }),
        }
    }

    /// Solves one window under panic isolation, as a building block for
    /// external drivers (the session layer): the result must be handed to
    /// [`RaceDetector::merge_window_result`] in window order. The solve is
    /// a pure function of the window's view (plus the skip-only
    /// `published` set and the window's deterministic straddle `plan`, if
    /// any), so any scheduling of these calls merges to the same report.
    pub fn solve_window_result(
        &self,
        window_index: usize,
        view: &View<'_>,
        plan: Option<&StraddlePlan>,
        published: Option<&PublishedSet>,
    ) -> WindowResult {
        WindowResult(self.solve_window_isolated(window_index, view, plan, published))
    }

    /// Merges one window's result into `report`. Must be called in window
    /// order with the same `confirmed` set (and `published`, if any)
    /// across the whole run — this is the replay that makes merged output
    /// independent of solve scheduling.
    pub fn merge_window_result(
        &self,
        result: WindowResult,
        report: &mut DetectionReport,
        confirmed: &mut HashSet<RaceSignature>,
        published: Option<&PublishedSet>,
    ) {
        self.merge_outcome(result.0, report, confirmed, published);
    }

    /// Solves one window into an outcome record. Pure with respect to
    /// cross-window state: `published` is used only for early skips that
    /// provably cannot change merged output (see the module docs).
    fn solve_window(
        &self,
        window_index: usize,
        view: &View<'_>,
        plan: Option<&StraddlePlan>,
        published: Option<&Published>,
    ) -> SolvedWindow {
        let window_start = Instant::now();
        let cfg = &self.config;
        // The per-window wall-clock budget (`--timeout-ms`, or a daemon
        // tenant budget). COPs reached after the deadline are recorded as
        // `Undecided(Timeout)` — same verdict path in per-COP and batched
        // mode — and per-COP solver budgets are clamped to the remainder.
        // (An unrepresentable deadline — overflowing `Instant` — means the
        // budget can never fire, i.e. unbounded.)
        let deadline = cfg.window_timeout.and_then(|t| window_start.checked_add(t));
        let enumeration = enumerate_cops(view, cfg.quick_check, cfg.max_cops_per_signature);
        let budget = Budget {
            max_conflicts: cfg.max_conflicts,
            timeout: Some(cfg.solver_timeout),
        };
        let opts = EncoderOptions {
            mode: cfg.mode,
            prune_write_sets: cfg.prune_write_sets,
            slice: cfg.slice,
        };
        // Snapshot of merge-confirmed signatures. Only ever used to *skip*
        // solves whose records the merge replay is guaranteed to discard.
        // When a fault plan is active the snapshot is left empty: which
        // signatures have been published when a window starts depends on
        // worker timing, and a timing-dependent skip would shift fault
        // coordinates between runs. (Verdicts never depend on the skip, but
        // fault coordinates index the solve order, which does.)
        let known_racy: HashSet<RaceSignature> =
            match (cfg.dedup_signatures && cfg.fault_plan.is_none(), published) {
                (true, Some(p)) => {
                    p.0.read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .clone()
                }
                _ => HashSet::new(),
            };
        let mut out = SolvedWindow {
            window_index,
            range: view.range(),
            pairs_considered: enumeration.pairs_considered,
            qc_signatures: enumeration.qc_signatures,
            records: Vec::with_capacity(enumeration.cops.len()),
            solver_time: Duration::ZERO,
            window_time: Duration::ZERO,
            tier_a_time: Duration::ZERO,
            tier_b_time: Duration::ZERO,
            spill_events: 0,
        };
        // Signatures confirmed inside this window, shared by the normal
        // pass and the straddle pass below, so a straddling COP whose
        // signature an in-window COP already confirmed dedups exactly like
        // any same-window duplicate — deterministically, at every thread
        // count (the set is window-local; the merge replay re-checks
        // everything cross-window).
        let mut local_confirmed: HashSet<RaceSignature> = HashSet::new();
        // The tiered cascade shares one per-window analysis (base
        // entailment graph + memoized read facts) across all COPs.
        let mut tiers = (cfg.tiers && !enumeration.cops.is_empty())
            .then(|| TierAnalysis::new(view, cfg.mode, cfg.prune_write_sets));
        // Portfolio racing implies per-COP incremental sessions: it wins
        // the dispatch over `batch_windows` so `portfolio: true` works
        // regardless of how the other knobs were left.
        if cfg.batch_windows && !cfg.portfolio {
            self.solve_window_batched(
                view,
                enumeration.cops,
                opts,
                &budget,
                deadline,
                &known_racy,
                tiers.as_mut(),
                &mut local_confirmed,
                &mut out,
            );
        } else if cfg.incremental || cfg.portfolio {
            self.solve_window_incremental(
                view,
                enumeration.cops,
                opts,
                &budget,
                deadline,
                &known_racy,
                tiers.as_mut(),
                &mut local_confirmed,
                &mut out,
            );
        } else {
            self.solve_window_per_cop(
                view,
                enumeration.cops,
                opts,
                &budget,
                deadline,
                &known_racy,
                tiers.as_mut(),
                &mut local_confirmed,
                &mut out,
            );
        }
        if let Some(t) = &tiers {
            out.tier_a_time = t.tier_a_time();
            out.tier_b_time = t.tier_b_time();
        }
        if cfg.retry_split {
            self.retry_timeouts(view, opts, &budget, deadline, &mut out);
        }
        if let Some(plan) = plan {
            self.solve_straddles(
                view,
                plan,
                &budget,
                deadline,
                &known_racy,
                &mut local_confirmed,
                &mut out,
            );
        }
        out.window_time = window_start.elapsed();
        out
    }

    /// One-shot retry for budget exhaustion: each `Undecided(Timeout)` COP
    /// is re-encoded and re-solved against the half-size sub-window that
    /// contains both of its events (half the events ⇒ a much smaller
    /// formula). COPs spanning the midpoint keep their `Undecided`
    /// verdict. Window-local, so it is deterministic under parallelism;
    /// the fault plan is deliberately not consulted (an injected
    /// `Fault::Timeout` may be rescued here, which is itself useful for
    /// testing the policy).
    fn retry_timeouts(
        &self,
        view: &View<'_>,
        opts: EncoderOptions,
        budget: &Budget,
        deadline: Option<Instant>,
        out: &mut SolvedWindow,
    ) {
        let needs_retry = out
            .records
            .iter()
            .any(|r| matches!(r.verdict, CopVerdict::Undecided(UndecidedReason::Timeout)));
        if !needs_retry {
            return;
        }
        let Some((first, second)) = view.split() else {
            return;
        };
        let cfg = &self.config;
        for record in out.records.iter_mut() {
            if !matches!(
                record.verdict,
                CopVerdict::Undecided(UndecidedReason::Timeout)
            ) {
                continue;
            }
            let half = if first.contains(record.cop.first) && first.contains(record.cop.second) {
                &first
            } else if second.contains(record.cop.first) && second.contains(record.cop.second) {
                &second
            } else {
                continue; // spans the midpoint: stays Undecided
            };
            // No retries past the window deadline: the budget that killed
            // the first solve has run out for good.
            if past_deadline(deadline) {
                continue;
            }
            record.retried = true;
            let solve_start = Instant::now();
            let budget = &clamp_budget(budget, deadline);
            let encoded = encode(half, record.cop, opts);
            let mut solver = Solver::new(&encoded.fb);
            if cfg.phase_hints {
                solver.hint_atom_phases(|a| encoded.phase_hint(a));
            }
            record.verdict = match solver.solve(budget) {
                SmtResult::Unsat => CopVerdict::Unsat,
                SmtResult::Unknown(reason) => CopVerdict::Undecided(undecided_of_stop(reason)),
                SmtResult::Sat => {
                    if cfg.validate_witnesses {
                        let witness = if opts.slicing_active() {
                            // `encode` sliced the half-window formula; the
                            // reported witness must come from the
                            // canonical unsliced solve.
                            self.canonical_witness(half, record.cop, opts, budget)
                        } else {
                            extract_witness(half, record.cop, &encoded, &solver, cfg.mode)
                                .map_err(|_| ())
                        };
                        match witness {
                            Ok(witness) => CopVerdict::Race(witness.schedule),
                            Err(()) => CopVerdict::WitnessFailed,
                        }
                    } else {
                        CopVerdict::Race(Schedule(vec![record.cop.first, record.cop.second]))
                    }
                }
            };
            out.solver_time += solve_start.elapsed();
            // The retry is a second solver invocation on the same COP: its
            // effort accumulates into the record's profile (the original
            // timed-out solve is already in there), so the COP is counted
            // once in `cops_solved` but both solves are in the totals.
            record.profile.record_solve(&solver.stats().sat);
        }
    }

    /// The planned fault for this (window, COP) coordinate, if any.
    /// `Fault::Panic` fires here (caught by `solve_window_isolated`);
    /// the other faults are returned as forced verdicts.
    fn apply_fault(&self, window: usize, cop_index: usize) -> Option<CopVerdict> {
        let fault = self
            .config
            .fault_plan
            .as_ref()?
            .fault_at(window, cop_index)?;
        match fault {
            Fault::Panic => {
                panic!("injected fault: worker panic at window {window} cop {cop_index}")
            }
            Fault::Timeout => Some(CopVerdict::Undecided(UndecidedReason::Timeout)),
            Fault::EncodeError => Some(CopVerdict::Undecided(UndecidedReason::EncodeError)),
        }
    }

    /// Per-COP mode: a fresh encoding and solver per COP. Solves are
    /// independent, so skipping a known-redundant COP cannot perturb any
    /// other verdict — the `known_racy` skip is safe at COP granularity.
    fn solve_window_per_cop(
        &self,
        view: &View<'_>,
        cops: Vec<Cop>,
        opts: EncoderOptions,
        budget: &Budget,
        deadline: Option<Instant>,
        known_racy: &HashSet<RaceSignature>,
        mut tiers: Option<&mut TierAnalysis<'_>>,
        local_confirmed: &mut HashSet<RaceSignature>,
        out: &mut SolvedWindow,
    ) {
        let cfg = &self.config;
        // With the cascade off every record's stage is `None`, so the
        // tier counters stay zero under `--no-tiers`.
        let cascade_on = tiers.is_some();
        // One skeleton per window: its indexes are shared by every COP's
        // cone computation.
        let skel = opts.slicing_active().then(|| WindowSkeleton::new(view));
        for (cop_index, cop) in cops.into_iter().enumerate() {
            let signature = RaceSignature::of_cop(view.trace(), cop);
            // Faults fire before any skip so a planned coordinate always
            // takes effect, at every thread count.
            if let Some(verdict) = self.apply_fault(out.window_index, cop_index) {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: cascade_on.then_some(Tier::Solver),
                    ext_range: None,
                });
                continue;
            }
            // Window budget exhausted: every remaining COP degrades to the
            // per-COP-timeout verdict — no screens, no encoding, no solve.
            if past_deadline(deadline) {
                out.records
                    .push(deadline_expired_record(cop, signature, cascade_on));
                continue;
            }
            if cfg.dedup_signatures
                && (local_confirmed.contains(&signature) || known_racy.contains(&signature))
            {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict: CopVerdict::Skipped,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: None,
                    ext_range: None,
                });
                continue;
            }
            // The tiered screens decide most COPs without an encoding;
            // whatever they leave is the residue the solver sees.
            if let Some(t) = tiers.as_deref_mut() {
                match t.decide(&cop) {
                    TierDecision::Confirmed => {
                        let budget = &clamp_budget(budget, deadline);
                        let record =
                            self.tier_confirmed_record(view, cop, signature, opts, budget, out);
                        if matches!(record.verdict, CopVerdict::Race(_)) {
                            local_confirmed.insert(signature);
                        }
                        out.records.push(record);
                        continue;
                    }
                    TierDecision::Refuted => {
                        out.records.push(tier_refuted_record(cop, signature));
                        continue;
                    }
                    TierDecision::Residue => {}
                }
            }
            let solve_start = Instant::now();
            let budget = &clamp_budget(budget, deadline);
            let encoded = match &skel {
                Some(s) => encode_with_skeleton(s, cop, opts),
                None => encode(view, cop, opts),
            };
            let mut solver = Solver::new(&encoded.fb);
            if cfg.phase_hints {
                solver.hint_atom_phases(|a| encoded.phase_hint(a));
            }
            let verdict = match solver.solve(budget) {
                SmtResult::Unsat => CopVerdict::Unsat,
                SmtResult::Unknown(reason) => CopVerdict::Undecided(undecided_of_stop(reason)),
                SmtResult::Sat => {
                    if cfg.validate_witnesses {
                        let witness = if skel.is_some() {
                            // Sliced model: re-solve unsliced for the
                            // canonical witness (see `canonical_witness`).
                            self.canonical_witness(view, cop, opts, budget)
                        } else {
                            extract_witness(view, cop, &encoded, &solver, cfg.mode).map_err(|_| ())
                        };
                        match witness {
                            Ok(witness) => {
                                local_confirmed.insert(signature);
                                CopVerdict::Race(witness.schedule)
                            }
                            Err(()) => CopVerdict::WitnessFailed,
                        }
                    } else {
                        local_confirmed.insert(signature);
                        CopVerdict::Race(Schedule(vec![cop.first, cop.second]))
                    }
                }
            };
            out.solver_time += solve_start.elapsed();
            // Fresh solver per COP: its lifetime stats *are* this solve's
            // delta.
            let mut profile = SolverTotals::default();
            profile.record_solve(&solver.stats().sat);
            out.records.push(CopRecord {
                cop,
                signature,
                verdict,
                profile,
                retried: false,
                cone_events: encoded.cone_events,
                window_events: encoded.window_events,
                constraints: encoded.n_constraints,
                decided_by: cascade_on.then_some(Tier::Solver),
                ext_range: None,
            });
        }
    }

    /// The record of a Tier A confirmation: the verdict is a race, and the
    /// reported schedule is the canonical fresh-solve witness — the exact
    /// schedule every solver path reports — so reports are byte-identical
    /// to solver-only mode. The cascade never zeroes a planned witness: a
    /// canonical solve that fails at a budget boundary is reported
    /// honestly as a witness failure, just like the solver paths.
    fn tier_confirmed_record(
        &self,
        view: &View<'_>,
        cop: Cop,
        signature: RaceSignature,
        opts: EncoderOptions,
        budget: &Budget,
        out: &mut SolvedWindow,
    ) -> CopRecord {
        let verdict = if self.config.validate_witnesses {
            let solve_start = Instant::now();
            let witness = self.canonical_witness(view, cop, opts, budget);
            out.solver_time += solve_start.elapsed();
            match witness {
                Ok(witness) => CopVerdict::Race(witness.schedule),
                Err(()) => CopVerdict::WitnessFailed,
            }
        } else {
            CopVerdict::Race(Schedule(vec![cop.first, cop.second]))
        };
        CopRecord {
            cop,
            signature,
            verdict,
            profile: SolverTotals::default(),
            retried: false,
            cone_events: 0,
            window_events: 0,
            constraints: 0,
            decided_by: Some(Tier::A),
            ext_range: None,
        }
    }

    /// The canonical witness for a SAT verdict: a fresh *unsliced* glued
    /// encoding of the COP, solved from scratch with phase hints, and the
    /// witness extracted from that model. Used whenever the verdict came
    /// from a sliced or selector-guarded model, so reported schedules are
    /// byte-identical across `slice` on/off, `batch_windows` on/off, and
    /// every `--jobs` value. (A sliced model leaves non-cone events
    /// unplaced, and an incremental batch model depends on the window's
    /// solve history; the fresh solve depends on neither. The verdict
    /// itself is already SAT, so this solve can only fail at a budget
    /// boundary, which is reported honestly as a witness failure.)
    fn canonical_witness(
        &self,
        view: &View<'_>,
        cop: Cop,
        opts: EncoderOptions,
        budget: &Budget,
    ) -> Result<Witness, ()> {
        let opts = EncoderOptions {
            slice: false,
            ..opts
        };
        let encoded = encode(view, cop, opts);
        let mut solver = Solver::new(&encoded.fb);
        if self.config.phase_hints {
            solver.hint_atom_phases(|a| encoded.phase_hint(a));
        }
        if solver.solve(budget) != SmtResult::Sat {
            return Err(());
        }
        extract_witness(view, cop, &encoded, &solver, self.config.mode).map_err(|_| ())
    }

    /// Batch mode: one shared encoding + incremental solver per window,
    /// per-COP selector assumptions. Selector solves share learnt clauses,
    /// so the `known_racy` skip is only taken when it covers the *whole*
    /// window — a partial skip could change a later COP's model and hence
    /// its reported witness schedule.
    fn solve_window_batched(
        &self,
        view: &View<'_>,
        cops: Vec<Cop>,
        opts: EncoderOptions,
        budget: &Budget,
        deadline: Option<Instant>,
        known_racy: &HashSet<RaceSignature>,
        mut tiers: Option<&mut TierAnalysis<'_>>,
        local_confirmed: &mut HashSet<RaceSignature>,
        out: &mut SolvedWindow,
    ) {
        if cops.is_empty() {
            return;
        }
        let cfg = &self.config;
        // With the cascade off every record's stage is `None`, so the
        // tier counters stay zero under `--no-tiers`.
        let cascade_on = tiers.is_some();
        let signatures: Vec<RaceSignature> = cops
            .iter()
            .map(|&c| RaceSignature::of_cop(view.trace(), c))
            .collect();
        if cfg.dedup_signatures && signatures.iter().all(|s| known_racy.contains(s)) {
            for (cop, signature) in cops.into_iter().zip(signatures) {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict: CopVerdict::Skipped,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: None,
                    ext_range: None,
                });
            }
            return;
        }
        // Tier pass: decide every COP up front so the shared encoding can
        // cover the residue alone (the screens are pure per-COP functions
        // of the window, so deciding them before the solve loop changes
        // nothing about solve order). A COP with a planned fault is never
        // screened — the fault must fire at its coordinate either way.
        let decisions: Vec<Option<TierDecision>> = match tiers.as_deref_mut() {
            Some(t) => cops
                .iter()
                .enumerate()
                .map(|(i, cop)| {
                    let faulted = cfg
                        .fault_plan
                        .as_ref()
                        .is_some_and(|p| p.fault_at(out.window_index, i).is_some());
                    (!faulted).then(|| t.decide(cop))
                })
                .collect(),
            None => vec![None; cops.len()],
        };
        // The residue (plus faulted coordinates, which keep their index
        // semantics) shares one incremental encoding, exactly as the whole
        // window used to.
        let mut residue: Vec<Cop> = Vec::new();
        let mut sel_index: Vec<Option<usize>> = Vec::with_capacity(cops.len());
        for (i, &cop) in cops.iter().enumerate() {
            match decisions[i] {
                Some(TierDecision::Confirmed) | Some(TierDecision::Refuted) => {
                    sel_index.push(None);
                }
                _ => {
                    sel_index.push(Some(residue.len()));
                    residue.push(cop);
                }
            }
        }
        let mut enc_solver = None;
        // An already-expired deadline skips the shared encoding entirely:
        // every residue COP below degrades without ever needing a solver.
        if !residue.is_empty() && !past_deadline(deadline) {
            let solve_start = Instant::now();
            // With slicing, the shared base formula covers the union cone
            // of the residue COPs.
            let encoded = encode_window(view, &residue, opts);
            let mut solver = Solver::new(&encoded.fb);
            if cfg.phase_hints {
                solver.hint_atom_phases(|a| encoded.phase_hint(a));
            }
            out.solver_time += solve_start.elapsed();
            enc_solver = Some((encoded, solver));
        }
        for (i, cop) in cops.into_iter().enumerate() {
            let signature = signatures[i];
            // Faults fire before any skip so a planned coordinate always
            // takes effect, at every thread count. (Skipping a selector
            // solve perturbs later models only relative to a run *without*
            // the fault; the plan is fixed, so every thread count sees the
            // same sequence of solves.)
            if let Some(verdict) = self.apply_fault(out.window_index, i) {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: cascade_on.then_some(Tier::Solver),
                    ext_range: None,
                });
                continue;
            }
            // Window budget exhausted: every remaining COP — tier-decided
            // or residue — degrades to the per-COP-timeout verdict. (The
            // deadline is monotonic, so a residue COP that passes this
            // check always finds the shared encoding built above.)
            if past_deadline(deadline) {
                out.records
                    .push(deadline_expired_record(cop, signature, cascade_on));
                continue;
            }
            if cfg.dedup_signatures && local_confirmed.contains(&signature) {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict: CopVerdict::Skipped,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: None,
                    ext_range: None,
                });
                continue;
            }
            match decisions[i] {
                Some(TierDecision::Confirmed) => {
                    let budget = &clamp_budget(budget, deadline);
                    let record =
                        self.tier_confirmed_record(view, cop, signature, opts, budget, out);
                    if matches!(record.verdict, CopVerdict::Race(_)) {
                        local_confirmed.insert(signature);
                    }
                    out.records.push(record);
                    continue;
                }
                Some(TierDecision::Refuted) => {
                    out.records.push(tier_refuted_record(cop, signature));
                    continue;
                }
                _ => {}
            }
            let (encoded, solver) = enc_solver
                .as_mut()
                .expect("residue COP without a shared encoding");
            let sel = sel_index[i].expect("residue COP without a selector");
            let solve_start = Instant::now();
            let budget = &clamp_budget(budget, deadline);
            // Shared incremental solver: counters are cumulative over the
            // window, so this COP's effort is the before/after delta.
            // Under `--no-incremental` the shared encoding is kept but the
            // solver is rebuilt per selector, ablating learnt-clause
            // retention (the fresh solver's lifetime stats are the delta).
            let mut profile = SolverTotals::default();
            let result = if cfg.incremental {
                let before = solver.stats().sat;
                let r = solver.solve_assuming(budget, &[encoded.selectors[sel]]);
                profile.record_solve(&solver.stats().sat.delta_since(&before));
                r
            } else {
                let mut fresh = Solver::new(&encoded.fb);
                if cfg.phase_hints {
                    fresh.hint_atom_phases(|a| encoded.phase_hint(a));
                }
                let r = fresh.solve_assuming(budget, &[encoded.selectors[sel]]);
                profile.record_solve(&fresh.stats().sat);
                r
            };
            let verdict = match result {
                SmtResult::Unsat => CopVerdict::Unsat,
                SmtResult::Unknown(reason) => CopVerdict::Undecided(undecided_of_stop(reason)),
                SmtResult::Sat => {
                    if cfg.validate_witnesses {
                        // The incremental model depends on the window's
                        // solve history (and, sliced, leaves non-cone
                        // events unplaced): always report the canonical
                        // fresh-solve witness instead, so schedules are
                        // identical to per-COP mode at every configuration.
                        match self.canonical_witness(view, cop, opts, budget) {
                            Ok(witness) => {
                                local_confirmed.insert(signature);
                                CopVerdict::Race(witness.schedule)
                            }
                            Err(()) => CopVerdict::WitnessFailed,
                        }
                    } else {
                        local_confirmed.insert(signature);
                        CopVerdict::Race(Schedule(vec![cop.first, cop.second]))
                    }
                }
            };
            out.solver_time += solve_start.elapsed();
            out.records.push(CopRecord {
                cop,
                signature,
                verdict,
                profile,
                retried: false,
                cone_events: encoded.cone_events,
                window_events: encoded.window_events,
                constraints: encoded.n_constraints,
                decided_by: cascade_on.then_some(Tier::Solver),
                ext_range: None,
            });
        }
    }

    /// Per-COP incremental mode (`batch_windows` off, `incremental` on):
    /// per-COP verdict semantics — inline tier screens, per-COP dedup of
    /// window-local confirmations, faults and deadlines at COP granularity
    /// — on one *resident solver session* per window. The union cone over
    /// all the window's COPs is encoded once with one selector per COP,
    /// and each residue COP is discharged as an assumption query on the
    /// shared session: per-COP work is assumption-sized instead of
    /// encode-from-scratch, and learnt clauses are retained across COPs.
    /// Retention is sound because selectors are only ever *assumed* (first
    /// forced decisions), never asserted: every clause the session learns
    /// is implied by the asserted skeleton alone — possibly ¬sel-guarded —
    /// and so stays valid after its COP retires (see DESIGN.md, "Hot
    /// path").
    ///
    /// The cross-window `known_racy` skip follows batch mode (whole-window
    /// only): a partial skip would drop a query from the shared session
    /// and perturb later effort deltas across thread counts. The
    /// `local_confirmed` skip is window-local and deterministic, so it
    /// stays per-COP, as in per-COP mode.
    ///
    /// With `portfolio` on, each residue COP *races* the session query —
    /// on a clone of the session solver, in a helper thread under a
    /// cancellation token — against the tier screen on this thread. If the
    /// screen decides, the clone is cancelled and discarded: the session
    /// and the record are exactly portfolio-off's. If the screen leaves a
    /// residue, the helper's verdict and effort delta are adopted and its
    /// clone *becomes* the session — the clone ran the exact query the
    /// session would have, from the same pre-query state, so records,
    /// witnesses and count-type metrics are byte-identical with portfolio
    /// on or off, at every thread count. Cancelled results never survive:
    /// they are discarded with the clone.
    fn solve_window_incremental(
        &self,
        view: &View<'_>,
        cops: Vec<Cop>,
        opts: EncoderOptions,
        budget: &Budget,
        deadline: Option<Instant>,
        known_racy: &HashSet<RaceSignature>,
        mut tiers: Option<&mut TierAnalysis<'_>>,
        local_confirmed: &mut HashSet<RaceSignature>,
        out: &mut SolvedWindow,
    ) {
        if cops.is_empty() {
            return;
        }
        let cfg = &self.config;
        // With the cascade off every record's stage is `None`, so the
        // tier counters stay zero under `--no-tiers`.
        let cascade_on = tiers.is_some();
        let signatures: Vec<RaceSignature> = cops
            .iter()
            .map(|&c| RaceSignature::of_cop(view.trace(), c))
            .collect();
        if cfg.dedup_signatures && signatures.iter().all(|s| known_racy.contains(s)) {
            for (cop, signature) in cops.into_iter().zip(signatures) {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict: CopVerdict::Skipped,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: None,
                    ext_range: None,
                });
            }
            return;
        }
        // One shared encoding + resident solver for the whole window,
        // built up front (before any screen) so the portfolio can race a
        // session query against a screen for *any* COP. The base formula
        // covers the union cone of all the window's COPs — a superset of
        // every per-COP cone, so each selector query decides exactly its
        // COP's formula (the cone-superset argument batch mode relies on).
        let mut enc_session = None;
        if !past_deadline(deadline) {
            let solve_start = Instant::now();
            let encoded = encode_window(view, &cops, opts);
            let mut solver = Solver::new(&encoded.fb);
            if cfg.phase_hints {
                solver.hint_atom_phases(|a| encoded.phase_hint(a));
            }
            out.solver_time += solve_start.elapsed();
            enc_session = Some((encoded, solver));
        }
        for (i, cop) in cops.into_iter().enumerate() {
            let signature = signatures[i];
            // Faults fire before any skip so a planned coordinate always
            // takes effect, at every thread count.
            if let Some(verdict) = self.apply_fault(out.window_index, i) {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: cascade_on.then_some(Tier::Solver),
                    ext_range: None,
                });
                continue;
            }
            // Window budget exhausted: every remaining COP degrades to the
            // per-COP-timeout verdict. (The deadline is monotonic, so a
            // COP that passes this check always finds the session built
            // above.)
            if past_deadline(deadline) {
                out.records
                    .push(deadline_expired_record(cop, signature, cascade_on));
                continue;
            }
            if cfg.dedup_signatures && local_confirmed.contains(&signature) {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict: CopVerdict::Skipped,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: None,
                    ext_range: None,
                });
                continue;
            }
            let (encoded, solver) = enc_session
                .as_mut()
                .expect("undecided COP without a session encoding");
            let budget = &clamp_budget(budget, deadline);
            // The screen and the session query. Portfolio overlaps them
            // and lets the first verdict win; otherwise the screen runs
            // first and only the residue is queried.
            let mut raced: Option<(SmtResult, SolverTotals)> = None;
            let decision = match tiers.as_deref_mut() {
                None => None,
                Some(t) if cfg.portfolio => {
                    let race_start = Instant::now();
                    let token = Arc::new(AtomicBool::new(false));
                    let mut racer = solver.clone();
                    racer.set_cancel(Some(token.clone()));
                    let sel = encoded.selectors[i];
                    let before = racer.stats().sat;
                    let (decision, joined) = std::thread::scope(|s| {
                        let handle = s.spawn(move || {
                            let r = racer.solve_assuming(budget, &[sel]);
                            let mut profile = SolverTotals::default();
                            profile.record_solve(&racer.stats().sat.delta_since(&before));
                            (r, profile, racer)
                        });
                        let decision = t.decide(&cop);
                        if !matches!(decision, TierDecision::Residue) {
                            // Screen won: stop the racer at its next
                            // checkpoint; its result is discarded below.
                            token.store(true, Ordering::Relaxed);
                        }
                        (decision, handle.join())
                    });
                    if matches!(decision, TierDecision::Residue) {
                        // Adopt the racer's verdict, effort delta and
                        // solver state: it ran the exact query the session
                        // would have, from the same pre-query state. (A
                        // panicked racer falls through to an inline
                        // re-query on the untouched session.)
                        if let Ok((r, profile, mut adopted)) = joined {
                            adopted.set_cancel(None);
                            *solver = adopted;
                            raced = Some((r, profile));
                        }
                    }
                    out.solver_time += race_start.elapsed();
                    Some(decision)
                }
                Some(t) => Some(t.decide(&cop)),
            };
            match decision {
                Some(TierDecision::Confirmed) => {
                    let record =
                        self.tier_confirmed_record(view, cop, signature, opts, budget, out);
                    if matches!(record.verdict, CopVerdict::Race(_)) {
                        local_confirmed.insert(signature);
                    }
                    out.records.push(record);
                    continue;
                }
                Some(TierDecision::Refuted) => {
                    out.records.push(tier_refuted_record(cop, signature));
                    continue;
                }
                _ => {}
            }
            let solve_start = Instant::now();
            let (result, profile) = match raced {
                Some(rp) => rp,
                None => {
                    // Shared session: counters are cumulative over the
                    // window, so this COP's effort is the before/after
                    // delta.
                    let before = solver.stats().sat;
                    let r = solver.solve_assuming(budget, &[encoded.selectors[i]]);
                    let mut profile = SolverTotals::default();
                    profile.record_solve(&solver.stats().sat.delta_since(&before));
                    (r, profile)
                }
            };
            let verdict = match result {
                SmtResult::Unsat => CopVerdict::Unsat,
                SmtResult::Unknown(reason) => CopVerdict::Undecided(undecided_of_stop(reason)),
                SmtResult::Sat => {
                    if cfg.validate_witnesses {
                        // The session model depends on the window's solve
                        // history (and, sliced, leaves non-cone events
                        // unplaced): always report the canonical
                        // fresh-solve witness instead, so schedules are
                        // identical to every other mode.
                        match self.canonical_witness(view, cop, opts, budget) {
                            Ok(witness) => {
                                local_confirmed.insert(signature);
                                CopVerdict::Race(witness.schedule)
                            }
                            Err(()) => CopVerdict::WitnessFailed,
                        }
                    } else {
                        local_confirmed.insert(signature);
                        CopVerdict::Race(Schedule(vec![cop.first, cop.second]))
                    }
                }
            };
            out.solver_time += solve_start.elapsed();
            out.records.push(CopRecord {
                cop,
                signature,
                verdict,
                profile,
                retried: false,
                cone_events: encoded.cone_events,
                window_events: encoded.window_events,
                constraints: encoded.n_constraints,
                decided_by: cascade_on.then_some(Tier::Solver),
                ext_range: None,
            });
        }
    }

    /// The straddle pass (`--window-mode cone`): solves this window's
    /// boundary-straddling COPs — pairs whose partner event fell before
    /// the window start, invisible to every per-window enumeration — on an
    /// *extended view* rebuilt from the tracker's checkpointed boundary.
    /// The extended view over `ext_start..end` is byte-identical to the
    /// view a fixed window spanning that range would have had (same
    /// boundary-advance recurrence from the same trace prefix), so no new
    /// view semantics are introduced: every verdict below is an ordinary
    /// windowed verdict over a longer, boundary-correct window, and the
    /// soundness argument (Thm. 1) carries over unchanged.
    ///
    /// The view grows lazily along the COPs' cone of influence: when the
    /// union cone reads a variable whose last in-budget write precedes
    /// the current extension start, the view is rebuilt from that write
    /// (at most three rounds), so cross-boundary control-flow dependences
    /// are carried without re-residenting whole windows. The growth runs
    /// whether or not the *encoding* slices — the extension range (and
    /// with it the reported window and witness) must be identical across
    /// `--no-slice`, or the slice flag would change report bytes. COPs
    /// whose partner fell outside the spill budget are reported honestly
    /// as `Undecided(BoundaryBudget)` — never a silent "no race", never a
    /// solve on a truncated view.
    #[allow(clippy::too_many_arguments)]
    fn solve_straddles(
        &self,
        view: &View<'_>,
        plan: &StraddlePlan,
        budget: &Budget,
        deadline: Option<Instant>,
        known_racy: &HashSet<RaceSignature>,
        local_confirmed: &mut HashSet<RaceSignature>,
        out: &mut SolvedWindow,
    ) {
        let cfg = &self.config;
        let trace = view.trace();
        let cascade_on = cfg.tiers;
        for &cop in &plan.over_budget {
            out.records.push(CopRecord {
                cop,
                signature: RaceSignature::of_cop(trace, cop),
                verdict: CopVerdict::Undecided(UndecidedReason::BoundaryBudget),
                profile: SolverTotals::default(),
                retried: false,
                cone_events: 0,
                window_events: 0,
                constraints: 0,
                decided_by: cascade_on.then_some(Tier::Solver),
                ext_range: Some(plan.window.clone()),
            });
        }
        if plan.cops.is_empty() {
            return;
        }
        let opts = EncoderOptions {
            mode: cfg.mode,
            prune_write_sets: cfg.prune_write_sets,
            slice: cfg.slice,
        };
        // Lazy cone growth: pull the view start back to the last in-budget
        // write of any variable the union cone reads, until the dependence
        // frontier stabilizes or the budget floor is hit.
        let mut ext_start = plan.ext_start;
        let mut ext = plan.extended_view(trace, ext_start);
        for _ in 0..3 {
            let target = {
                let skel = WindowSkeleton::new(&ext);
                let cone = skel.cone(&plan.cops, cfg.prune_write_sets);
                plan.grow_target(cone.read_vars(&ext), ext_start)
            };
            match target {
                Some(s) if s < ext_start => {
                    ext_start = s;
                    ext = plan.extended_view(trace, ext_start);
                }
                _ => break,
            }
        }
        out.spill_events = plan.spill_span(ext_start);
        let mut tiers = cfg
            .tiers
            .then(|| TierAnalysis::new(&ext, cfg.mode, cfg.prune_write_sets));
        let skel = opts.slicing_active().then(|| WindowSkeleton::new(&ext));
        for &cop in &plan.cops {
            let signature = RaceSignature::of_cop(trace, cop);
            // The fault plan is deliberately not consulted here: its
            // coordinates index the normal pass's solve order, which must
            // not shift between fixed and cone mode.
            if past_deadline(deadline) {
                let mut record = deadline_expired_record(cop, signature, cascade_on);
                record.ext_range = Some(ext.range());
                out.records.push(record);
                continue;
            }
            if cfg.dedup_signatures
                && (local_confirmed.contains(&signature) || known_racy.contains(&signature))
            {
                out.records.push(CopRecord {
                    cop,
                    signature,
                    verdict: CopVerdict::Skipped,
                    profile: SolverTotals::default(),
                    retried: false,
                    cone_events: 0,
                    window_events: 0,
                    constraints: 0,
                    decided_by: None,
                    ext_range: Some(ext.range()),
                });
                continue;
            }
            if let Some(t) = tiers.as_mut() {
                match t.decide(&cop) {
                    TierDecision::Confirmed => {
                        let budget = &clamp_budget(budget, deadline);
                        let mut record =
                            self.tier_confirmed_record(&ext, cop, signature, opts, budget, out);
                        record.ext_range = Some(ext.range());
                        if matches!(record.verdict, CopVerdict::Race(_)) {
                            local_confirmed.insert(signature);
                        }
                        out.records.push(record);
                        continue;
                    }
                    TierDecision::Refuted => {
                        let mut record = tier_refuted_record(cop, signature);
                        record.ext_range = Some(ext.range());
                        out.records.push(record);
                        continue;
                    }
                    TierDecision::Residue => {}
                }
            }
            let solve_start = Instant::now();
            let budget = &clamp_budget(budget, deadline);
            let encoded = match &skel {
                Some(s) => encode_with_skeleton(s, cop, opts),
                None => encode(&ext, cop, opts),
            };
            let mut solver = Solver::new(&encoded.fb);
            if cfg.phase_hints {
                solver.hint_atom_phases(|a| encoded.phase_hint(a));
            }
            let verdict = match solver.solve(budget) {
                SmtResult::Unsat => CopVerdict::Unsat,
                SmtResult::Unknown(reason) => CopVerdict::Undecided(undecided_of_stop(reason)),
                SmtResult::Sat => {
                    if cfg.validate_witnesses {
                        let witness = if skel.is_some() {
                            self.canonical_witness(&ext, cop, opts, budget)
                        } else {
                            extract_witness(&ext, cop, &encoded, &solver, cfg.mode).map_err(|_| ())
                        };
                        match witness {
                            Ok(witness) => {
                                local_confirmed.insert(signature);
                                CopVerdict::Race(witness.schedule)
                            }
                            Err(()) => CopVerdict::WitnessFailed,
                        }
                    } else {
                        local_confirmed.insert(signature);
                        CopVerdict::Race(Schedule(vec![cop.first, cop.second]))
                    }
                }
            };
            out.solver_time += solve_start.elapsed();
            let mut profile = SolverTotals::default();
            profile.record_solve(&solver.stats().sat);
            out.records.push(CopRecord {
                cop,
                signature,
                verdict,
                profile,
                retried: false,
                cone_events: encoded.cone_events,
                window_events: encoded.window_events,
                constraints: encoded.n_constraints,
                decided_by: cascade_on.then_some(Tier::Solver),
                ext_range: Some(ext.range()),
            });
        }
        if let Some(t) = &tiers {
            out.tier_a_time += t.tier_a_time();
            out.tier_b_time += t.tier_b_time();
        }
    }

    /// Replays one window's records against the authoritative confirmed
    /// set, in window order. This is where cross-window deduplication
    /// happens: a record whose signature is already confirmed is dropped
    /// wholesale (its counters included), reproducing exactly what the
    /// serial driver would have skipped before solving. Newly confirmed
    /// signatures are pushed to `published` for in-flight workers.
    fn merge_outcome(
        &self,
        outcome: WindowOutcome,
        report: &mut DetectionReport,
        confirmed: &mut HashSet<RaceSignature>,
        published: Option<&Published>,
    ) {
        let cfg = &self.config;
        let stats = &mut report.stats;
        stats.windows += 1;
        let outcome = match outcome {
            WindowOutcome::Failed(failed) => {
                stats.failed_windows += 1;
                report.failed_windows.push(failed);
                return;
            }
            WindowOutcome::Solved(solved) => solved,
        };
        stats.pairs_considered += outcome.pairs_considered;
        stats.qc_signatures += outcome.qc_signatures;
        stats.solver_time += outcome.solver_time;
        stats.tier_a_time += outcome.tier_a_time;
        stats.tier_b_time += outcome.tier_b_time;
        stats.window_times.push(outcome.window_time);
        stats.spill_peak_events = stats.spill_peak_events.max(outcome.spill_events);
        for record in outcome.records {
            if cfg.dedup_signatures && confirmed.contains(&record.signature) {
                continue;
            }
            // Boundary accounting, surviving records only (same contract
            // as the solver-effort tallies below).
            if record.ext_range.is_some() {
                if matches!(
                    record.verdict,
                    CopVerdict::Undecided(UndecidedReason::BoundaryBudget)
                ) {
                    stats.boundary_over_budget += 1;
                } else {
                    stats.straddle_cops += 1;
                    if matches!(record.verdict, CopVerdict::Race(_)) {
                        stats.straddle_races += 1;
                    }
                }
            }
            // Cascade attribution, surviving records only (same contract
            // as `profile`): with tiers on, every solved COP carries a
            // stage, so confirmed + refuted + residue == cops_solved.
            match record.decided_by {
                Some(Tier::A) => stats.tier_confirmed += 1,
                Some(Tier::B) => stats.tier_refuted += 1,
                Some(Tier::Solver) => stats.tier_residue += 1,
                None => {}
            }
            // Solver effort and retry accounting are tallied here, for
            // surviving records only: a speculative solve whose record the
            // dedup check above discards never reaches the stats, so the
            // count-type metrics are identical at every thread count.
            stats.solver_totals.add(&record.profile);
            if record.profile.solves > 0 {
                stats.conflicts_per_cop.observe(record.profile.conflicts);
                stats.decisions_per_cop.observe(record.profile.decisions);
                stats
                    .propagations_per_cop
                    .observe(record.profile.propagations);
            }
            if record.retried {
                stats.retried_cops += 1;
                if !matches!(record.verdict, CopVerdict::Undecided(_)) {
                    stats.retry_rescued += 1;
                }
            }
            // Encoding-size accounting, surviving records only (same
            // determinism contract as `profile` above). Skipped and
            // fault-forced records encode nothing and carry zeros.
            if record.window_events > 0 {
                stats.cone_events += record.cone_events as u64;
                stats.window_events_encoded += record.window_events as u64;
                stats.sliced_out += (record.window_events - record.cone_events) as u64;
                stats.constraints_encoded += record.constraints as u64;
                stats.cone_events_per_cop.observe(record.cone_events as u64);
                stats.constraints_per_cop.observe(record.constraints as u64);
            }
            match record.verdict {
                CopVerdict::Skipped => {
                    // A worker only skips when the signature was confirmed
                    // by an earlier merged window or earlier in this
                    // window's records — both imply `confirmed` holds it
                    // by the time the replay gets here.
                    debug_assert!(
                        !cfg.dedup_signatures,
                        "skipped record with unconfirmed signature {:?}",
                        record.signature
                    );
                }
                CopVerdict::Unsat => {
                    stats.cops_solved += 1;
                    stats.unsat += 1;
                }
                CopVerdict::Undecided(reason) => {
                    stats.cops_solved += 1;
                    stats.record_undecided(reason);
                }
                CopVerdict::WitnessFailed => {
                    stats.cops_solved += 1;
                    stats.sat += 1;
                    stats.witness_failures += 1;
                }
                CopVerdict::Race(schedule) => {
                    stats.cops_solved += 1;
                    stats.sat += 1;
                    confirmed.insert(record.signature);
                    if let Some(p) = published {
                        p.0.write()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .insert(record.signature);
                    }
                    report.races.push(RaceReport {
                        cop: record.cop,
                        signature: record.signature,
                        // A straddling race is attributed to the extended
                        // view it was actually solved on.
                        window: record
                            .ext_range
                            .clone()
                            .unwrap_or_else(|| outcome.range.clone()),
                        schedule,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConsistencyMode;
    use rvtrace::{ThreadId, TraceBuilder};

    /// Paper Figure 1/4: exactly one race, (3,10) on x.
    fn figure1_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, y, 1);
        b.release(t2, l);
        b.read(t2, x, 1);
        b.branch(t2);
        b.write(t2, z, 1);
        b.join(t1, t2);
        b.read(t1, z, 1);
        b.branch(t1);
        b.finish()
    }

    #[test]
    fn figure1_exactly_one_race() {
        let report = RaceDetector::new().detect(&figure1_trace());
        assert_eq!(report.n_races(), 1, "{report}");
        assert_eq!(report.stats.witness_failures, 0);
        let race = &report.races[0];
        // The race is on x: both events access x.
        let tr = figure1_trace();
        let var = tr.event(race.cop.first).kind.var();
        assert_eq!(var, tr.event(race.cop.second).kind.var());
    }

    #[test]
    fn figure1_said_finds_none() {
        let cfg = DetectorConfig {
            mode: ConsistencyMode::WholeTrace,
            ..Default::default()
        };
        let report = RaceDetector::with_config(cfg).detect(&figure1_trace());
        assert_eq!(report.n_races(), 0, "{report}");
        assert!(report.stats.unsat > 0);
    }

    #[test]
    fn race_free_program_clean() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.write(t1, x, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.write(t2, x, 2);
        b.release(t2, l);
        b.join(t1, t2);
        let report = RaceDetector::new().detect(&b.finish());
        assert_eq!(report.n_races(), 0);
    }

    #[test]
    fn dedup_by_signature() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let lw = b.loc("w");
        let lr = b.loc("r");
        for i in 0..4 {
            b.write_at(t1, x, i, lw);
        }
        for _ in 0..4 {
            b.read_at(t2, x, 3, lr);
        }
        let trace = b.finish();
        let report = RaceDetector::new().detect(&trace);
        assert_eq!(report.n_races(), 1, "one signature ⇒ one report");
        let cfg = DetectorConfig {
            dedup_signatures: false,
            ..Default::default()
        };
        let report = RaceDetector::with_config(cfg).detect(&trace);
        assert!(report.n_races() > 1);
    }

    #[test]
    fn windowing_misses_cross_window_races_but_stays_sound() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let w = b.write(t1, x, 1);
        for i in 0..10 {
            b.write(t1, x, i + 2); // filler to push the read far away
        }
        let r = b.read(t2, x, 11);
        let _ = (w, r);
        let trace = b.finish();
        // Tiny windows: the write and read land in different windows, and
        // fixed mode cannot see across the boundary.
        let cfg = DetectorConfig {
            window_size: 3,
            window_mode: WindowMode::Fixed,
            ..Default::default()
        };
        let small = RaceDetector::with_config(cfg).detect(&trace);
        // Full window: the race is found.
        let big = RaceDetector::new().detect(&trace);
        assert!(big.n_races() >= 1);
        assert!(small.n_races() <= big.n_races());
    }

    #[test]
    fn batch_and_per_cop_agree() {
        // Batch (incremental, selector-guarded equality) and per-COP
        // (glued-variable) solving must report identical signatures.
        for seed in [3u64, 17, 99] {
            let trace = {
                let p = crate::config::DetectorConfig::default();
                let _ = p;
                // A small racy/locked mix.
                let mut b = TraceBuilder::new();
                let x = b.var("x");
                let y = b.var("y");
                let l = b.new_lock("l");
                let t1 = ThreadId::MAIN;
                let t2 = b.fork(t1);
                let t3 = b.fork(t1);
                b.acquire(t1, l);
                b.write(t1, x, seed as i64);
                b.write(t1, y, 1);
                b.release(t1, l);
                b.acquire(t2, l);
                b.read(t2, y, 1);
                b.release(t2, l);
                b.read(t2, x, seed as i64);
                b.write(t3, y, 2);
                b.join(t1, t2);
                b.join(t1, t3);
                b.finish()
            };
            for mode in [ConsistencyMode::ControlFlow, ConsistencyMode::WholeTrace] {
                let batched = RaceDetector::with_config(DetectorConfig {
                    batch_windows: true,
                    mode,
                    ..Default::default()
                })
                .detect(&trace);
                let per_cop = RaceDetector::with_config(DetectorConfig {
                    batch_windows: false,
                    mode,
                    ..Default::default()
                })
                .detect(&trace);
                assert_eq!(
                    batched.signatures(),
                    per_cop.signatures(),
                    "seed {seed} mode {mode:?}"
                );
                assert_eq!(batched.stats.witness_failures, 0);
                assert_eq!(per_cop.stats.witness_failures, 0);
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let report = RaceDetector::new().detect(&figure1_trace());
        assert_eq!(report.stats.windows, 1);
        assert!(report.stats.cops_solved >= 1);
        assert!(report.stats.qc_signatures >= 1);
        assert!(report.stats.sat >= 1);
    }

    #[test]
    fn injected_panic_fails_window_without_killing_run() {
        use crate::config::{Fault, FaultPlan};
        use std::sync::Arc;
        let cfg = DetectorConfig {
            fault_plan: Some(Arc::new(FaultPlan::new().inject(0, 0, Fault::Panic))),
            ..Default::default()
        };
        let report = RaceDetector::with_config(cfg).detect(&figure1_trace());
        assert_eq!(report.stats.windows, 1);
        assert_eq!(report.stats.failed_windows, 1);
        assert_eq!(report.failed_windows.len(), 1);
        assert!(report.failed_windows[0].reason.contains("injected fault"));
        assert_eq!(report.n_races(), 0, "the only window failed");
        assert!(report.is_degraded());
    }

    #[test]
    fn injected_soft_faults_are_tallied_as_undecided() {
        use crate::config::{Fault, FaultPlan};
        use crate::report::UndecidedReason;
        use std::sync::Arc;
        // Two independent racy pairs (distinct signatures) ⇒ two COPs in
        // the window's solve order, so both fault coordinates fire.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.write(t1, x, 1);
        b.read(t2, x, 1);
        b.write(t1, y, 1);
        b.read(t2, y, 1);
        let trace = b.finish();
        let plan = FaultPlan::new()
            .inject(0, 0, Fault::Timeout)
            .inject(0, 1, Fault::EncodeError);
        let cfg = DetectorConfig {
            fault_plan: Some(Arc::new(plan)),
            ..Default::default()
        };
        let report = RaceDetector::with_config(cfg).detect(&trace);
        assert_eq!(report.stats.failed_windows, 0);
        assert!(report.stats.undecided >= 2, "{report}");
        assert_eq!(
            report.stats.undecided_by_reason[&UndecidedReason::Timeout],
            1
        );
        assert_eq!(
            report.stats.undecided_by_reason[&UndecidedReason::EncodeError],
            1
        );
        assert!(report.is_degraded());
    }

    #[test]
    fn retry_split_rescues_injected_timeout() {
        use crate::config::{Fault, FaultPlan};
        use std::sync::Arc;
        // Figure 1 has one racy COP; force its solve to "time out", then
        // let the retry policy re-solve it in a half window. The race's
        // two events both land in one half only if the window splits
        // around them — use a trace where the racy pair is adjacent at
        // the front and pad the back half with race-free filler.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.write(t1, x, 1);
        b.read(t2, x, 1);
        for i in 0..8 {
            b.write(t1, y, i); // same-thread filler: no new COPs
        }
        let trace = b.finish();
        let base = RaceDetector::new().detect(&trace);
        assert_eq!(base.n_races(), 1, "sanity: the pair races");

        let plan = Some(Arc::new(FaultPlan::new().inject(0, 0, Fault::Timeout)));
        let without_retry = RaceDetector::with_config(DetectorConfig {
            fault_plan: plan.clone(),
            ..Default::default()
        })
        .detect(&trace);
        assert_eq!(without_retry.n_races(), 0);
        assert_eq!(without_retry.stats.undecided, 1);
        assert_eq!(without_retry.stats.retried_cops, 0);

        let with_retry = RaceDetector::with_config(DetectorConfig {
            fault_plan: plan,
            retry_split: true,
            ..Default::default()
        })
        .detect(&trace);
        assert_eq!(with_retry.stats.retried_cops, 1);
        assert_eq!(with_retry.n_races(), 1, "{with_retry}");
        assert_eq!(with_retry.stats.undecided, 0);
        assert!(!with_retry.is_degraded());
    }

    #[test]
    fn faulted_reports_identical_across_thread_counts() {
        use crate::config::{Fault, FaultPlan};
        use std::sync::Arc;
        // Many small windows + a mixed fault plan: the merged report must
        // render byte-identically at every parallelism level.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        for i in 0..12 {
            b.write(t1, x, i);
            b.read(t2, x, i);
            b.write(t2, y, i);
            b.read(t1, y, i);
        }
        let trace = b.finish();
        let plan = Arc::new(
            FaultPlan::new()
                .inject(1, 0, Fault::Panic)
                .inject(2, 0, Fault::Timeout)
                .inject(3, 1, Fault::EncodeError),
        );
        let summaries: Vec<String> = [1usize, 2, 4, 8]
            .into_iter()
            .map(|workers| {
                let cfg = DetectorConfig {
                    window_size: 8,
                    parallelism: workers,
                    fault_plan: Some(plan.clone()),
                    ..Default::default()
                };
                RaceDetector::with_config(cfg)
                    .detect(&trace)
                    .deterministic_summary()
            })
            .collect();
        assert!(summaries[0].contains("failed=1"), "{}", summaries[0]);
        for s in &summaries[1..] {
            assert_eq!(&summaries[0], s);
        }
    }

    /// A multi-window trace with a racy pair in (at least) the first and
    /// last windows under `window_size`.
    fn multi_window_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        for i in 0..16 {
            b.write(t1, x, i);
            b.read(t2, x, i);
            b.write(t2, y, i);
            b.read(t1, y, i);
        }
        b.finish()
    }

    #[test]
    fn pipelined_matches_eager_at_every_worker_count() {
        let trace = multi_window_trace();
        let eager = RaceDetector::with_config(DetectorConfig {
            window_size: 8,
            parallelism: 1,
            ..Default::default()
        })
        .detect(&trace);
        assert!(eager.n_races() >= 1, "sanity: the workload races");
        assert_eq!(eager.stats.peak_window_residency, eager.stats.windows);
        for workers in [1usize, 2, 4, 8] {
            let cfg = DetectorConfig {
                window_size: 8,
                parallelism: workers,
                ..Default::default()
            };
            let piped = RaceDetector::with_config(cfg).detect_pipelined(&trace);
            assert_eq!(
                piped.deterministic_summary(),
                eager.deterministic_summary(),
                "workers={workers}"
            );
            assert!(
                piped.stats.peak_window_residency <= workers + (workers + 2) + 1,
                "workers={workers} peak={}",
                piped.stats.peak_window_residency
            );
            assert!(piped.stats.time_to_first_race.is_some());
        }
    }

    #[test]
    fn stream_detection_matches_whole_file_for_both_formats() {
        let trace = multi_window_trace();
        let cfg = || DetectorConfig {
            window_size: 8,
            parallelism: 2,
            ..Default::default()
        };
        let eager = RaceDetector::with_config(cfg()).detect(&trace);
        for input in [rvtrace::to_json(&trace), rvtrace::to_ndjson(&trace)] {
            let streamed = RaceDetector::with_config(cfg())
                .detect_stream(input.as_bytes())
                .unwrap();
            assert_eq!(
                streamed.report.deterministic_summary(),
                eager.deterministic_summary()
            );
            assert_eq!(streamed.trace.events(), trace.events());
            assert_eq!(streamed.ingest.bytes, input.len());
            assert_eq!(streamed.ingest.events, trace.len());
            assert!(streamed.report.stats.ingest_overlap.is_some());
        }
    }

    #[test]
    fn stream_detection_handles_empty_and_partial_windows() {
        // Shorter than one window, and an exact multiple of the window
        // size: the streamed window count must match the eager one.
        let trace = multi_window_trace(); // 65 events with the fork
        for window_size in [usize::MAX, 65, 13] {
            let cfg = || DetectorConfig {
                window_size,
                parallelism: 2,
                ..Default::default()
            };
            let eager = RaceDetector::with_config(cfg()).detect(&trace);
            let streamed = RaceDetector::with_config(cfg())
                .detect_stream(rvtrace::to_ndjson(&trace).as_bytes())
                .unwrap();
            assert_eq!(
                streamed.report.deterministic_summary(),
                eager.deterministic_summary(),
                "window_size={window_size}"
            );
        }
        // Zero events, valid document.
        let empty = "{\"events\":[],\"initial_values\":{},\"volatiles\":[],\
                     \"wait_links\":[],\"loc_names\":{},\"var_names\":{}}";
        let streamed = RaceDetector::new().detect_stream(empty.as_bytes()).unwrap();
        assert_eq!(streamed.report.stats.windows, 0);
        assert_eq!(streamed.report.n_races(), 0);
        assert!(streamed.trace.is_empty());
    }

    #[test]
    fn stream_detection_propagates_parse_and_validation_errors() {
        let trace = multi_window_trace();
        let json = rvtrace::to_json(&trace);
        let cut = &json[..json.len() / 2];
        let whole = rvtrace::from_json(cut).unwrap_err();
        let streamed = RaceDetector::new()
            .detect_stream(cut.as_bytes())
            .unwrap_err();
        assert_eq!(streamed.message, whole.message);
        assert_eq!(streamed.offset, whole.offset);

        let bad_links = "{\"events\":[{\"thread\":0,\"kind\":\"Branch\",\"loc\":0}],\
             \"initial_values\":{},\"volatiles\":[],\
             \"wait_links\":[{\"release\":0,\"acquire\":99,\"notify\":null}],\
             \"loc_names\":{},\"var_names\":{}}";
        let err = RaceDetector::new()
            .detect_stream(bad_links.as_bytes())
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    /// A racy pair astride the window-size-3 boundary: the write's last
    /// occurrence and the read land in different windows, with nothing
    /// in the read's window to conflict with.
    fn straddling_pair_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let lw = b.loc("w");
        let lr = b.loc("r");
        b.write_at(t1, x, 1, lw);
        for i in 0..10 {
            b.write_at(t1, x, i + 2, lw); // same-thread filler, one signature
        }
        b.read_at(t2, x, 11, lr);
        b.finish()
    }

    #[test]
    fn cone_mode_finds_the_straddling_race_fixed_misses() {
        let trace = straddling_pair_trace();
        let cfg = |mode| DetectorConfig {
            window_size: 3,
            window_mode: mode,
            ..Default::default()
        };
        let fixed = RaceDetector::with_config(cfg(WindowMode::Fixed)).detect(&trace);
        assert_eq!(fixed.n_races(), 0, "fixed windows cannot see the pair");
        let cone = RaceDetector::with_config(cfg(WindowMode::Cone)).detect(&trace);
        assert_eq!(cone.n_races(), 1, "{cone}");
        assert!(cone.stats.straddle_cops >= 1);
        assert_eq!(cone.stats.straddle_races, 1);
        assert!(cone.stats.spill_peak_events > 0);
        // The race is attributed to the extended view, which starts
        // before the final window.
        let race = &cone.races[0];
        assert!(race.window.start < race.window.end);
        assert!(race.window.start < trace.len() - (trace.len() % 3).max(1));
        // The whole-trace verdict agrees: this is a real race, and with
        // one shared location pair, one signature.
        let whole = RaceDetector::new().detect(&trace);
        assert_eq!(whole.n_races(), 1);
        assert_eq!(whole.races[0].signature, cone.races[0].signature);
    }

    /// Every conflicting pair sits inside its own window: var groups of
    /// four events aligned to the window size, with a padded first window.
    fn non_straddling_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let pad = b.var("pad");
        let warm = b.var("warm");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        // t2's implicit Begin fires here, inside window 0; `warm` is
        // private to t2, `pad` to t1, so neither can straddle.
        b.write(t2, warm, 0);
        b.write(t1, pad, 0); // fork + begin + warm + pad fill window 0
        for w in 0..4i64 {
            let v = b.var(&format!("v{w}"));
            b.write(t1, v, w);
            b.read(t2, v, w);
            b.write(t1, v, w + 1);
            b.read(t2, v, w + 1);
        }
        b.finish()
    }

    #[test]
    fn cone_mode_is_byte_identical_to_fixed_on_non_straddling_traces() {
        let trace = non_straddling_trace();
        for workers in [1usize, 4] {
            let cfg = |mode| DetectorConfig {
                window_size: 4,
                parallelism: workers,
                window_mode: mode,
                ..Default::default()
            };
            let fixed = RaceDetector::with_config(cfg(WindowMode::Fixed)).detect(&trace);
            let cone = RaceDetector::with_config(cfg(WindowMode::Cone)).detect(&trace);
            assert!(fixed.n_races() >= 1, "sanity: the workload races");
            assert_eq!(
                cone.deterministic_summary(),
                fixed.deterministic_summary(),
                "workers={workers}"
            );
            assert_eq!(cone.stats.straddle_cops, 0);
            assert_eq!(cone.stats.spill_peak_events, 0);
        }
    }

    #[test]
    fn spill_budget_zero_degrades_straddles_to_boundary_budget() {
        let trace = straddling_pair_trace();
        let cfg = DetectorConfig {
            window_size: 3,
            window_mode: WindowMode::Cone,
            spill_budget: 0,
            ..Default::default()
        };
        let report = RaceDetector::with_config(cfg).detect(&trace);
        assert_eq!(report.n_races(), 0, "no solving past the budget floor");
        assert!(report.stats.boundary_over_budget >= 1, "{report}");
        assert_eq!(report.stats.straddle_cops, 0);
        assert!(report.stats.undecided >= 1, "degradation is not silent");
        assert!(report.is_degraded());
        assert!(
            report.deterministic_summary().contains("boundary:"),
            "{}",
            report.deterministic_summary()
        );
    }

    #[test]
    fn straddle_dedup_is_deterministic_across_worker_counts_and_drivers() {
        // The same signature races in-window (window 0) *and* astride a
        // later boundary: the straddling duplicate must dedup identically
        // whether windows were solved serially, pipelined, or streamed.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let lw = b.loc("w");
        let lr = b.loc("r");
        b.write_at(t1, x, 1, lw);
        b.read_at(t2, x, 1, lr); // in-window race, window 0
        for i in 0..6 {
            b.write(t1, y, i); // filler to cross a boundary
        }
        b.write_at(t1, x, 2, lw); // same signature again...
        for i in 0..3 {
            b.write(t1, y, i + 6);
        }
        b.read_at(t2, x, 2, lr); // ...read astride the next boundary
        let trace = b.finish();
        let summaries: Vec<String> = [1usize, 2, 4, 8]
            .into_iter()
            .flat_map(|workers| {
                let cfg = || DetectorConfig {
                    window_size: 4,
                    parallelism: workers,
                    ..Default::default()
                };
                let eager = RaceDetector::with_config(cfg()).detect(&trace);
                let piped = RaceDetector::with_config(cfg()).detect_pipelined(&trace);
                let streamed = RaceDetector::with_config(cfg())
                    .detect_stream(rvtrace::to_ndjson(&trace).as_bytes())
                    .unwrap();
                [
                    eager.deterministic_summary(),
                    piped.deterministic_summary(),
                    streamed.report.deterministic_summary(),
                ]
            })
            .collect();
        for s in &summaries[1..] {
            assert_eq!(&summaries[0], s);
        }
        assert!(summaries[0].contains("races=1"), "{}", summaries[0]);
    }

    #[test]
    fn straddle_pass_respects_tier_and_slice_toggles() {
        let trace = straddling_pair_trace();
        let mut baseline: Option<usize> = None;
        for (tiers, slice) in [(true, true), (true, false), (false, true), (false, false)] {
            let cfg = DetectorConfig {
                window_size: 3,
                tiers,
                slice,
                ..Default::default()
            };
            let report = RaceDetector::with_config(cfg).detect(&trace);
            let races = report.n_races();
            assert_eq!(
                *baseline.get_or_insert(races),
                races,
                "tiers={tiers} slice={slice}"
            );
            assert_eq!(races, 1, "tiers={tiers} slice={slice}");
        }
    }
}
