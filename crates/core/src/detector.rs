//! The windowed detection driver (paper §4–5).
//!
//! For each fixed-size window: enumerate COPs, quick-check them, encode the
//! survivors, solve with a per-COP budget, extract and validate a witness on
//! SAT, and deduplicate by signature across the whole run.

use std::collections::HashSet;
use std::time::Instant;

use rvsmt::{Budget, SmtResult, Solver};
use rvtrace::{RaceSignature, Trace, View, ViewExt};

use crate::config::DetectorConfig;
use crate::cop::enumerate_cops;
use crate::encoder::{encode, encode_window, EncoderOptions};
use crate::report::{DetectionReport, RaceReport};
use crate::witness::{extract_witness, extract_witness_with};

/// The maximal sound predictive race detector.
///
/// # Examples
///
/// Detect the paper's Figure 1 race:
///
/// ```
/// use rvcore::RaceDetector;
/// use rvtrace::{ThreadId, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// let t2 = b.fork(ThreadId::MAIN);
/// b.write(ThreadId::MAIN, x, 1);
/// b.read(t2, x, 1);
/// let trace = b.finish();
///
/// let report = RaceDetector::new().detect(&trace);
/// assert_eq!(report.n_races(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RaceDetector {
    config: DetectorConfig,
}

impl RaceDetector {
    /// A detector with the paper's default configuration.
    pub fn new() -> Self {
        RaceDetector { config: DetectorConfig::default() }
    }

    /// A detector with an explicit configuration.
    pub fn with_config(config: DetectorConfig) -> Self {
        RaceDetector { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs detection over the whole trace, window by window.
    pub fn detect(&self, trace: &Trace) -> DetectionReport {
        let start = Instant::now();
        let mut report = DetectionReport::default();
        let mut racy_signatures: HashSet<RaceSignature> = HashSet::new();
        for view in trace.windows(self.config.window_size) {
            self.detect_in_view(&view, &mut report, &mut racy_signatures);
        }
        report.stats.total_time = start.elapsed();
        report
    }

    /// Runs detection over a single pre-built view (used by benchmarks and
    /// by the baselines that share this driver).
    pub fn detect_in_window(&self, view: &View<'_>) -> DetectionReport {
        let start = Instant::now();
        let mut report = DetectionReport::default();
        let mut racy = HashSet::new();
        self.detect_in_view(view, &mut report, &mut racy);
        report.stats.total_time = start.elapsed();
        report
    }

    fn detect_in_view(
        &self,
        view: &View<'_>,
        report: &mut DetectionReport,
        racy_signatures: &mut HashSet<RaceSignature>,
    ) {
        let cfg = &self.config;
        report.stats.windows += 1;
        let enumeration =
            enumerate_cops(view, cfg.quick_check, cfg.max_cops_per_signature);
        report.stats.qc_signatures += enumeration.qc_signatures;
        report.stats.pairs_considered += enumeration.pairs_considered;
        let budget = Budget {
            max_conflicts: cfg.max_conflicts,
            timeout: Some(cfg.solver_timeout),
        };
        let opts = EncoderOptions { mode: cfg.mode, prune_write_sets: cfg.prune_write_sets };
        if cfg.batch_windows {
            self.solve_batched(view, enumeration.cops, opts, &budget, report, racy_signatures);
            return;
        }
        for cop in enumeration.cops {
            let signature = RaceSignature::of_cop(view.trace(), cop);
            if cfg.dedup_signatures && racy_signatures.contains(&signature) {
                continue;
            }
            let solve_start = Instant::now();
            let encoded = encode(view, cop, opts);
            let mut solver = Solver::new(&encoded.fb);
            if cfg.phase_hints {
                solver.hint_atom_phases(|a| encoded.phase_hint(a));
            }
            let verdict = solver.solve(&budget);
            report.stats.solver_time += solve_start.elapsed();
            report.stats.cops_solved += 1;
            match verdict {
                SmtResult::Unsat => report.stats.unsat += 1,
                SmtResult::Unknown => report.stats.unknown += 1,
                SmtResult::Sat => {
                    report.stats.sat += 1;
                    if cfg.validate_witnesses {
                        match extract_witness(view, cop, &encoded, &solver, cfg.mode) {
                            Ok(witness) => {
                                racy_signatures.insert(signature);
                                report.races.push(RaceReport {
                                    cop,
                                    signature,
                                    window: view.range(),
                                    schedule: witness.schedule,
                                });
                            }
                            Err(_) => report.stats.witness_failures += 1,
                        }
                    } else {
                        racy_signatures.insert(signature);
                        report.races.push(RaceReport {
                            cop,
                            signature,
                            window: view.range(),
                            schedule: rvtrace::Schedule(vec![cop.first, cop.second]),
                        });
                    }
                }
            }
        }
    }
}

impl RaceDetector {
    /// Batch mode: one shared encoding + incremental solver per window,
    /// per-COP selector assumptions.
    fn solve_batched(
        &self,
        view: &View<'_>,
        cops: Vec<rvtrace::Cop>,
        opts: EncoderOptions,
        budget: &Budget,
        report: &mut DetectionReport,
        racy_signatures: &mut HashSet<RaceSignature>,
    ) {
        if cops.is_empty() {
            return;
        }
        let cfg = &self.config;
        let solve_start = Instant::now();
        let encoded = encode_window(view, &cops, opts);
        let mut solver = Solver::new(&encoded.fb);
        if cfg.phase_hints {
            solver.hint_atom_phases(|a| encoded.phase_hint(a));
        }
        report.stats.solver_time += solve_start.elapsed();
        for (i, &cop) in encoded.cops.iter().enumerate() {
            let signature = RaceSignature::of_cop(view.trace(), cop);
            if cfg.dedup_signatures && racy_signatures.contains(&signature) {
                continue;
            }
            let solve_start = Instant::now();
            let verdict = solver.solve_assuming(budget, &[encoded.selectors[i]]);
            report.stats.solver_time += solve_start.elapsed();
            report.stats.cops_solved += 1;
            match verdict {
                SmtResult::Unsat => report.stats.unsat += 1,
                SmtResult::Unknown => report.stats.unknown += 1,
                SmtResult::Sat => {
                    report.stats.sat += 1;
                    if cfg.validate_witnesses {
                        match extract_witness_with(
                            view,
                            cop,
                            |e| encoded.ovar(e),
                            &encoded.required_branches[i],
                            &solver,
                            cfg.mode,
                        ) {
                            Ok(witness) => {
                                racy_signatures.insert(signature);
                                report.races.push(RaceReport {
                                    cop,
                                    signature,
                                    window: view.range(),
                                    schedule: witness.schedule,
                                });
                            }
                            Err(_) => report.stats.witness_failures += 1,
                        }
                    } else {
                        racy_signatures.insert(signature);
                        report.races.push(RaceReport {
                            cop,
                            signature,
                            window: view.range(),
                            schedule: rvtrace::Schedule(vec![cop.first, cop.second]),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConsistencyMode;
    use rvtrace::{ThreadId, TraceBuilder};

    /// Paper Figure 1/4: exactly one race, (3,10) on x.
    fn figure1_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.write(t1, x, 1);
        b.write(t1, y, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, y, 1);
        b.release(t2, l);
        b.read(t2, x, 1);
        b.branch(t2);
        b.write(t2, z, 1);
        b.join(t1, t2);
        b.read(t1, z, 1);
        b.branch(t1);
        b.finish()
    }

    #[test]
    fn figure1_exactly_one_race() {
        let report = RaceDetector::new().detect(&figure1_trace());
        assert_eq!(report.n_races(), 1, "{report}");
        assert_eq!(report.stats.witness_failures, 0);
        let race = &report.races[0];
        // The race is on x: both events access x.
        let tr = figure1_trace();
        let var = tr.event(race.cop.first).kind.var();
        assert_eq!(var, tr.event(race.cop.second).kind.var());
    }

    #[test]
    fn figure1_said_finds_none() {
        let cfg = DetectorConfig { mode: ConsistencyMode::WholeTrace, ..Default::default() };
        let report = RaceDetector::with_config(cfg).detect(&figure1_trace());
        assert_eq!(report.n_races(), 0, "{report}");
        assert!(report.stats.unsat > 0);
    }

    #[test]
    fn race_free_program_clean() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.write(t1, x, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.write(t2, x, 2);
        b.release(t2, l);
        b.join(t1, t2);
        let report = RaceDetector::new().detect(&b.finish());
        assert_eq!(report.n_races(), 0);
    }

    #[test]
    fn dedup_by_signature() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let lw = b.loc("w");
        let lr = b.loc("r");
        for i in 0..4 {
            b.write_at(t1, x, i, lw);
        }
        for _ in 0..4 {
            b.read_at(t2, x, 3, lr);
        }
        let trace = b.finish();
        let report = RaceDetector::new().detect(&trace);
        assert_eq!(report.n_races(), 1, "one signature ⇒ one report");
        let cfg = DetectorConfig { dedup_signatures: false, ..Default::default() };
        let report = RaceDetector::with_config(cfg).detect(&trace);
        assert!(report.n_races() > 1);
    }

    #[test]
    fn windowing_misses_cross_window_races_but_stays_sound() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let w = b.write(t1, x, 1);
        for i in 0..10 {
            b.write(t1, x, i + 2); // filler to push the read far away
        }
        let r = b.read(t2, x, 11);
        let _ = (w, r);
        let trace = b.finish();
        // Tiny windows: the write and read land in different windows.
        let cfg = DetectorConfig { window_size: 3, ..Default::default() };
        let small = RaceDetector::with_config(cfg).detect(&trace);
        // Full window: the race is found.
        let big = RaceDetector::new().detect(&trace);
        assert!(big.n_races() >= 1);
        assert!(small.n_races() <= big.n_races());
    }

    #[test]
    fn batch_and_per_cop_agree() {
        // Batch (incremental, selector-guarded equality) and per-COP
        // (glued-variable) solving must report identical signatures.
        for seed in [3u64, 17, 99] {
            let trace = {
                let p = crate::config::DetectorConfig::default();
                let _ = p;
                // A small racy/locked mix.
                let mut b = TraceBuilder::new();
                let x = b.var("x");
                let y = b.var("y");
                let l = b.new_lock("l");
                let t1 = ThreadId::MAIN;
                let t2 = b.fork(t1);
                let t3 = b.fork(t1);
                b.acquire(t1, l);
                b.write(t1, x, seed as i64);
                b.write(t1, y, 1);
                b.release(t1, l);
                b.acquire(t2, l);
                b.read(t2, y, 1);
                b.release(t2, l);
                b.read(t2, x, seed as i64);
                b.write(t3, y, 2);
                b.join(t1, t2);
                b.join(t1, t3);
                b.finish()
            };
            for mode in [ConsistencyMode::ControlFlow, ConsistencyMode::WholeTrace] {
                let batched = RaceDetector::with_config(DetectorConfig {
                    batch_windows: true,
                    mode,
                    ..Default::default()
                })
                .detect(&trace);
                let per_cop = RaceDetector::with_config(DetectorConfig {
                    batch_windows: false,
                    mode,
                    ..Default::default()
                })
                .detect(&trace);
                assert_eq!(
                    batched.signatures(),
                    per_cop.signatures(),
                    "seed {seed} mode {mode:?}"
                );
                assert_eq!(batched.stats.witness_failures, 0);
                assert_eq!(per_cop.stats.witness_failures, 0);
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let report = RaceDetector::new().detect(&figure1_trace());
        assert_eq!(report.stats.windows, 1);
        assert!(report.stats.cops_solved >= 1);
        assert!(report.stats.qc_signatures >= 1);
        assert!(report.stats.sat >= 1);
    }
}
