//! Tiered pre-solver screens (ROADMAP item 1): sound near-linear analyses
//! that *decide* COPs before the Φ encoding is ever built.
//!
//! Two screens run per window, per COP, ahead of the SMT core:
//!
//! * **Tier A — sync-preserving confirmation** (after SyncP, Mathur /
//!   Pavlogiannis / Viswanathan): builds the candidate reordering that
//!   schedules exactly the MHB-prefixes of the two accesses and then the
//!   accesses back to back, and *replays* it against the window — thread
//!   projections, fork/join, lock mutual exclusion, wait/notify matching
//!   (including the encoder's cross-link non-overlap constraint, which
//!   [`check_schedule`] alone does not enforce), and read-value
//!   preservation for every read the consistency mode constrains. When the
//!   replay succeeds the schedule *is* a model of `Φ`, so the COP is a
//!   race without a solver call.
//! * **Tier B — entailment refutation** (WCP/weak-HB flavored): computes
//!   the order edges `Φ_mhb ∧ Φ_lock ∧ π_cf` *entails* — program order,
//!   fork/join, wait links, one-sided lock disjunctions, unique-justifier
//!   read matches and their interference edges — and refutes the COP when
//!   the entailed order already contradicts the race adjacency (a path
//!   `second → first`, or any event strictly between the two). Every edge
//!   is a consequence of the formula, so refutation implies the solver
//!   would answer `Unsat`.
//!
//! Whatever neither screen decides is the *residue* that reaches the
//! existing sliced Φ encoding unchanged. Both screens are window-local and
//! deterministic, so reports stay byte-identical to solver-only mode at
//! any worker count; [`decide`](TierAnalysis::decide) runs the refuter
//! first because it is the cheaper screen, but attribution is always
//! `Tier::A` for confirmations and `Tier::B` for refutations.
//!
//! Soundness arguments for each screen are spelled out in DESIGN.md
//! ("Tiered cascade").

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use rvtrace::{
    check_schedule, schedule_read_values, Cop, EventId, EventKind, Schedule, View, WaitLink,
};

use crate::config::ConsistencyMode;
use crate::encoder::write_sets;

/// Which stage of the detection cascade decided a COP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The sync-preserving confirmation screen.
    A,
    /// The entailment refutation screen.
    B,
    /// The SMT core (the residue path, and every fault-forced verdict).
    Solver,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::A => write!(f, "tier-a"),
            Tier::B => write!(f, "tier-b"),
            Tier::Solver => write!(f, "solver"),
        }
    }
}

/// The cascade's verdict for one COP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierDecision {
    /// Tier A found a consistent reordering racing the pair: the COP is a
    /// race (the witness still comes from the canonical re-solve path).
    Confirmed,
    /// Tier B proved no sound reordering races the pair: `Φ` is `Unsat`.
    Refuted,
    /// Neither screen decided; the COP goes to the solver.
    Residue,
}

/// Entailed order facts of one read's match constraint: either the
/// disjunction is empty (`refute`), or it has a unique disjunct whose
/// conjuncts become unconditional `edges` and forced-feasible `forces`.
#[derive(Debug, Clone, Default)]
struct ReadFacts {
    refute: bool,
    edges: Vec<(EventId, EventId)>,
    forces: Vec<EventId>,
}

/// A both-disjunct lock-span pair `(r1, a2, r2, a1)` standing for the
/// assertion `O_r1 < O_a2 ∨ O_r2 < O_a1`.
type CsPair = (EventId, EventId, EventId, EventId);

/// A *conditional* lock-span pair, mirroring `encode_lock_conditional`:
/// `d1 ∨ d2 ∨ D < O_h1 ∨ D < O_h2` where `d1 = (r1 < a2)`,
/// `d2 = (r2 < a1)` and `D` is the per-COP cut. Used in the maximal
/// (ControlFlow) mode, where a span acquired past the racing pair needs no
/// serialization — so no span pair may become an unconditional base edge.
#[derive(Debug, Clone, Copy)]
struct CondPair {
    d1: Option<(EventId, EventId)>,
    d2: Option<(EventId, EventId)>,
    h1: Option<EventId>,
    h2: Option<EventId>,
}

/// Upper bound on both-disjunct lock pairs kept as E2 candidates: bounds
/// the quadratic span enumeration on hot locks. Dropping candidates only
/// loses refutation power, never soundness.
const MAX_CS_PAIRS: usize = 256;

/// Bound on per-COP lock-disjunction propagation rounds.
const MAX_E2_ROUNDS: usize = 3;

/// The per-window tier state: the entailed base order graph, memoized
/// per-read facts, the wait links and undischarged lock disjunctions, and
/// the per-tier time accumulators the detector folds into its report.
#[derive(Debug)]
pub struct TierAnalysis<'a> {
    view: &'a View<'a>,
    mode: ConsistencyMode,
    prune: bool,
    start: u32,
    n: usize,
    /// Entailed base edges (dense index), forward and reverse.
    fwd: Vec<Vec<u32>>,
    rev: Vec<Vec<u32>>,
    /// True when the window formula is `Unsat` regardless of the COP.
    refute_all: bool,
    /// Complete in-view wait links (the exact set the encoder constrains).
    links: Vec<WaitLink>,
    /// Both-disjunct lock pairs left undischarged by the base fixpoint
    /// (whole-trace mode only).
    cs_pairs: Vec<CsPair>,
    /// Conditional lock pairs, discharged per COP against the cut
    /// (ControlFlow mode only).
    cond_pairs: Vec<CondPair>,
    facts: HashMap<EventId, ReadFacts>,
    tier_a_time: Duration,
    tier_b_time: Duration,
    // BFS scratch (epoch-marked so per-COP queries need no clearing).
    mark_fwd: Vec<u32>,
    mark_rev: Vec<u32>,
    epoch: u32,
}

impl<'a> TierAnalysis<'a> {
    /// Builds the base entailment graph for `view`: program order, fork →
    /// begin, end → join, wait links, single-disjunct lock orderings,
    /// whole-trace read matches (in [`ConsistencyMode::WholeTrace`]), and
    /// the fixpoint of lock disjunctions already discharged by those edges.
    pub fn new(view: &'a View<'a>, mode: ConsistencyMode, prune: bool) -> Self {
        let n = view.len();
        let start = view.range().start as u32;
        let mut a = TierAnalysis {
            view,
            mode,
            prune,
            start,
            n,
            fwd: vec![Vec::new(); n],
            rev: vec![Vec::new(); n],
            refute_all: false,
            links: Vec::new(),
            cs_pairs: Vec::new(),
            cond_pairs: Vec::new(),
            facts: HashMap::new(),
            tier_a_time: Duration::ZERO,
            tier_b_time: Duration::ZERO,
            mark_fwd: vec![0; n],
            mark_rev: vec![0; n],
            epoch: 0,
        };
        let t0 = Instant::now();
        a.build_base();
        a.tier_b_time += t0.elapsed();
        a
    }

    #[inline]
    fn idx(&self, e: EventId) -> u32 {
        e.0 - self.start
    }

    fn add_edge(&mut self, from: EventId, to: EventId) {
        let (f, t) = (self.idx(from), self.idx(to));
        self.fwd[f as usize].push(t);
        self.rev[t as usize].push(f);
    }

    fn build_base(&mut self) {
        let view = self.view;
        let trace = view.trace();
        // Program order: adjacent pairs suffice (reachability is
        // transitive, like the encoder's IDL `<`).
        for &t in trace.threads() {
            let evs: Vec<EventId> = view.thread_events(t).to_vec();
            for w in evs.windows(2) {
                self.add_edge(w[0], w[1]);
            }
        }
        // fork→begin and end→join edges within the view.
        let mut fork_of: HashMap<rvtrace::ThreadId, EventId> = HashMap::new();
        let mut end_of: HashMap<rvtrace::ThreadId, EventId> = HashMap::new();
        for id in view.ids() {
            match view.event(id).kind {
                EventKind::Fork { child } => {
                    fork_of.insert(child, id);
                }
                EventKind::End => {
                    end_of.insert(view.event(id).thread, id);
                }
                _ => {}
            }
        }
        for id in view.ids() {
            match view.event(id).kind {
                EventKind::Begin => {
                    if let Some(&f) = fork_of.get(&view.event(id).thread) {
                        self.add_edge(f, id);
                    }
                }
                EventKind::Join { child } => {
                    if let Some(&e) = end_of.get(&child) {
                        self.add_edge(e, id);
                    }
                }
                _ => {}
            }
        }
        // Complete in-view wait links: release < notify < re-acquire.
        let in_view = |e: EventId| view.contains(e);
        self.links = trace
            .wait_links()
            .iter()
            .filter(|wl| {
                in_view(wl.release)
                    && in_view(wl.acquire)
                    && wl.notify.map(in_view).unwrap_or(false)
            })
            .copied()
            .collect();
        for wl in self.links.clone() {
            let n = wl.notify.expect("filtered");
            self.add_edge(wl.release, n);
            self.add_edge(n, wl.acquire);
        }
        // Lock spans. Whole-trace mode matches the unconditional `Φ_lock`:
        // one-sided disjunctions are unconditional edges, the degenerate
        // (both endpoints missing) case is `ff`, and two-sided disjunctions
        // become E2 candidates (deterministic order, capped). The maximal
        // mode matches the *conditional* `Φ_lock` instead: every pair keeps
        // its acquire escape hatches and is discharged per COP, because a
        // span acquired past the racing pair constrains nothing.
        let mut pairs_dropped = 0usize;
        for lock_idx in 0..trace.n_locks() as u32 {
            let spans = view.critical_sections(rvtrace::LockId(lock_idx)).to_vec();
            for i in 0..spans.len() {
                for j in i + 1..spans.len() {
                    let (s1, s2) = (&spans[i], &spans[j]);
                    if s1.thread == s2.thread {
                        continue;
                    }
                    if self.mode == ConsistencyMode::ControlFlow {
                        let p = CondPair {
                            d1: s1.release.zip(s2.acquire),
                            d2: s2.release.zip(s1.acquire),
                            h1: s1.acquire,
                            h2: s2.acquire,
                        };
                        if p.d1.is_none() && p.d2.is_none() && p.h1.is_none() && p.h2.is_none() {
                            self.refute_all = true; // empty disjunction: ff
                        } else if self.cond_pairs.len() < MAX_CS_PAIRS {
                            self.cond_pairs.push(p);
                        } else {
                            pairs_dropped += 1;
                        }
                        continue;
                    }
                    match (s1.release, s2.acquire, s2.release, s1.acquire) {
                        (Some(r1), Some(a2), Some(r2), Some(a1)) => {
                            if self.cs_pairs.len() < MAX_CS_PAIRS {
                                self.cs_pairs.push((r1, a2, r2, a1));
                            } else {
                                pairs_dropped += 1;
                            }
                        }
                        (Some(r1), Some(a2), _, _) => self.add_edge(r1, a2),
                        (_, _, Some(r2), Some(a1)) => self.add_edge(r2, a1),
                        _ => self.refute_all = true,
                    }
                }
            }
        }
        let _ = pairs_dropped; // refutation power only; soundness unaffected
                               // Said et al.: every window read keeps its value, unconditionally,
                               // so every read's entailed facts are global edges.
        if self.mode == ConsistencyMode::WholeTrace {
            let reads: Vec<EventId> = view
                .ids()
                .filter(|&id| view.event(id).kind.is_read())
                .collect();
            for r in reads {
                let f = self.read_fact(r);
                if f.refute {
                    self.refute_all = true;
                }
                for (x, y) in f.edges {
                    self.add_edge(x, y);
                }
            }
        }
        // Base E2 fixpoint: discharge two-sided lock disjunctions whose
        // losing side the base edges already contradict.
        for _ in 0..MAX_E2_ROUNDS + 1 {
            let mut changed = false;
            let pairs = std::mem::take(&mut self.cs_pairs);
            let mut keep = Vec::with_capacity(pairs.len());
            for (r1, a2, r2, a1) in pairs {
                // `O_r1 < O_a2` is impossible iff a2 already reaches r1.
                let d1_dead = self.base_reaches(a2, r1);
                let d2_dead = self.base_reaches(a1, r2);
                match (d1_dead, d2_dead) {
                    (true, true) => self.refute_all = true,
                    (true, false) => {
                        self.add_edge(r2, a1);
                        changed = true;
                    }
                    (false, true) => {
                        self.add_edge(r1, a2);
                        changed = true;
                    }
                    (false, false) => keep.push((r1, a2, r2, a1)),
                }
            }
            self.cs_pairs = keep;
            if !changed {
                break;
            }
        }
    }

    /// The entailed order facts of `read`'s match disjunction, mirroring
    /// exactly the disjuncts `read_match` builds (memoized).
    fn read_fact(&mut self, read: EventId) -> ReadFacts {
        if let Some(f) = self.facts.get(&read) {
            return f.clone();
        }
        let view = self.view;
        let (var, value) = match view.event(read).kind {
            EventKind::Read { var, value } => (var, value),
            _ => unreachable!("read_fact on non-read"),
        };
        let (wr, wrv) = write_sets(view, read, self.prune);
        let initial_ok = value == view.initial_value(var);
        let mut f = ReadFacts::default();
        if !initial_ok && wrv.is_empty() {
            // `or_n([])` is `ff`: the read can never observe its value.
            f.refute = true;
        } else if !initial_ok && wrv.len() == 1 {
            // A unique justifying write: its whole conjunct is entailed.
            let w = wrv[0];
            f.edges.push((w, read));
            f.forces.push(w);
            for &w2 in &wr {
                if w2 == w || view.mhb(w2, w) {
                    continue;
                }
                // `Φ_mhb` kills one side of the interference disjunction:
                // w2 ⪯ read forces w2 < w; w ⪯ w2 forces read < w2. (The
                // encoder degenerates these only under `prune`, but the
                // entailment holds either way.)
                if view.mhb(w2, read) {
                    f.edges.push((w2, w));
                } else if view.mhb(w, w2) {
                    f.edges.push((read, w2));
                }
            }
        } else if initial_ok && wrv.is_empty() {
            // Only the virtual initial write can justify the read.
            for &w2 in &wr {
                f.edges.push((read, w2));
            }
        }
        self.facts.insert(read, f.clone());
        f
    }

    /// Reachability over the base graph only (no per-COP edges).
    fn base_reaches(&mut self, from: EventId, to: EventId) -> bool {
        self.epoch += 1;
        let (src, dst) = (self.idx(from), self.idx(to));
        let mut queue = vec![src];
        self.mark_fwd[src as usize] = self.epoch;
        while let Some(x) = queue.pop() {
            if x == dst {
                return true;
            }
            for &y in &self.fwd[x as usize] {
                if self.mark_fwd[y as usize] != self.epoch {
                    self.mark_fwd[y as usize] = self.epoch;
                    queue.push(y);
                }
            }
        }
        false
    }

    /// True when the base entailment graph already orders `a` before `b`
    /// (exposed for the tier-algebra unit tests).
    pub fn entailed_before(&mut self, a: EventId, b: EventId) -> bool {
        a != b && self.base_reaches(a, b)
    }

    /// Time spent in the confirmation screen so far.
    pub fn tier_a_time(&self) -> Duration {
        self.tier_a_time
    }

    /// Time spent in the refutation screen so far (including the base
    /// graph construction).
    pub fn tier_b_time(&self) -> Duration {
        self.tier_b_time
    }

    /// Runs the cascade on one COP. The refuter (Tier B) runs first
    /// because it is the cheaper screen; a COP both screens could decide
    /// cannot exist (each is sound), so the order never changes verdicts.
    pub fn decide(&mut self, cop: &Cop) -> TierDecision {
        let t0 = Instant::now();
        let refuted = self.refutes(cop);
        self.tier_b_time += t0.elapsed();
        if refuted {
            return TierDecision::Refuted;
        }
        let t0 = Instant::now();
        let confirmed = self.confirms(cop);
        self.tier_a_time += t0.elapsed();
        if confirmed {
            TierDecision::Confirmed
        } else {
            TierDecision::Residue
        }
    }

    // ----- Tier B: entailment refutation ------------------------------

    /// Marks everything forward-reachable from `src` through base + extra
    /// edges with a fresh epoch; returns the epoch used.
    fn flood(
        mark: &mut [u32],
        base: &[Vec<u32>],
        extra: &HashMap<u32, Vec<u32>>,
        src: u32,
        epoch: u32,
    ) {
        let mut queue = vec![src];
        mark[src as usize] = epoch;
        while let Some(x) = queue.pop() {
            let neighbors = base[x as usize]
                .iter()
                .chain(extra.get(&x).into_iter().flatten());
            for &y in neighbors {
                if mark[y as usize] != epoch {
                    mark[y as usize] = epoch;
                    queue.push(y);
                }
            }
        }
    }

    /// The refutation test proper: with the per-COP extra edges in place,
    /// `Φ ∧ Φ_race(cop)` is unsatisfiable iff the entailed order puts
    /// `second` before `first`, or any third event strictly between them
    /// (the race adjacency leaves no room for either).
    fn adjacency_contradicted(
        &mut self,
        cop: &Cop,
        extra_fwd: &HashMap<u32, Vec<u32>>,
        extra_rev: &HashMap<u32, Vec<u32>>,
    ) -> bool {
        let (a, b) = (self.idx(cop.first), self.idx(cop.second));
        self.epoch += 1;
        let epoch = self.epoch;
        // Forward cone of `first`, reverse cone of `second`.
        Self::flood(&mut self.mark_fwd, &self.fwd, extra_fwd, a, epoch);
        Self::flood(&mut self.mark_rev, &self.rev, extra_rev, b, epoch);
        // Any x ∉ {first, second} with first → x and x → second.
        for x in 0..self.n as u32 {
            if x == a || x == b {
                continue;
            }
            if self.mark_fwd[x as usize] == epoch && self.mark_rev[x as usize] == epoch {
                return true;
            }
        }
        // second → first: flood forward from `second`.
        self.epoch += 1;
        let epoch = self.epoch;
        Self::flood(&mut self.mark_fwd, &self.fwd, extra_fwd, b, epoch);
        self.mark_fwd[a as usize] == epoch
    }

    fn refutes(&mut self, cop: &Cop) -> bool {
        if self.refute_all {
            return true;
        }
        if !self.view.contains(cop.first) || !self.view.contains(cop.second) {
            return false;
        }
        // Per-COP forced-feasibility closure (ControlFlow only): the
        // branches `Φ_race` asserts, their thread-prior reads, and each
        // unique justifier's own closure.
        let mut extra_fwd: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut extra_rev: HashMap<u32, Vec<u32>> = HashMap::new();
        if self.mode == ConsistencyMode::ControlFlow {
            let mut seen: std::collections::HashSet<EventId> = std::collections::HashSet::new();
            let mut work: Vec<EventId> = Vec::new();
            for e in [cop.first, cop.second] {
                for br in self.view.last_branches_before(e) {
                    if seen.insert(br) {
                        work.push(br);
                    }
                }
            }
            while let Some(e) = work.pop() {
                match self.view.event(e).kind {
                    EventKind::Branch | EventKind::Write { .. } => {
                        for &r in self.view.thread_reads_before(e) {
                            if seen.insert(r) {
                                work.push(r);
                            }
                        }
                    }
                    EventKind::Read { .. } => {
                        let f = self.read_fact(e);
                        if f.refute {
                            return true;
                        }
                        for (x, y) in f.edges {
                            let (xi, yi) = (self.idx(x), self.idx(y));
                            extra_fwd.entry(xi).or_default().push(yi);
                            extra_rev.entry(yi).or_default().push(xi);
                        }
                        for w in f.forces {
                            if seen.insert(w) {
                                work.push(w);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if self.adjacency_contradicted(cop, &extra_fwd, &extra_rev) {
            return true;
        }
        // Per-COP E2 rounds: with the extra edges in place, more lock
        // disjunctions may discharge; propagate a bounded number of times.
        if self.cs_pairs.is_empty() && self.cond_pairs.is_empty() {
            return false;
        }
        let mut discharged: Vec<bool> = vec![false; self.cs_pairs.len()];
        let mut cond_discharged: Vec<bool> = vec![false; self.cond_pairs.len()];
        for _ in 0..MAX_E2_ROUNDS {
            let mut changed = false;
            for pi in 0..self.cs_pairs.len() {
                if discharged[pi] {
                    continue;
                }
                let (r1, a2, r2, a1) = self.cs_pairs[pi];
                let d1_dead = self.percop_reaches(a2, r1, &extra_fwd);
                let d2_dead = self.percop_reaches(a1, r2, &extra_fwd);
                match (d1_dead, d2_dead) {
                    (true, true) => return true,
                    (true, false) => {
                        let (x, y) = (self.idx(r2), self.idx(a1));
                        extra_fwd.entry(x).or_default().push(y);
                        extra_rev.entry(y).or_default().push(x);
                        discharged[pi] = true;
                        changed = true;
                    }
                    (false, true) => {
                        let (x, y) = (self.idx(r1), self.idx(a2));
                        extra_fwd.entry(x).or_default().push(y);
                        extra_rev.entry(y).or_default().push(x);
                        discharged[pi] = true;
                        changed = true;
                    }
                    (false, false) => {}
                }
            }
            // Conditional pairs (maximal mode): a hatch `D < O_a` is dead
            // once the acquire is entailed at-or-before the cut, i.e. it
            // reaches either access of the glued pair. With every disjunct
            // dead the window refutes the COP; with exactly one alive its
            // content becomes entailed extra edges.
            if !self.cond_pairs.is_empty() {
                self.epoch += 1;
                let cut = self.epoch;
                let (ci, cj) = (self.idx(cop.first), self.idx(cop.second));
                Self::flood(&mut self.mark_rev, &self.rev, &extra_rev, ci, cut);
                Self::flood(&mut self.mark_rev, &self.rev, &extra_rev, cj, cut);
                for pi in 0..self.cond_pairs.len() {
                    if cond_discharged[pi] {
                        continue;
                    }
                    let p = self.cond_pairs[pi];
                    let hatch_alive = |marks: &[u32], me: &Self, h: Option<EventId>| {
                        h.map_or(false, |a| marks[me.idx(a) as usize] != cut)
                    };
                    let h1 = hatch_alive(&self.mark_rev, self, p.h1);
                    let h2 = hatch_alive(&self.mark_rev, self, p.h2);
                    let d1 = match p.d1 {
                        Some((r1, a2)) => !self.percop_reaches(a2, r1, &extra_fwd),
                        None => false,
                    };
                    let d2 = match p.d2 {
                        Some((r2, a1)) => !self.percop_reaches(a1, r2, &extra_fwd),
                        None => false,
                    };
                    let push = |x: EventId,
                                y: EventId,
                                me: &Self,
                                ef: &mut HashMap<u32, Vec<u32>>,
                                er: &mut HashMap<u32, Vec<u32>>| {
                        let (xi, yi) = (me.idx(x), me.idx(y));
                        ef.entry(xi).or_default().push(yi);
                        er.entry(yi).or_default().push(xi);
                    };
                    match (d1, d2, h1, h2) {
                        (false, false, false, false) => return true,
                        (true, false, false, false) => {
                            let (r1, a2) = p.d1.expect("alive");
                            push(r1, a2, self, &mut extra_fwd, &mut extra_rev);
                            cond_discharged[pi] = true;
                            changed = true;
                        }
                        (false, true, false, false) => {
                            let (r2, a1) = p.d2.expect("alive");
                            push(r2, a1, self, &mut extra_fwd, &mut extra_rev);
                            cond_discharged[pi] = true;
                            changed = true;
                        }
                        (false, false, true, false) | (false, false, false, true) => {
                            // Forced hatch: the span must open past the
                            // cut, so both accesses precede its acquire.
                            let a = if h1 { p.h1 } else { p.h2 }.expect("alive");
                            push(cop.first, a, self, &mut extra_fwd, &mut extra_rev);
                            push(cop.second, a, self, &mut extra_fwd, &mut extra_rev);
                            cond_discharged[pi] = true;
                            changed = true;
                        }
                        _ => {} // two or more alive: no entailment yet
                    }
                }
            }
            if !changed {
                break;
            }
            if self.adjacency_contradicted(cop, &extra_fwd, &extra_rev) {
                return true;
            }
        }
        false
    }

    /// Reachability over base + per-COP extra edges.
    fn percop_reaches(
        &mut self,
        from: EventId,
        to: EventId,
        extra: &HashMap<u32, Vec<u32>>,
    ) -> bool {
        self.epoch += 1;
        let epoch = self.epoch;
        let (src, dst) = (self.idx(from), self.idx(to));
        Self::flood(&mut self.mark_fwd, &self.fwd, extra, src, epoch);
        self.mark_fwd[dst as usize] == epoch
    }

    // ----- Tier A: sync-preserving confirmation -----------------------

    /// Attempts to confirm the COP by replaying the sync-preserving
    /// candidate schedule: the MHB-prefixes of both accesses in trace
    /// order, then the two accesses back to back, then the remaining
    /// window in trace order. Success means the schedule is a model of
    /// `Φ`, i.e. a real race.
    ///
    /// Only the `first, second` orientation is replayed, because it is the
    /// only one the encoding can express: the glued per-COP mode hardwires
    /// `lt(first, second) = tt` and `lt(second, first) = ff`, and batch
    /// mode asserts `O_second = O_first + 1`. A reordering racing the pair
    /// the other way around (e.g. two same-variable writes whose later
    /// reader needs the *earlier* write last) is `Unsat` under `Φ`, and
    /// Tier A must agree with the solver byte for byte.
    fn confirms(&mut self, cop: &Cop) -> bool {
        let view = self.view;
        let (a, b) = (cop.first, cop.second);
        if !view.contains(a) || !view.contains(b) {
            return false;
        }
        if view.mhb(a, b) || view.mhb(b, a) {
            return false;
        }
        // S: everything MHB-before either access (excluding the accesses).
        let mut prefix: Vec<EventId> = Vec::new();
        let mut rest: Vec<EventId> = Vec::new();
        for e in view.ids() {
            if e == a || e == b {
                continue;
            }
            if view.mhb(e, a) || view.mhb(e, b) {
                prefix.push(e);
            } else {
                rest.push(e);
            }
        }
        let in_prefix: std::collections::HashSet<EventId> = prefix.iter().copied().collect();
        let mut order: Vec<EventId> = Vec::with_capacity(self.n);
        order.extend_from_slice(&prefix);
        order.push(a);
        order.push(b);
        order.extend_from_slice(&rest);
        let schedule = Schedule(order);
        if check_schedule(view, &schedule).is_err() {
            return false;
        }
        if !self.wait_links_non_overlapping(&schedule) {
            return false;
        }
        let values = schedule_read_values(view, &schedule);
        match self.mode {
            // Control-flow abstraction: only the forced reads (all in
            // the MHB prefix) must keep their values; the accesses
            // themselves are data-abstract.
            ConsistencyMode::ControlFlow => schedule.0.iter().all(|&e| {
                !in_prefix.contains(&e)
                    || !view.event(e).kind.is_read()
                    || values.get(&e).copied() == view.event(e).kind.value()
            }),
            // Said et al.: every read in the window keeps its value.
            ConsistencyMode::WholeTrace => schedule.0.iter().all(|&e| {
                !view.event(e).kind.is_read()
                    || values.get(&e).copied() == view.event(e).kind.value()
            }),
        }
    }

    /// The encoder's cross-link constraint, which `check_schedule` does
    /// not enforce: each notify must fall outside every *other* same-lock
    /// wait's release–acquire span.
    fn wait_links_non_overlapping(&self, schedule: &Schedule) -> bool {
        if self.links.len() < 2 {
            return true;
        }
        let mut pos: HashMap<EventId, usize> = HashMap::with_capacity(schedule.len());
        for (i, &e) in schedule.0.iter().enumerate() {
            pos.insert(e, i);
        }
        for wl in &self.links {
            let n = wl.notify.expect("filtered");
            let lock = self.view.event(n).kind.lock();
            for other in &self.links {
                if other.release == wl.release {
                    continue;
                }
                if self.view.event(other.acquire).kind.lock() != lock {
                    continue;
                }
                let (pn, pr, pa) = (pos[&n], pos[&other.release], pos[&other.acquire]);
                if !(pn < pr || pa < pn) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{ThreadId, TraceBuilder, ViewExt};

    #[test]
    fn tier_display_names() {
        assert_eq!(Tier::A.to_string(), "tier-a");
        assert_eq!(Tier::B.to_string(), "tier-b");
        assert_eq!(Tier::Solver.to_string(), "solver");
    }

    #[test]
    fn confirms_trivial_race_and_orders_program_order() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t2 = b.fork(ThreadId::MAIN);
        let w = b.write(ThreadId::MAIN, x, 1);
        let r = b.read(t2, x, 1);
        let trace = b.finish();
        let view = trace.full_view();
        let mut tiers = TierAnalysis::new(&view, ConsistencyMode::ControlFlow, true);
        let cop = Cop::new(w, r);
        assert_eq!(tiers.decide(&cop), TierDecision::Confirmed);
        // fork → begin is an entailed base edge; accesses stay unordered.
        assert!(!tiers.entailed_before(w, r));
        assert!(!tiers.entailed_before(r, w));
    }

    #[test]
    fn refutes_mhb_ordered_pair() {
        // join orders the child's write before the parent's read.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t2 = b.fork(ThreadId::MAIN);
        let w = b.write(t2, x, 1);
        b.join(ThreadId::MAIN, t2);
        let r = b.read(ThreadId::MAIN, x, 1);
        let trace = b.finish();
        let view = trace.full_view();
        let mut tiers = TierAnalysis::new(&view, ConsistencyMode::ControlFlow, true);
        assert!(tiers.entailed_before(w, r));
        assert_eq!(tiers.decide(&Cop::new(w, r)), TierDecision::Refuted);
    }
}
