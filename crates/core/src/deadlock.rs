//! Predictive deadlock detection on the maximal causal model.
//!
//! Paper §2.5 names other violation classes definable over the same
//! feasibility closure; this module does it for resource deadlocks. A
//! window witnesses a *predictable deadlock* when some feasible reordering
//! reaches a state with a circular wait: threads `t₁ … tₖ` where each `tᵢ`
//! holds lock `lᵢ` and its next event is a (write-mode) acquire of
//! `l_{i+1 mod k}`.
//!
//! The encoding is the `Φ_race`-analogue over `Φ_mhb ∧ Φ_lock ∧ Φ_cf`: a
//! fresh order variable `D` marks the deadlock point, `Φ_lock` becomes
//! *conditional* (spans acquired after `D` are exempt from serialization —
//! the deadlocked state has cycle spans open, which an unconditional
//! `Φ_lock` would contradict), every branch before `D` must be concretely
//! feasible (`D < O_b ∨ cf(b)`), and each cycle thread's blocked acquire is
//! pinned just past `D` while its program-order prefix — including the hold
//! of its contributed lock — lands before `D`. A satisfying model's
//! `{e : O_e < D}` prefix, sorted by model value, is a consistent
//! data-abstract schedule ending in the circular wait; it is validated with
//! [`check_schedule`] plus a lock-state replay before anything is reported
//! (soundness, the Theorem-1 argument verbatim — the witness is a feasible
//! prefix, and prefixes of feasible traces are feasible).
//!
//! Candidates come from a linear acquires-while-holding scan per thread and
//! a bounded simple-cycle search, so the SMT work is proportional to the
//! number of genuine lock-order inversions, not to the window size.
//!
//! Read-mode (rwlock) holds are never part of a cycle: only write-mode
//! acquire-while-holding edges are enumerated, matching
//! [`oracle_deadlocks`](crate::oracle::oracle_deadlocks).

use std::collections::{HashMap, HashSet};

use rvsmt::{Budget, SmtResult, Solver};
use rvtrace::{
    check_schedule, EventId, EventKind, LockId, Schedule, ThreadId, Trace, View, ViewExt,
};

use crate::config::DetectorConfig;
use crate::encoder::{encode_deadlock, EncoderOptions};

/// Bound on enumerated cycle length (threads in one deadlock). Inversions
/// among more than four locks exist but are vanishingly rare, and the
/// simple-cycle search is exponential in this bound.
pub const MAX_CYCLE_LEN: usize = 4;

/// One acquire-while-holding edge: `thread`, holding `held`, requests
/// `wanted` at `acquire`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HoldEdge {
    thread: ThreadId,
    held: LockId,
    wanted: LockId,
    acquire: EventId,
}

/// A validated predicted deadlock: a lock cycle plus the witness prefix
/// that reaches the circular wait.
#[derive(Debug, Clone)]
pub struct DeadlockCycle {
    /// Canonical signature: the cycle's locks, sorted.
    pub locks: Vec<LockId>,
    /// The blocked acquires, in cycle order (thread `i` waits on the lock
    /// held by thread `i+1`).
    pub acquires: Vec<EventId>,
    /// A validated witness: a consistent reordering prefix after which
    /// every cycle thread's next event is its blocked acquire.
    pub schedule: Schedule,
}

/// Report of a deadlock analysis run.
#[derive(Debug, Default)]
pub struct DeadlockReport {
    /// Validated cycles (one per lock signature).
    pub cycles: Vec<DeadlockCycle>,
    /// Candidate cycles examined.
    pub candidates: usize,
    /// Solver SAT/UNSAT/unknown counters.
    pub sat: usize,
    /// Solver SAT/UNSAT/unknown counters.
    pub unsat: usize,
    /// Solver SAT/UNSAT/unknown counters.
    pub unknown: usize,
}

impl DeadlockReport {
    /// Number of validated cycles.
    pub fn n_cycles(&self) -> usize {
        self.cycles.len()
    }
}

/// Write-mode acquire-while-holding edges of one window, in deterministic
/// (thread table, program order) order.
fn hold_edges(view: &View<'_>) -> Vec<HoldEdge> {
    let trace = view.trace();
    let mut out = Vec::new();
    for &t in trace.threads() {
        // Locks write-held at window start carry in as open holds.
        let mut held: Vec<LockId> = view
            .held_at_start()
            .iter()
            .filter(|&&(ht, _)| ht == t)
            .map(|&(_, l)| l)
            .collect();
        for &e in view.thread_events(t) {
            match view.event(e).kind {
                EventKind::Acquire { lock } => {
                    for &h in &held {
                        if h != lock {
                            out.push(HoldEdge {
                                thread: t,
                                held: h,
                                wanted: lock,
                                acquire: e,
                            });
                        }
                    }
                    held.push(lock);
                }
                EventKind::Release { lock } => {
                    if let Some(p) = held.iter().rposition(|&l| l == lock) {
                        held.remove(p);
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Simple cycles over the edges: `eᵢ.wanted == e_{i+1}.held` cyclically,
/// threads and held locks pairwise distinct, length ≤ [`MAX_CYCLE_LEN`].
/// Each cycle is produced exactly once, rooted at its minimal edge index.
fn enumerate_cycles(edges: &[HoldEdge]) -> Vec<Vec<HoldEdge>> {
    let mut out = Vec::new();
    let mut path: Vec<usize> = Vec::new();
    for s in 0..edges.len() {
        path.clear();
        path.push(s);
        dfs(edges, s, &mut path, &mut out);
    }
    out
}

fn dfs(edges: &[HoldEdge], s: usize, path: &mut Vec<usize>, out: &mut Vec<Vec<HoldEdge>>) {
    let last = edges[*path.last().expect("non-empty path")];
    if path.len() >= 2 && last.wanted == edges[s].held {
        out.push(path.iter().map(|&i| edges[i]).collect());
        return;
    }
    if path.len() >= MAX_CYCLE_LEN {
        return;
    }
    for j in (s + 1)..edges.len() {
        let e = edges[j];
        if e.held != last.wanted
            || path.contains(&j)
            || path
                .iter()
                .any(|&i| edges[i].thread == e.thread || edges[i].held == e.held)
        {
            continue;
        }
        path.push(j);
        dfs(edges, s, path, out);
        path.pop();
    }
}

/// Replays the witness prefix and checks the circular wait: each cycle
/// thread's next unscheduled event is its blocked acquire, it still holds
/// its contributed lock, and the wanted lock is held by another thread.
fn circular_wait(view: &View<'_>, schedule: &Schedule, cycle: &[HoldEdge]) -> bool {
    let mut holder: HashMap<LockId, ThreadId> = view
        .held_at_start()
        .iter()
        .copied()
        .map(|(t, l)| (l, t))
        .collect();
    let mut pos: HashMap<ThreadId, usize> = HashMap::new();
    for &id in &schedule.0 {
        let e = view.event(id);
        match e.kind {
            EventKind::Acquire { lock } => {
                holder.insert(lock, e.thread);
            }
            EventKind::Release { lock } => {
                holder.remove(&lock);
            }
            _ => {}
        }
        *pos.entry(e.thread).or_insert(0) += 1;
    }
    cycle.iter().all(|e| {
        let next = view
            .thread_events(e.thread)
            .get(pos.get(&e.thread).copied().unwrap_or(0))
            .copied();
        next == Some(e.acquire)
            && holder.get(&e.held) == Some(&e.thread)
            && holder.get(&e.wanted).is_some_and(|&h| h != e.thread)
    })
}

/// The predictive deadlock checker (windowed, like the race detector).
/// Deterministic at any thread count: windows are analyzed in order on one
/// thread, and candidate order is fixed by the trace.
#[derive(Debug, Default)]
pub struct DeadlockDetector {
    /// Shared configuration (window size, budgets, mode).
    pub config: DetectorConfig,
}

impl DeadlockDetector {
    /// Runs the analysis over the whole trace.
    pub fn detect(&self, trace: &Trace) -> DeadlockReport {
        let mut report = DeadlockReport::default();
        for view in trace.windows(self.config.window_size) {
            self.detect_in_view(&view, &mut report);
        }
        report
    }

    /// Runs the analysis over one window, appending to `report` (cycles
    /// already reported there are deduplicated by lock signature).
    pub fn detect_in_view(&self, view: &View<'_>, report: &mut DeadlockReport) {
        let edges = hold_edges(view);
        if edges.is_empty() {
            return;
        }
        let cycles = enumerate_cycles(&edges);
        report.candidates += cycles.len();
        let opts = EncoderOptions {
            mode: self.config.mode,
            prune_write_sets: self.config.prune_write_sets,
            // The prefix obligations are not modeled by the cone analysis.
            slice: false,
        };
        let budget = Budget {
            max_conflicts: self.config.max_conflicts,
            timeout: Some(self.config.solver_timeout),
        };
        let mut seen: HashSet<Vec<LockId>> =
            report.cycles.iter().map(|c| c.locks.clone()).collect();
        for cycle in cycles {
            let mut signature: Vec<LockId> = cycle.iter().map(|e| e.held).collect();
            signature.sort();
            if self.config.dedup_signatures && seen.contains(&signature) {
                continue;
            }
            let acquires: Vec<EventId> = cycle.iter().map(|e| e.acquire).collect();
            let encoded = encode_deadlock(view, &acquires, opts);
            let mut solver = Solver::new(&encoded.fb);
            if self.config.phase_hints {
                solver.hint_atom_phases(|a| encoded.phase_hint(a));
            }
            match solver.solve(&budget) {
                SmtResult::Unsat => report.unsat += 1,
                SmtResult::Unknown(_) => report.unknown += 1,
                SmtResult::Sat => {
                    report.sat += 1;
                    // The witness: every event the model orders before D,
                    // by (model value, event id) — a per-thread prefix.
                    let d = solver.int_value(encoded.dvar);
                    let mut prefix: Vec<(i64, EventId)> = view
                        .ids()
                        .filter_map(|id| {
                            let v = solver.int_value(encoded.ovar(id));
                            (v < d).then_some((v, id))
                        })
                        .collect();
                    prefix.sort();
                    let schedule = Schedule(prefix.into_iter().map(|(_, id)| id).collect());
                    if check_schedule(view, &schedule).is_ok()
                        && circular_wait(view, &schedule, &cycle)
                    {
                        seen.insert(signature.clone());
                        report.cycles.push(DeadlockCycle {
                            locks: signature,
                            acquires,
                            schedule,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::TraceBuilder;

    fn inversion_trace(gated: bool) -> Trace {
        let mut b = TraceBuilder::new();
        let g = gated.then(|| b.new_lock("g"));
        let l1 = b.new_lock("l1");
        let l2 = b.new_lock("l2");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        if let Some(g) = g {
            b.acquire(t1, g);
        }
        b.acquire(t1, l1);
        b.acquire(t1, l2);
        b.release(t1, l2);
        b.release(t1, l1);
        if let Some(g) = g {
            b.release(t1, g);
        }
        if let Some(g) = g {
            b.acquire(t2, g);
        }
        b.acquire(t2, l2);
        b.acquire(t2, l1);
        b.release(t2, l1);
        b.release(t2, l2);
        if let Some(g) = g {
            b.release(t2, g);
        }
        b.finish()
    }

    #[test]
    fn lock_inversion_predicted_and_validated() {
        let tr = inversion_trace(false);
        let report = DeadlockDetector::default().detect(&tr);
        assert_eq!(report.n_cycles(), 1, "{report:?}");
        let c = &report.cycles[0];
        assert_eq!(c.locks.len(), 2);
        // The witness really reaches the circular wait.
        let v = tr.full_view();
        assert!(check_schedule(&v, &c.schedule).is_ok());
    }

    #[test]
    fn gate_lock_prevents_prediction() {
        let tr = inversion_trace(true);
        let report = DeadlockDetector::default().detect(&tr);
        assert_eq!(report.n_cycles(), 0, "{report:?}");
        assert!(
            report.unsat >= 1,
            "cycle candidate must be refuted, not missed"
        );
    }

    #[test]
    fn consistent_order_yields_no_candidates() {
        let mut b = TraceBuilder::new();
        let l1 = b.new_lock("l1");
        let l2 = b.new_lock("l2");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        for &t in &[t1, t2] {
            b.acquire(t, l1);
            b.acquire(t, l2);
            b.release(t, l2);
            b.release(t, l1);
        }
        let tr = b.finish();
        let report = DeadlockDetector::default().detect(&tr);
        assert_eq!(report.candidates, 0);
        assert_eq!(report.n_cycles(), 0);
    }

    #[test]
    fn matches_oracle_on_three_lock_cycle() {
        // Three threads, three locks, cyclic order: l1→l2→l3→l1.
        let mut b = TraceBuilder::new();
        let l1 = b.new_lock("l1");
        let l2 = b.new_lock("l2");
        let l3 = b.new_lock("l3");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let t3 = b.fork(t1);
        for (t, (la, lb)) in [(t1, (l1, l2)), (t2, (l2, l3)), (t3, (l3, l1))] {
            b.acquire(t, la);
            b.acquire(t, lb);
            b.release(t, lb);
            b.release(t, la);
        }
        let tr = b.finish();
        let report = DeadlockDetector::default().detect(&tr);
        let got: std::collections::BTreeSet<Vec<LockId>> =
            report.cycles.iter().map(|c| c.locks.clone()).collect();
        let want = crate::oracle::oracle_deadlocks(&tr.full_view(), 24);
        assert_eq!(got, want);
        assert!(got.contains(&vec![l1, l2, l3]));
    }
}
