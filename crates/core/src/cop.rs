//! Conflicting-operation-pair enumeration and the hybrid quick check.
//!
//! A COP (paper Definition 3) is a pair of accesses to the same variable by
//! different threads, at least one a write. Before building constraints, a
//! COP must pass a *quick check* — a hybrid of lockset disjointness and a
//! weak happens-before (our MHB) order check, similar to PECAN (paper §4).
//! The quick check is unsound (over-approximate) but filters cheaply.

use rvtrace::{Cop, EventId, RaceSignature, VarId, View};

/// Why a COP failed the quick check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuickCheckVerdict {
    /// The pair may race; proceed to constraint solving.
    Pass,
    /// The two accesses hold a common lock.
    CommonLock,
    /// The accesses are ordered by must-happen-before.
    MhbOrdered,
}

/// Runs the hybrid lockset + weak-HB quick check on a COP.
///
/// # Examples
///
/// ```
/// use rvcore::{quick_check, QuickCheckVerdict};
/// use rvtrace::{Cop, ThreadId, TraceBuilder, ViewExt};
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// let t2 = b.fork(ThreadId::MAIN);
/// let w = b.write(ThreadId::MAIN, x, 1);
/// let r = b.read(t2, x, 1);
/// let trace = b.finish();
/// let view = trace.full_view();
/// assert_eq!(quick_check(&view, Cop::new(w, r)), QuickCheckVerdict::Pass);
/// ```
pub fn quick_check(view: &View<'_>, cop: Cop) -> QuickCheckVerdict {
    let (a, b) = (cop.first, cop.second);
    let ls_a = view.lockset(a);
    let ls_b = view.lockset(b);
    // Locksets are sorted: linear merge intersection.
    let (mut i, mut j) = (0, 0);
    while i < ls_a.len() && j < ls_b.len() {
        match ls_a[i].cmp(&ls_b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return QuickCheckVerdict::CommonLock,
        }
    }
    if view.mhb(a, b) || view.mhb(b, a) {
        return QuickCheckVerdict::MhbOrdered;
    }
    QuickCheckVerdict::Pass
}

/// Enumerates candidate COPs of a window, grouped by race signature, with a
/// per-signature cap on concrete pairs.
///
/// Volatile variables are skipped (conflicting volatile accesses are not
/// data races, paper §4). Pairs by the same thread are not COPs. When
/// `quick_check_enabled`, only pairs passing the quick check are returned;
/// either way the function also reports how many distinct signatures had at
/// least one pair pass the quick check (the paper's Table 1 "QC" column
/// counts potential races surviving the hybrid algorithm).
pub fn enumerate_cops(
    view: &View<'_>,
    quick_check_enabled: bool,
    max_per_signature: usize,
) -> CopEnumeration {
    let trace = view.trace();
    let mut out = CopEnumeration::default();
    let mut sig_counts: std::collections::HashMap<RaceSignature, usize> =
        std::collections::HashMap::new();
    let mut qc_sigs: std::collections::HashSet<RaceSignature> = std::collections::HashSet::new();

    for var_idx in 0..trace.n_vars() as u32 {
        let var = VarId(var_idx);
        if trace.is_volatile(var) {
            continue;
        }
        let writes = view.writes_of(var);
        let reads = view.reads_of(var);
        if writes.is_empty() {
            continue;
        }
        let mut consider = |a: EventId, b: EventId, out: &mut CopEnumeration| {
            if view.event(a).thread == view.event(b).thread {
                return;
            }
            let cop = Cop::new(a, b);
            let sig = RaceSignature::of_cop(trace, cop);
            let count = sig_counts.entry(sig).or_insert(0);
            if *count >= max_per_signature {
                return;
            }
            out.pairs_considered += 1;
            let verdict = quick_check(view, cop);
            if verdict == QuickCheckVerdict::Pass {
                qc_sigs.insert(sig);
            }
            if verdict == QuickCheckVerdict::Pass || !quick_check_enabled {
                *count += 1;
                out.cops.push(cop);
            }
        };
        for (i, &w1) in writes.iter().enumerate() {
            for &w2 in &writes[i + 1..] {
                consider(w1, w2, &mut out);
            }
            for &r in reads {
                if r != w1 {
                    consider(w1, r, &mut out);
                }
            }
        }
    }
    out.qc_signatures = qc_sigs.len();
    out
}

/// Result of COP enumeration.
#[derive(Debug, Default)]
pub struct CopEnumeration {
    /// Candidate COPs (quick-check survivors when the check is enabled),
    /// capped per signature.
    pub cops: Vec<Cop>,
    /// Number of distinct signatures with at least one pair passing the
    /// quick check (the paper's "QC" column).
    pub qc_signatures: usize,
    /// Concrete pairs examined (diagnostic).
    pub pairs_considered: usize,
}

// The parallel driver enumerates COPs on worker threads; keep the
// enumeration result thread-portable.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CopEnumeration>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{ThreadId, TraceBuilder, ViewExt};

    #[test]
    fn common_lock_fails_quick_check() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        let w = b.write(t1, x, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        let r = b.read(t2, x, 1);
        b.release(t2, l);
        let tr = b.finish();
        let v = tr.full_view();
        assert_eq!(
            quick_check(&v, Cop::new(w, r)),
            QuickCheckVerdict::CommonLock
        );
    }

    #[test]
    fn mhb_ordered_fails_quick_check() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let w = b.write(t1, x, 1);
        let t2 = b.fork(t1); // fork after the write: write ⪯ everything in t2
        let r = b.read(t2, x, 1);
        let tr = b.finish();
        let v = tr.full_view();
        assert_eq!(
            quick_check(&v, Cop::new(w, r)),
            QuickCheckVerdict::MhbOrdered
        );
    }

    #[test]
    fn enumeration_skips_volatiles_and_same_thread() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let vy = b.volatile_var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.write(t1, x, 1);
        b.write(t1, x, 2); // same thread: not a COP with the first write
        b.write(t1, vy, 1);
        b.read(t2, vy, 1); // volatile: skipped
        b.read(t2, x, 2);
        let tr = b.finish();
        let v = tr.full_view();
        let en = enumerate_cops(&v, true, 10);
        // COPs: (w1,r) and (w2,r) on x only.
        assert_eq!(en.cops.len(), 2);
        assert!(en.qc_signatures >= 1);
    }

    #[test]
    fn per_signature_cap_applies() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let loc_w = b.loc("W");
        let loc_r = b.loc("R");
        for i in 0..10 {
            b.write_at(t1, x, i, loc_w);
        }
        // Reads of the final value to stay consistent.
        for _ in 0..10 {
            b.read_at(t2, x, 9, loc_r);
        }
        let tr = b.finish();
        let v = tr.full_view();
        let en = enumerate_cops(&v, false, 3);
        assert_eq!(en.cops.len(), 3); // capped at 3 for the single signature
    }

    #[test]
    fn quick_check_disabled_keeps_blocked_pairs() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.acquire(t1, l);
        b.write(t1, x, 1);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, x, 1);
        b.release(t2, l);
        let tr = b.finish();
        let v = tr.full_view();
        let with_qc = enumerate_cops(&v, true, 10);
        let without_qc = enumerate_cops(&v, false, 10);
        assert!(with_qc.cops.is_empty());
        assert_eq!(without_qc.cops.len(), 1);
        assert_eq!(with_qc.qc_signatures, 0);
    }
}
