//! Detector configuration, including the deterministic fault-injection
//! plan used by the robustness test suite.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Which read-write consistency discipline the encoder enforces
/// (paper §3.2 vs. the Said et al. baseline of §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyMode {
    /// The paper's technique: branch events determine which reads must stay
    /// concretely feasible — only reads with control flow *to the race
    /// events* are constrained, recursively through justifying writes.
    #[default]
    ControlFlow,
    /// Said et al. [30]: every read in the window must return the same value
    /// as in the original trace (whole-trace read-write consistency); branch
    /// events are ignored. Sound but non-maximal.
    WholeTrace,
}

/// How the detector bounds each window's view (CLI `--window-mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowMode {
    /// Fixed `window_size`-event windows: a COP whose partner fell in an
    /// earlier window is silently invisible (the pre-PR 8 behavior,
    /// kept for A/B checks).
    Fixed,
    /// Dependence-bounded windows: boundary-straddling COPs are
    /// enumerated from per-thread last-access summaries and solved on a
    /// lazily grown extended view reaching back along their cone of
    /// influence, capped by [`DetectorConfig::spill_budget`]. On traces
    /// with no straddling conflicting pair this is byte-identical to
    /// [`WindowMode::Fixed`].
    #[default]
    Cone,
}

/// Approximate retained bytes per spill event: the budget → event-count
/// conversion used by [`DetectorConfig::spill_events`]. Chosen as the
/// order of one [`Event`](rvtrace::Event) plus its share of the boundary
/// checkpoints; a semantic constant, deliberately identical across
/// drivers so plans (and therefore reports) never depend on allocator
/// details.
pub const SPILL_EVENT_BYTES: usize = 64;

/// A fault to inject at one (window, COP) coordinate. Test-only: lets the
/// robustness suite prove that detection degrades gracefully — and
/// deterministically, at every thread count — without relying on timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the window worker while it processes this COP. The
    /// driver isolates the panic; the whole window becomes a
    /// [`FailedWindow`](crate::report::FailedWindow) record.
    Panic,
    /// Pretend the per-COP wall-clock budget was exhausted: the COP's
    /// verdict becomes `Undecided(Timeout)` without solving.
    Timeout,
    /// Pretend constraint encoding failed: the COP's verdict becomes
    /// `Undecided(EncodeError)` without solving.
    EncodeError,
}

/// A deterministic fault-injection plan: faults keyed by
/// `(window index, COP index in the window's solve order)`.
///
/// Intended for tests only — build one, put it in
/// [`DetectorConfig::fault_plan`], and detection will hit the planned
/// faults at exactly those coordinates on every run and at every
/// `parallelism` setting. When a plan is present the detector disables the
/// cross-window published-signature skip: the *reports* are deterministic
/// with the skip on (merge-order dedup and the straddle pass's shared
/// confirmed set see to that, in both window modes), but *which* COP
/// index gets skipped before solving depends on how far ahead other
/// workers have published, and fault coordinates key on those solve-order
/// indices. With the skip off, coordinates land on the same COPs
/// regardless of worker scheduling; everything else behaves as in
/// production.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<(usize, usize), Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Plans `fault` at `(window, cop)`; builder-style.
    pub fn inject(mut self, window: usize, cop: usize, fault: Fault) -> Self {
        self.faults.insert((window, cop), fault);
        self
    }

    /// The fault planned at `(window, cop)`, if any.
    pub fn fault_at(&self, window: usize, cop: usize) -> Option<Fault> {
        self.faults.get(&(window, cop)).copied()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Configuration of the maximal race detector.
///
/// The defaults mirror the paper's implementation notes (§4–5): 10K-event
/// windows, 60-second per-COP solver budget, hybrid quick check on, race
/// deduplication by signature on.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Window size in events (paper §4: "typically 10K").
    pub window_size: usize,
    /// Per-COP solver wall-clock budget (paper §4: one minute).
    pub solver_timeout: Duration,
    /// Per-COP solver conflict budget (a deterministic backstop the paper
    /// does not need because it bounds wall-clock time only).
    pub max_conflicts: Option<u64>,
    /// Run the hybrid lockset + weak-HB quick check before building
    /// constraints (paper §4).
    pub quick_check: bool,
    /// Once a COP is reported as a race, prune all other COPs with the same
    /// signature (paper §4).
    pub dedup_signatures: bool,
    /// Apply the MHB-based pruning of read-match write sets (paper §3.2,
    /// last paragraph). Turning this off is only useful for ablation.
    pub prune_write_sets: bool,
    /// Consistency discipline.
    pub mode: ConsistencyMode,
    /// Relevance slicing: encode each COP only over its cone of influence
    /// (the MHB prefix closure of the accesses plus the `cf`-reachable
    /// reads and cone-held lock regions), instead of the whole window.
    /// Verdict-preserving; exposed as CLI `--no-slice` for A/B checks. No
    /// effect under [`ConsistencyMode::WholeTrace`].
    pub slice: bool,
    /// Run the tiered pre-solver screens before encoding (ROADMAP item 1):
    /// Tier A soundly confirms sync-preserving races, Tier B soundly
    /// refutes entailment-ordered COPs, and only the residue reaches the
    /// solver. Verdict-preserving; exposed as CLI `--no-tiers` for A/B
    /// checks.
    pub tiers: bool,
    /// Validate every witness schedule against the trace-consistency checker
    /// before reporting a race (operationalizes Thm. 1/3; cheap).
    pub validate_witnesses: bool,
    /// Seed SAT decision phases from the original trace order (the observed
    /// trace is a near-model of `Φ_mhb ∧ Φ_lock`); off only for ablation.
    pub phase_hints: bool,
    /// Batch all of a window's COPs into one incremental solver with
    /// per-COP selector assumptions, sharing the base encoding and learnt
    /// clauses (instead of re-encoding and re-solving per COP). Same
    /// verdicts, much less work; off only for ablation.
    pub batch_windows: bool,
    /// Keep one incremental solver session resident per window and retain
    /// learnt clauses across COP queries. In batch mode this is the shared
    /// selector-assumption solver; in per-COP mode it switches the driver
    /// to an incremental session that encodes the window's union cone once
    /// and discharges each residue COP as an assumption set instead of
    /// encoding from scratch. Retained clauses are sound to keep because
    /// assumptions are never asserted: every learnt clause is implied by
    /// the shared skeleton alone (see DESIGN.md, "Hot path"). Same
    /// verdicts; exposed as CLI `--no-incremental` for ablation.
    pub incremental: bool,
    /// Race the incremental SMT encoding against the tier screens per COP
    /// on a cloned solver, first verdict wins (CLI `--portfolio`).
    /// Implies per-COP incremental sessions (`batch_windows` off,
    /// `incremental` on). Cancelled solver results are always discarded
    /// and screen verdicts are adopted with zero solver effort, so
    /// reports, count-type metrics and witnesses are byte-identical with
    /// portfolio on or off at any `parallelism`. Off by default.
    pub portfolio: bool,
    /// Upper bound on concrete COPs examined per signature before giving up
    /// on that signature for the window (bounds the quadratic pair
    /// enumeration on hot variables).
    pub max_cops_per_signature: usize,
    /// Number of worker threads solving windows concurrently. `1` runs the
    /// fully serial driver; the default is the machine's available
    /// parallelism. Reports are deterministic regardless of this value:
    /// window outcomes are merged in window order and deduplicated at merge
    /// time (see `RaceDetector::detect`).
    pub parallelism: usize,
    /// One-shot retry policy for budget exhaustion: a COP whose solve came
    /// back `Undecided(Timeout)` is re-encoded and re-solved once against
    /// the half-size sub-window containing both its events (smaller window
    /// ⇒ smaller formula). COPs spanning the midpoint keep their
    /// `Undecided` verdict. Off by default.
    pub retry_split: bool,
    /// Per-*window* wall-clock budget (CLI `--timeout-ms`; the daemon's
    /// per-tenant budget). When the deadline passes mid-window, every COP
    /// not yet decided is recorded as `Undecided(Timeout)` — the PR 2
    /// degradation path — in both the per-COP and batched solve modes, and
    /// the remaining per-COP solver budget is clamped to the window's
    /// remaining time. `None` (the default) means unbounded.
    pub window_timeout: Option<Duration>,
    /// Deterministic fault-injection plan (tests only; `None` in
    /// production). See [`FaultPlan`].
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Window bounding discipline: fixed event-count windows, or
    /// dependence-bounded windows that extend across boundaries along
    /// each straddling COP's cone of influence (CLI
    /// `--window-mode fixed|cone`; `cone` is the default).
    pub window_mode: WindowMode,
    /// Byte budget for cross-boundary lookback in [`WindowMode::Cone`]
    /// (CLI `--spill-budget`). Converted to an event-count cap via
    /// [`SPILL_EVENT_BYTES`]; a straddling COP whose partner lies beyond
    /// the cap degrades to `Undecided(boundary-budget)` instead of being
    /// solved on a truncated view. The default (4 MiB) covers ~65K
    /// events — several default windows of lookback.
    pub spill_budget: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            window_size: 10_000,
            solver_timeout: Duration::from_secs(60),
            max_conflicts: None,
            quick_check: true,
            dedup_signatures: true,
            prune_write_sets: true,
            mode: ConsistencyMode::ControlFlow,
            slice: true,
            tiers: true,
            validate_witnesses: true,
            phase_hints: true,
            batch_windows: true,
            incremental: true,
            portfolio: false,
            max_cops_per_signature: 10,
            parallelism: default_parallelism(),
            retry_split: false,
            window_timeout: None,
            fault_plan: None,
            window_mode: WindowMode::Cone,
            spill_budget: 4 << 20,
        }
    }
}

/// The default worker count: one per available core.
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl DetectorConfig {
    /// The configuration used for the Said et al. baseline: identical
    /// machinery, whole-trace consistency.
    pub fn said_baseline() -> Self {
        DetectorConfig {
            mode: ConsistencyMode::WholeTrace,
            ..Default::default()
        }
    }

    /// The cross-boundary lookback cap in *events*:
    /// [`spill_budget`](DetectorConfig::spill_budget) bytes divided by
    /// [`SPILL_EVENT_BYTES`]. Zero in [`WindowMode::Fixed`] — fixed
    /// windows never look back.
    pub fn spill_events(&self) -> usize {
        match self.window_mode {
            WindowMode::Fixed => 0,
            WindowMode::Cone => self.spill_budget / SPILL_EVENT_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DetectorConfig::default();
        assert_eq!(c.window_size, 10_000);
        assert_eq!(c.solver_timeout, Duration::from_secs(60));
        assert!(c.quick_check && c.dedup_signatures && c.prune_write_sets);
        assert!(c.slice, "relevance slicing is on by default");
        assert!(c.tiers, "the tiered cascade is on by default");
        assert!(
            c.incremental,
            "incremental solver sessions are on by default"
        );
        assert!(!c.portfolio, "portfolio racing is opt-in");
        assert_eq!(c.mode, ConsistencyMode::ControlFlow);
        assert!(c.parallelism >= 1, "at least one worker");
        assert!(!c.retry_split, "retry policy is opt-in");
        assert!(c.window_timeout.is_none(), "window budget is opt-in");
        assert!(c.fault_plan.is_none(), "no faults in production configs");
        assert_eq!(c.window_mode, WindowMode::Cone, "cross-window on");
        assert_eq!(c.spill_budget, 4 << 20);
        assert_eq!(c.spill_events(), 65_536);
    }

    #[test]
    fn fixed_mode_never_looks_back() {
        let c = DetectorConfig {
            window_mode: WindowMode::Fixed,
            ..Default::default()
        };
        assert_eq!(c.spill_events(), 0);
    }

    #[test]
    fn fault_plan_coordinates() {
        let plan = FaultPlan::new()
            .inject(0, 2, Fault::Panic)
            .inject(3, 0, Fault::Timeout);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.fault_at(0, 2), Some(Fault::Panic));
        assert_eq!(plan.fault_at(3, 0), Some(Fault::Timeout));
        assert_eq!(plan.fault_at(1, 1), None);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn said_baseline_differs_only_in_mode() {
        let c = DetectorConfig::said_baseline();
        assert_eq!(c.mode, ConsistencyMode::WholeTrace);
        assert_eq!(c.window_size, DetectorConfig::default().window_size);
    }
}
