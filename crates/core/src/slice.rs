//! Relevance slicing: cone-of-influence formula reduction (see DESIGN.md,
//! "Relevance slicing").
//!
//! The encoding of paper §3 builds `Φ = Φ_mhb ∧ Φ_lock ∧ Φ_race` over
//! *every* event of the window for *every* COP, but the maximal causal
//! model is prefix-closed (§2.3): a feasible reordering witnessing a race
//! between `a` and `b` only needs the events that can be ordered up to
//! `max(O_a, O_b)` — everything MHB-after both accesses, and every lock
//! region and read the control-flow closure `Φ_cf` cannot reach, is dead
//! weight in the formula. This module computes, per COP (or per window in
//! batch mode), the **cone of influence**:
//!
//! 1. the MHB prefix closure of the COP's two events and their `B_e`
//!    branches, read straight off the per-event [`VectorClock`]s the view
//!    maintains (MHB restricted to one thread is a prefix of that thread's
//!    event list, so the whole cone is a per-thread cut vector `need` and
//!    membership is one comparison);
//! 2. the fixpoint of reads reachable through the `cf`/`read_match`
//!    recursion, mirrored *exactly* (same write-set pruning, same
//!    candidate shadowing) so the sliced `Φ_race` is textually identical
//!    to the unsliced one;
//! 3. the critical sections of every lock held at any cone event (a
//!    non-cone-held lock's spans lie entirely outside the cone, so their
//!    mutual-exclusion disjunctions are satisfied by appending the sliced
//!    model's tail in trace order), and wait/notify links any of whose
//!    three events entered the cone (all-or-nothing).
//!
//! The per-window [`WindowSkeleton`] hoists everything that does not
//! depend on the COP — fork→begin/end→join edge lists, the view-filtered
//! wait links with an event→link index, and the detection of malformed
//! lock-span pairs whose `⊥` assertion is load-bearing — so computing one
//! cone is near-`O(|cone|)` instead of `O(|window|)`.
//!
//! [`VectorClock`]: rvtrace::VectorClock

use std::collections::BTreeSet;

use rvtrace::{Cop, EventId, EventKind, LockId, VarId, View, WaitLink};

/// Per-window state shared by every cone computation: the parts of the
/// encoding input that do not depend on the COP. Build one per window and
/// reuse it for all of the window's COPs.
#[derive(Debug)]
pub struct WindowSkeleton<'v, 'a> {
    view: &'v View<'a>,
    /// fork→begin and end→join edges with both endpoints inside the view.
    edges: Vec<(EventId, EventId)>,
    /// Wait links whose release, acquire and notify are all inside the
    /// view (the same filter the encoder applies).
    links: Vec<WaitLink>,
    /// Membership index: release/acquire/notify event → index into
    /// [`WindowSkeleton::links`]. Dense arena over the view's contiguous
    /// event range (`u32::MAX` = no link), probed once per cone event.
    link_of: Vec<u32>,
    /// Locks with a cross-thread span pair that would assert `⊥` in
    /// `Φ_lock` (both ordering directions lack their endpoint events —
    /// malformed overlapping holds). The assertion is load-bearing, so
    /// these locks are always treated as cone-held.
    forced_locks: Vec<LockId>,
}

impl<'v, 'a> WindowSkeleton<'v, 'a> {
    /// Builds the skeleton for one window view.
    pub fn new(view: &'v View<'a>) -> Self {
        let trace = view.trace();
        // Thread-indexed arenas (the trace's dense thread index covers
        // every forked child, even silent ones).
        let mut fork_of: Vec<Option<EventId>> = vec![None; trace.n_threads()];
        let mut end_of: Vec<Option<EventId>> = vec![None; trace.n_threads()];
        for id in view.ids() {
            match view.event(id).kind {
                EventKind::Fork { child } => {
                    if let Some(ti) = trace.thread_index(child) {
                        fork_of[ti] = Some(id);
                    }
                }
                EventKind::End => {
                    if let Some(ti) = trace.thread_index(view.event(id).thread) {
                        end_of[ti] = Some(id);
                    }
                }
                _ => {}
            }
        }
        let of = |arena: &[Option<EventId>], t: rvtrace::ThreadId| {
            trace.thread_index(t).and_then(|ti| arena[ti])
        };
        let mut edges = Vec::new();
        for id in view.ids() {
            match view.event(id).kind {
                EventKind::Begin => {
                    if let Some(f) = of(&fork_of, view.event(id).thread) {
                        edges.push((f, id));
                    }
                }
                EventKind::Join { child } => {
                    if let Some(e) = of(&end_of, child) {
                        edges.push((e, id));
                    }
                }
                _ => {}
            }
        }
        let in_view = |e: EventId| view.contains(e);
        let links: Vec<WaitLink> = trace
            .wait_links()
            .iter()
            .filter(|wl| {
                in_view(wl.release)
                    && in_view(wl.acquire)
                    && wl.notify.map(in_view).unwrap_or(false)
            })
            .copied()
            .collect();
        let view_base = view.range().start;
        let mut link_of = vec![u32::MAX; if links.is_empty() { 0 } else { view.len() }];
        for (i, wl) in links.iter().enumerate() {
            // All three endpoints are in-view (just filtered), so they
            // index the contiguous view range directly.
            link_of[wl.release.index() - view_base] = i as u32;
            link_of[wl.acquire.index() - view_base] = i as u32;
            link_of[wl.notify.expect("filtered").index() - view_base] = i as u32;
        }
        let mut forced_locks = Vec::new();
        for lock_idx in 0..trace.n_locks() as u32 {
            let lock = LockId(lock_idx);
            let spans = view.critical_sections(lock);
            let forced = spans.iter().enumerate().any(|(i, s1)| {
                spans[i + 1..].iter().any(|s2| {
                    s1.thread != s2.thread
                        && (s1.release.is_none() || s2.acquire.is_none())
                        && (s2.release.is_none() || s1.acquire.is_none())
                })
            });
            if forced {
                forced_locks.push(lock);
            }
        }
        WindowSkeleton {
            view,
            edges,
            links,
            link_of,
            forced_locks,
        }
    }

    /// The window view the skeleton was built over.
    pub fn view(&self) -> &'v View<'a> {
        self.view
    }

    /// Computes the cone of influence for `cops` (one COP in per-COP mode;
    /// all of a window's COPs for the batch encoding's shared base
    /// formula). `prune` must equal the encoder's `prune_write_sets` so
    /// the `cf` mirror visits exactly the writes the encoder will
    /// constrain.
    pub fn cone(&self, cops: &[Cop], prune: bool) -> Cone {
        let view = self.view;
        let trace = view.trace();
        let n_threads = trace.n_threads();
        let mut need = vec![0u32; n_threads];
        let mut held = vec![false; trace.n_locks()];
        let mut marked = vec![false; self.links.len()];

        // Prefix-extends the cone with the MHB closure of `e`: the clock
        // entry for thread `i` counts the events of `i` that are ⪯ e, and
        // the cone keeps per-thread *prefixes*, so a pointwise max is the
        // whole closure.
        fn seed(view: &View<'_>, need: &mut [u32], e: EventId) {
            let clock = view.clock(e);
            for (ti, n) in need.iter_mut().enumerate() {
                *n = (*n).max(clock.get(ti));
            }
        }

        // 1. The accesses and their `B_e` branches; the branches root the
        //    cf-reachability walk. Visited set as a dense bitmap over the
        //    view's contiguous event range — the walk touches most cone
        //    events once, so O(1) unhashed membership is the hot path.
        let view_base = view.range().start;
        let mut visited = vec![false; view.len()];
        let mut stack: Vec<EventId> = Vec::new();
        let first_visit = |e: EventId, visited: &mut Vec<bool>| {
            let o = e.index() - view_base;
            !std::mem::replace(&mut visited[o], true)
        };
        for cop in cops {
            for e in [cop.first, cop.second] {
                seed(view, &mut need, e);
                for b in view.last_branches_before(e) {
                    seed(view, &mut need, b);
                    if first_visit(b, &mut visited) {
                        stack.push(b);
                    }
                }
            }
        }

        // 2. Exact mirror of the encoder's `cf` recursion: a branch or
        //    write depends on its thread's earlier reads; a read's match
        //    disjunction mentions *every* write of `W^r` (interference
        //    atoms) and recurses into the candidate set `W^r_v`.
        while let Some(e) = stack.pop() {
            match view.event(e).kind {
                EventKind::Branch | EventKind::Write { .. } => {
                    for &r in view.thread_reads_before(e) {
                        if first_visit(r, &mut visited) {
                            seed(view, &mut need, r);
                            stack.push(r);
                        }
                    }
                }
                EventKind::Read { .. } => {
                    let (wr, wrv) = crate::encoder::write_sets(view, e, prune);
                    for &w in &wr {
                        seed(view, &mut need, w);
                    }
                    for &w in &wrv {
                        if first_visit(w, &mut visited) {
                            stack.push(w);
                        }
                    }
                }
                _ => {}
            }
        }

        // 3. Lock and wait-link closure, to a fixpoint: newly admitted
        //    events can hold further locks, whose spans admit further
        //    events. Forced locks (load-bearing ⊥ pairs) are admitted
        //    unconditionally.
        let admit_lock = |lock: LockId, need: &mut [u32], held: &mut [bool]| {
            if held[lock.index()] {
                return;
            }
            held[lock.index()] = true;
            for span in view.critical_sections(lock) {
                if let Some(a) = span.acquire {
                    seed(view, need, a);
                }
                if let Some(r) = span.release {
                    seed(view, need, r);
                }
            }
        };
        for &lock in &self.forced_locks {
            admit_lock(lock, &mut need, &mut held);
        }
        let threads = trace.threads();
        let mut processed = vec![0usize; n_threads];
        loop {
            let mut progress = false;
            for ti in 0..n_threads {
                let evs = view.thread_events(threads[ti]);
                while processed[ti] < (need[ti] as usize).min(evs.len()) {
                    progress = true;
                    let e = evs[processed[ti]];
                    processed[ti] += 1;
                    for &lock in view.lockset(e) {
                        admit_lock(lock, &mut need, &mut held);
                    }
                    let li = self
                        .link_of
                        .get(e.index() - view_base)
                        .copied()
                        .unwrap_or(u32::MAX);
                    if li != u32::MAX {
                        let li = li as usize;
                        if !marked[li] {
                            marked[li] = true;
                            let wl = self.links[li];
                            seed(view, &mut need, wl.release);
                            seed(view, &mut need, wl.acquire);
                            if let Some(n) = wl.notify {
                                seed(view, &mut need, n);
                            }
                        }
                    }
                }
            }
            if !progress {
                break;
            }
        }

        let n_events = (0..n_threads)
            .map(|ti| (need[ti] as usize).min(view.thread_events(threads[ti]).len()))
            .sum();
        let in_cone = |e: EventId| {
            let ti = trace
                .thread_index(view.event(e).thread)
                .expect("thread indexed");
            (view.vpos(e) as u32) < need[ti]
        };
        // fork→begin / end→join edges whose target is in the cone (MHB
        // downward closure guarantees the source then is too).
        let edges: Vec<(EventId, EventId)> = self
            .edges
            .iter()
            .copied()
            .filter(|&(src, dst)| {
                let keep = in_cone(dst);
                debug_assert!(!keep || in_cone(src), "cone not MHB-downward closed");
                keep
            })
            .collect();
        let links: Vec<WaitLink> = self
            .links
            .iter()
            .zip(&marked)
            .filter(|(_, &m)| m)
            .map(|(wl, _)| *wl)
            .collect();
        Cone {
            need,
            held,
            edges,
            links,
            n_events,
            window_events: view.len(),
        }
    }
}

/// The cone of influence of one encoding problem: the subset of window
/// events whose order variables the sliced formula constrains. Per-thread
/// MHB-prefix-closed, so it is represented as a per-thread cut vector and
/// membership is a single comparison.
#[derive(Debug, Clone)]
pub struct Cone {
    /// Per trace-thread index: how many leading events of that thread's
    /// in-view sequence are in the cone.
    need: Vec<u32>,
    /// Per lock index: whether the lock is cone-held (its `Φ_lock` pairs
    /// are encoded in full).
    held: Vec<bool>,
    /// fork→begin and end→join edges inside the cone.
    edges: Vec<(EventId, EventId)>,
    /// Wait links fully inside the cone (marked links are all-or-nothing).
    links: Vec<WaitLink>,
    /// Total events in the cone.
    n_events: usize,
    /// Total events in the window view the cone was cut from.
    window_events: usize,
}

impl Cone {
    /// Whether `e` (an event of the cone's window) is inside the cone.
    pub fn contains(&self, view: &View<'_>, e: EventId) -> bool {
        let ti = view
            .trace()
            .thread_index(view.event(e).thread)
            .expect("thread indexed");
        (view.vpos(e) as u32) < self.need[ti]
    }

    /// The cone's per-thread cut: events `0..need(ti)` of thread `ti`'s
    /// in-view sequence are in the cone.
    pub fn need(&self, ti: usize) -> usize {
        self.need.get(ti).copied().unwrap_or(0) as usize
    }

    /// Whether `lock`'s critical sections are encoded (some cone event
    /// holds it, or its span structure is malformed).
    pub fn lock_held(&self, lock: LockId) -> bool {
        self.held.get(lock.index()).copied().unwrap_or(false)
    }

    /// fork→begin and end→join edges with both endpoints in the cone.
    pub fn edges(&self) -> &[(EventId, EventId)] {
        &self.edges
    }

    /// Wait links whose three events are all in the cone.
    pub fn links(&self) -> &[WaitLink] {
        &self.links
    }

    /// Number of events in the cone.
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// Number of events in the window the cone was cut from.
    pub fn window_events(&self) -> usize {
        self.window_events
    }

    /// Number of window events the slice drops.
    pub fn sliced_out(&self) -> usize {
        self.window_events - self.n_events
    }

    /// Variables read by cone events — the dependence frontier that
    /// cross-window growth follows: a pre-view write of one of these
    /// variables justifies extending a dependence-bounded window further
    /// back (see the detector's straddle pass), because the read's
    /// feasible match set depends on it.
    pub fn read_vars(&self, view: &View<'_>) -> BTreeSet<VarId> {
        let mut vars = BTreeSet::new();
        let threads = view.trace().threads();
        for (ti, &t) in threads.iter().enumerate() {
            let evs = view.thread_events(t);
            for &e in &evs[..self.need(ti).min(evs.len())] {
                if let EventKind::Read { var, .. } = view.event(e).kind {
                    vars.insert(var);
                }
            }
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, EncoderOptions};
    use rvsmt::{Budget, Solver};
    use rvtrace::{ThreadId, TraceBuilder, ViewExt};

    /// Two independent clusters: a racy pair on `x` up front, and an
    /// unrelated lock-protected cluster on `y` behind it.
    fn two_cluster_trace() -> (rvtrace::Trace, Cop) {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let l = b.new_lock("l");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        let t3 = b.fork(t1);
        let t4 = b.fork(t1);
        let w1 = b.write(t1, x, 1);
        let w2 = b.write(t2, x, 2);
        for _ in 0..3 {
            b.acquire(t3, l);
            b.write(t3, y, 1);
            b.release(t3, l);
            b.acquire(t4, l);
            b.write(t4, y, 2);
            b.release(t4, l);
        }
        (b.finish(), Cop::new(w1, w2))
    }

    #[test]
    fn cone_drops_unrelated_cluster() {
        let (tr, cop) = two_cluster_trace();
        let view = tr.full_view();
        let skel = WindowSkeleton::new(&view);
        let cone = skel.cone(&[cop], true);
        assert!(cone.contains(&view, cop.first) && cone.contains(&view, cop.second));
        assert!(
            cone.n_events() < cone.window_events(),
            "the y/lock cluster must be sliced out: {} of {}",
            cone.n_events(),
            cone.window_events()
        );
        // The unrelated lock is not cone-held.
        assert!(!cone.lock_held(LockId(0)));
        assert!(cone.sliced_out() > 0);
    }

    #[test]
    fn cone_is_mhb_downward_closed() {
        let (tr, cop) = two_cluster_trace();
        let view = tr.full_view();
        let skel = WindowSkeleton::new(&view);
        let cone = skel.cone(&[cop], true);
        for a in view.ids() {
            for b in view.ids() {
                if view.mhb(a, b) && cone.contains(&view, b) {
                    assert!(cone.contains(&view, a), "{a} ⪯ {b} but {a} not in cone");
                }
            }
        }
    }

    #[test]
    fn cone_read_vars_track_dependence_frontier() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let t1 = ThreadId::MAIN;
        let t2 = b.fork(t1);
        b.read(t1, y, 0); // feeds the branch guarding the write
        b.branch(t1);
        let w = b.write(t1, x, 1);
        let r = b.read(t2, x, 1);
        let tr = b.finish();
        let view = tr.full_view();
        let skel = WindowSkeleton::new(&view);
        let cone = skel.cone(&[Cop::new(w, r)], true);
        let vars = cone.read_vars(&view);
        assert!(vars.contains(&x) && vars.contains(&y), "{vars:?}");
    }

    #[test]
    fn sliced_formula_is_smaller_but_verdict_identical() {
        let (tr, cop) = two_cluster_trace();
        let view = tr.full_view();
        let sliced = encode(&view, cop, EncoderOptions::default());
        let full = encode(
            &view,
            cop,
            EncoderOptions {
                slice: false,
                ..Default::default()
            },
        );
        assert!(sliced.cone_events < full.cone_events);
        assert!(sliced.n_constraints < full.n_constraints);
        assert_eq!(sliced.n_lock, 0, "the unrelated lock contributes nothing");
        assert!(full.n_lock > 0);
        let verdict = |e: &crate::encoder::Encoded| {
            let mut s = Solver::new(&e.fb);
            s.solve(&Budget::UNLIMITED)
        };
        assert_eq!(verdict(&sliced), verdict(&full));
    }
}
