//! Race reports and detection summaries.
//!
//! Detection is allowed to *degrade* but never to lie: a per-COP budget
//! exhaustion, an injected or genuine worker panic, or an encoding failure
//! becomes an explicit [`UndecidedReason`] tally (or a [`FailedWindow`]
//! record) in the report instead of being silently folded into "no race".
//! Reported races are always witness-validated, so degradation only ever
//! costs completeness, never soundness.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use rvsmt::SatStats;
use rvtrace::{Cop, RaceSignature, Schedule, Trace};

use crate::metrics::{Histogram, Metrics};

/// One detected race, with its certifying witness.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The concrete conflicting pair that was proven to race.
    pub cop: Cop,
    /// The static signature (location pair).
    pub signature: RaceSignature,
    /// The trace range of the window in which the race was found.
    pub window: std::ops::Range<usize>,
    /// A validated witness schedule ending with the two accesses adjacent.
    pub schedule: Schedule,
}

impl RaceReport {
    /// Renders the report with human-readable location names.
    pub fn display<'a>(&'a self, trace: &'a Trace) -> RaceReportDisplay<'a> {
        RaceReportDisplay {
            report: self,
            trace,
        }
    }
}

/// Human-readable rendering of a [`RaceReport`].
#[derive(Debug)]
pub struct RaceReportDisplay<'a> {
    report: &'a RaceReport,
    trace: &'a Trace,
}

impl fmt::Display for RaceReportDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.report;
        write!(
            f,
            "race {} between {} and {} (witness: {})",
            r.signature.display(self.trace),
            self.trace.event(r.cop.first),
            self.trace.event(r.cop.second),
            r.schedule,
        )
    }
}

/// Why a COP's race question could not be decided. Three-valued verdict
/// accounting: a COP is `Race`, `NoRace`, or `Undecided(reason)` — the
/// detector reports the reason rather than conflating "budget ran out"
/// with "proven race-free" (cf. CP's soundness-under-limited-analysis
/// argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UndecidedReason {
    /// The per-COP wall-clock solver budget was exhausted.
    Timeout,
    /// The per-COP conflict budget was exhausted.
    ConflictBudget,
    /// The window's worker panicked before this COP got a verdict
    /// (only used for fault-injected per-COP panics that were isolated;
    /// a panic that kills a whole window is a [`FailedWindow`] instead).
    WorkerPanic,
    /// Constraint encoding failed for this COP.
    EncodeError,
    /// A boundary-straddling COP whose pre-window partner lies beyond
    /// the `--spill-budget` lookback cap: the extended view cannot be
    /// reconstructed, and solving a truncated view would be unsound to
    /// report as a verdict.
    BoundaryBudget,
}

impl fmt::Display for UndecidedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UndecidedReason::Timeout => write!(f, "timeout"),
            UndecidedReason::ConflictBudget => write!(f, "conflict-budget"),
            UndecidedReason::WorkerPanic => write!(f, "worker-panic"),
            UndecidedReason::EncodeError => write!(f, "encode-error"),
            UndecidedReason::BoundaryBudget => write!(f, "boundary-budget"),
        }
    }
}

/// A window whose worker died (panicked) before producing any per-COP
/// records. The run continues; the failure is reported so the user knows
/// which part of the trace got no verdicts at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedWindow {
    /// The window's index in solve order.
    pub window_index: usize,
    /// The trace range the window covered.
    pub range: std::ops::Range<usize>,
    /// The panic message (or a placeholder for non-string payloads).
    pub reason: String,
}

impl fmt::Display for FailedWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "window {} (events {}..{}) failed: {}",
            self.window_index, self.range.start, self.range.end, self.reason
        )
    }
}

/// Summed SAT-core effort over a set of solver invocations: the per-query
/// [`SatStats`] deltas the detector captured, folded together. These are
/// *count-type* values — the parallel driver tallies them per surviving COP
/// record at merge time, so they are identical at every thread count (see
/// the determinism contract in [`crate::metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverTotals {
    /// Solver invocations profiled (one per solved COP, two when a COP
    /// was retried in a split window).
    pub solves: u64,
    /// CDCL branching decisions.
    pub decisions: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Boolean conflicts (learnt-clause derivations).
    pub conflicts: u64,
    /// Conflicts raised by the IDL theory (negative cycles).
    pub theory_conflicts: u64,
    /// Search restarts.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learnt_clauses: u64,
}

impl SolverTotals {
    /// Folds one solver invocation's [`SatStats`] delta into the totals.
    pub fn record_solve(&mut self, delta: &SatStats) {
        self.solves = self.solves.saturating_add(1);
        self.decisions = self.decisions.saturating_add(delta.decisions);
        self.propagations = self.propagations.saturating_add(delta.propagations);
        self.conflicts = self.conflicts.saturating_add(delta.conflicts);
        self.theory_conflicts = self.theory_conflicts.saturating_add(delta.theory_conflicts);
        self.restarts = self.restarts.saturating_add(delta.restarts);
        self.learnt_clauses = self.learnt_clauses.saturating_add(delta.learnt_clauses);
    }

    /// Element-wise saturating accumulation — associative and commutative.
    pub fn add(&mut self, other: &SolverTotals) {
        self.solves = self.solves.saturating_add(other.solves);
        self.decisions = self.decisions.saturating_add(other.decisions);
        self.propagations = self.propagations.saturating_add(other.propagations);
        self.conflicts = self.conflicts.saturating_add(other.conflicts);
        self.theory_conflicts = self.theory_conflicts.saturating_add(other.theory_conflicts);
        self.restarts = self.restarts.saturating_add(other.restarts);
        self.learnt_clauses = self.learnt_clauses.saturating_add(other.learnt_clauses);
    }
}

/// Outcome counters of a detection run.
#[derive(Debug, Clone, Default)]
pub struct DetectionStats {
    /// Windows analyzed (including failed ones).
    pub windows: usize,
    /// Windows whose worker panicked (no per-COP records survive).
    pub failed_windows: usize,
    /// Concrete COPs examined (pre quick check).
    pub pairs_considered: usize,
    /// Distinct signatures passing the quick check (Table 1's "QC").
    pub qc_signatures: usize,
    /// COPs sent to the solver.
    pub cops_solved: usize,
    /// Solver verdicts.
    pub sat: usize,
    /// Solver verdicts.
    pub unsat: usize,
    /// COPs with no verdict, total across all reasons.
    pub undecided: usize,
    /// Per-reason breakdown of [`DetectionStats::undecided`].
    pub undecided_by_reason: BTreeMap<UndecidedReason, usize>,
    /// Undecided-timeout COPs re-solved in a half-size window by the
    /// one-shot retry policy ([`DetectorConfig::retry_split`]).
    ///
    /// [`DetectorConfig::retry_split`]: crate::DetectorConfig::retry_split
    pub retried_cops: usize,
    /// Retried COPs whose second solve produced a definitive verdict
    /// (SAT or UNSAT) instead of timing out again — the retry policy's
    /// success count. Always `retry_rescued <= retried_cops`.
    pub retry_rescued: usize,
    /// Witness validations that failed (soundness gate trips; expected 0).
    pub witness_failures: usize,
    /// COPs the Tier A (sync-preserving) screen confirmed as races without
    /// a solver call. Count-type; zero when the cascade is off.
    pub tier_confirmed: usize,
    /// COPs the Tier B (entailment) screen refuted without a solver call.
    /// Count-type; zero when the cascade is off.
    pub tier_refuted: usize,
    /// COPs neither screen decided (plus fault-forced verdicts): the
    /// residue the solver saw. With the cascade on,
    /// `tier_confirmed + tier_refuted + tier_residue == cops_solved`.
    /// Count-type; zero when the cascade is off.
    pub tier_residue: usize,
    /// Events actually encoded, summed over surviving COP encodings (the
    /// cone of influence per COP; equals
    /// [`DetectionStats::window_events_encoded`] with slicing off).
    /// Count-type.
    pub cone_events: u64,
    /// Window events the surviving COP encodings were cut from, summed.
    /// Count-type.
    pub window_events_encoded: u64,
    /// Events relevance slicing removed from surviving encodings, summed
    /// (`window_events_encoded - cone_events`). Count-type.
    pub sliced_out: u64,
    /// Asserted constraints across surviving COP encodings, summed.
    /// Count-type.
    pub constraints_encoded: u64,
    /// Per-COP cone-size distribution (events actually encoded).
    /// Count-type.
    pub cone_events_per_cop: Histogram,
    /// Per-COP formula-size distribution (asserted constraints).
    /// Count-type.
    pub constraints_per_cop: Histogram,
    /// Summed SAT-core effort (decisions, propagations, conflicts, …)
    /// across every surviving COP solve. Count-type: identical at every
    /// thread count.
    pub solver_totals: SolverTotals,
    /// Per-COP conflict distribution (one observation per solved COP, over
    /// all of that COP's solver invocations). Count-type.
    pub conflicts_per_cop: Histogram,
    /// Per-COP decision distribution. Count-type.
    pub decisions_per_cop: Histogram,
    /// Per-COP propagation distribution. Count-type.
    pub propagations_per_cop: Histogram,
    /// Summed time spent encoding and solving, across all workers. With
    /// `parallelism > 1` this exceeds [`DetectionStats::wall_time`].
    pub solver_time: Duration,
    /// Summed time inside the Tier A confirmation screen. Timing-type.
    pub tier_a_time: Duration,
    /// Summed time inside the Tier B refutation screen (including base
    /// entailment graph construction). Timing-type.
    pub tier_b_time: Duration,
    /// Wall-clock detection time, start to finish.
    pub wall_time: Duration,
    /// Per-window worker time (enumerate + encode + solve), indexed by
    /// window.
    pub window_times: Vec<Duration>,
    /// High-water mark of window [`View`](rvtrace::View)s alive at once.
    /// The eager driver materializes every window up front, so this equals
    /// [`DetectionStats::windows`]; the pipelined/streaming drivers bound
    /// it by the worker count plus the dispatch queue. Gauge-type: depends
    /// on worker count and scheduling, excluded from the deterministic
    /// summary.
    pub peak_window_residency: usize,
    /// Wall-clock time from the start of detection (for the streaming
    /// driver: from the first byte read) until the first race was merged
    /// into the report. `None` when no race was found. Timing-type.
    pub time_to_first_race: Option<Duration>,
    /// Wall-clock span during which window solving overlapped trace
    /// ingestion (streaming driver only; `None` for in-memory runs).
    /// Timing-type.
    pub ingest_overlap: Option<Duration>,
    /// Boundary-straddling COPs solved on extended views (`--window-mode
    /// cone`; the dependence-bounded cross-window pass). Count-type;
    /// zero in fixed mode and on non-straddling traces.
    pub straddle_cops: usize,
    /// Straddling COPs whose extended-view solve confirmed a race — the
    /// races fixed windowing is structurally blind to. Count-type.
    pub straddle_races: usize,
    /// Straddling COPs degraded to `Undecided(boundary-budget)` because
    /// their partner lay beyond the `--spill-budget` lookback cap.
    /// Count-type.
    pub boundary_over_budget: usize,
    /// High-water mark of events a single extended view reached back
    /// beyond its window start (spill residency actually used).
    /// Count-type (a deterministic per-window maximum, not a scheduling
    /// gauge): identical at every thread count.
    pub spill_peak_events: usize,
}

impl DetectionStats {
    /// Accumulates `other` into `self`: counters and solver time sum,
    /// per-window times concatenate, and wall time takes the maximum (two
    /// merged runs are assumed concurrent; re-measure around the merge for
    /// an end-to-end figure).
    pub fn merge(&mut self, other: &DetectionStats) {
        self.windows += other.windows;
        self.failed_windows += other.failed_windows;
        self.pairs_considered += other.pairs_considered;
        self.qc_signatures += other.qc_signatures;
        self.cops_solved += other.cops_solved;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.undecided += other.undecided;
        for (&reason, &n) in &other.undecided_by_reason {
            *self.undecided_by_reason.entry(reason).or_insert(0) += n;
        }
        self.retried_cops += other.retried_cops;
        self.retry_rescued += other.retry_rescued;
        self.witness_failures += other.witness_failures;
        self.tier_confirmed += other.tier_confirmed;
        self.tier_refuted += other.tier_refuted;
        self.tier_residue += other.tier_residue;
        self.cone_events += other.cone_events;
        self.window_events_encoded += other.window_events_encoded;
        self.sliced_out += other.sliced_out;
        self.constraints_encoded += other.constraints_encoded;
        self.cone_events_per_cop.merge(&other.cone_events_per_cop);
        self.constraints_per_cop.merge(&other.constraints_per_cop);
        self.solver_totals.add(&other.solver_totals);
        self.conflicts_per_cop.merge(&other.conflicts_per_cop);
        self.decisions_per_cop.merge(&other.decisions_per_cop);
        self.propagations_per_cop.merge(&other.propagations_per_cop);
        self.solver_time += other.solver_time;
        self.tier_a_time += other.tier_a_time;
        self.tier_b_time += other.tier_b_time;
        self.wall_time = self.wall_time.max(other.wall_time);
        self.window_times.extend_from_slice(&other.window_times);
        self.peak_window_residency = self.peak_window_residency.max(other.peak_window_residency);
        // Concurrent-runs convention, like wall_time: the merged "first
        // race" is the earliest either run saw one.
        self.time_to_first_race = match (self.time_to_first_race, other.time_to_first_race) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.ingest_overlap = match (self.ingest_overlap, other.ingest_overlap) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        self.straddle_cops += other.straddle_cops;
        self.straddle_races += other.straddle_races;
        self.boundary_over_budget += other.boundary_over_budget;
        self.spill_peak_events = self.spill_peak_events.max(other.spill_peak_events);
    }

    /// Records one undecided COP verdict.
    pub fn record_undecided(&mut self, reason: UndecidedReason) {
        self.undecided += 1;
        *self.undecided_by_reason.entry(reason).or_insert(0) += 1;
    }
}

impl std::ops::AddAssign<&DetectionStats> for DetectionStats {
    fn add_assign(&mut self, other: &DetectionStats) {
        self.merge(other);
    }
}

/// The result of running a detector over a trace.
#[derive(Debug, Clone, Default)]
pub struct DetectionReport {
    /// Validated races, one per signature (when deduplication is on).
    pub races: Vec<RaceReport>,
    /// Windows whose worker panicked; their COPs have no verdicts.
    pub failed_windows: Vec<FailedWindow>,
    /// Counters.
    pub stats: DetectionStats,
}

impl DetectionReport {
    /// Number of distinct race signatures reported.
    pub fn n_races(&self) -> usize {
        self.races.len()
    }

    /// Whether detection degraded: some verdicts are missing (undecided
    /// COPs or failed windows). Reported races are still sound; only
    /// completeness is affected.
    pub fn is_degraded(&self) -> bool {
        self.stats.undecided > 0 || !self.failed_windows.is_empty()
    }

    /// The distinct signatures reported.
    pub fn signatures(&self) -> Vec<RaceSignature> {
        let mut sigs: Vec<RaceSignature> = self.races.iter().map(|r| r.signature).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs
    }

    /// Folds the whole report into a [`Metrics`] registry.
    ///
    /// Counters (`detector.*`, `solver.*`) and histograms
    /// (`solver.*_per_cop`) are count-type and byte-identical across
    /// thread counts; timings (`detector.wall_time`, `detector.solver_time`
    /// — the wall vs. summed-solver split — `detector.window.NNNNNN` per
    /// window, `detector.time_to_first_race` and `stream.ingest_overlap`
    /// when measured) are wall-clock measurements and are not, and the
    /// `stream.peak_window_residency` gauge depends on the worker count.
    /// Strip all of those with [`Metrics::without_timings`] before
    /// comparing runs.
    pub fn to_metrics(&self) -> Metrics {
        let s = &self.stats;
        let mut m = Metrics::new();
        m.inc("detector.races", self.n_races() as u64);
        m.inc("detector.windows", s.windows as u64);
        m.inc("detector.failed_windows", s.failed_windows as u64);
        m.inc("detector.pairs_considered", s.pairs_considered as u64);
        m.inc("detector.qc_signatures", s.qc_signatures as u64);
        m.inc("detector.cops_solved", s.cops_solved as u64);
        m.inc("detector.sat", s.sat as u64);
        m.inc("detector.unsat", s.unsat as u64);
        m.inc("detector.undecided", s.undecided as u64);
        for (reason, &n) in &s.undecided_by_reason {
            m.inc(&format!("detector.undecided.{reason}"), n as u64);
        }
        m.inc("detector.retried_cops", s.retried_cops as u64);
        m.inc("detector.retry_rescued", s.retry_rescued as u64);
        m.inc("detector.witness_failures", s.witness_failures as u64);
        m.inc("detector.tiers.confirmed", s.tier_confirmed as u64);
        m.inc("detector.tiers.refuted", s.tier_refuted as u64);
        m.inc("detector.tiers.residue", s.tier_residue as u64);
        m.inc("encoder.cone_events", s.cone_events);
        m.inc("encoder.window_events", s.window_events_encoded);
        m.inc("encoder.sliced_out", s.sliced_out);
        m.inc("encoder.constraints", s.constraints_encoded);
        m.record_histogram("encoder.cone_events_per_cop", &s.cone_events_per_cop);
        m.record_histogram("encoder.constraints_per_cop", &s.constraints_per_cop);
        let t = &s.solver_totals;
        m.inc("solver.solves", t.solves);
        m.inc("solver.decisions", t.decisions);
        m.inc("solver.propagations", t.propagations);
        m.inc("solver.conflicts", t.conflicts);
        m.inc("solver.theory_conflicts", t.theory_conflicts);
        m.inc("solver.restarts", t.restarts);
        m.inc("solver.learnt_clauses", t.learnt_clauses);
        m.record_histogram("solver.conflicts_per_cop", &s.conflicts_per_cop);
        m.record_histogram("solver.decisions_per_cop", &s.decisions_per_cop);
        m.record_histogram("solver.propagations_per_cop", &s.propagations_per_cop);
        m.record_time("detector.wall_time", s.wall_time);
        m.record_time("detector.solver_time", s.solver_time);
        m.record_time("detector.tier_a_time", s.tier_a_time);
        m.record_time("detector.tier_b_time", s.tier_b_time);
        for (i, &t) in s.window_times.iter().enumerate() {
            m.record_time(&format!("detector.window.{i:06}"), t);
        }
        if s.peak_window_residency > 0 {
            m.gauge_max(
                "stream.peak_window_residency",
                s.peak_window_residency as u64,
            );
        }
        if let Some(t) = s.time_to_first_race {
            m.record_time("detector.time_to_first_race", t);
        }
        if let Some(t) = s.ingest_overlap {
            m.record_time("stream.ingest_overlap", t);
        }
        // Boundary counters appear only when the cross-window pass did
        // anything, so fixed-mode and non-straddling cone-mode runs emit
        // byte-identical metric documents.
        if s.straddle_cops > 0 {
            m.inc("detector.boundary.straddle_cops", s.straddle_cops as u64);
        }
        if s.straddle_races > 0 {
            m.inc("detector.boundary.straddle_races", s.straddle_races as u64);
        }
        if s.boundary_over_budget > 0 {
            m.inc(
                "detector.boundary.over_budget",
                s.boundary_over_budget as u64,
            );
        }
        if s.spill_peak_events > 0 {
            m.inc(
                "detector.boundary.spill_peak_events",
                s.spill_peak_events as u64,
            );
        }
        m
    }
}

impl DetectionReport {
    /// A deterministic, timing-free rendering of everything the run
    /// decided — races (signatures, COPs, witness schedules), verdict
    /// counters, the undecided breakdown, and failed windows. Two runs
    /// that merged the same outcomes render byte-identically, whatever
    /// the thread count; the parallel-equivalence suite compares this.
    pub fn deterministic_summary(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(
            out,
            "races={} windows={} failed={} pairs={} qc={} solved={} sat={} unsat={} undecided={} retried={} rescued={} witness_failures={}",
            self.n_races(),
            s.windows,
            s.failed_windows,
            s.pairs_considered,
            s.qc_signatures,
            s.cops_solved,
            s.sat,
            s.unsat,
            s.undecided,
            s.retried_cops,
            s.retry_rescued,
            s.witness_failures,
        );
        let t = &s.solver_totals;
        let _ = writeln!(
            out,
            "solver: solves={} decisions={} propagations={} conflicts={} theory_conflicts={} restarts={} learnt={}",
            t.solves,
            t.decisions,
            t.propagations,
            t.conflicts,
            t.theory_conflicts,
            t.restarts,
            t.learnt_clauses,
        );
        let _ = writeln!(
            out,
            "tiers: confirmed={} refuted={} residue={}",
            s.tier_confirmed, s.tier_refuted, s.tier_residue,
        );
        // Printed only when the cross-window pass did anything: cone-mode
        // summaries on non-straddling traces stay byte-identical to
        // fixed-mode ones.
        if s.straddle_cops + s.boundary_over_budget + s.spill_peak_events > 0 {
            let _ = writeln!(
                out,
                "boundary: straddle_cops={} straddle_races={} over_budget={} spill_peak={}",
                s.straddle_cops, s.straddle_races, s.boundary_over_budget, s.spill_peak_events,
            );
        }
        for (name, h) in [
            ("conflicts_per_cop", &s.conflicts_per_cop),
            ("decisions_per_cop", &s.decisions_per_cop),
            ("propagations_per_cop", &s.propagations_per_cop),
        ] {
            let _ = writeln!(
                out,
                "{name}: count={} sum={} max={}",
                h.count(),
                h.sum(),
                h.max()
            );
        }
        for (reason, n) in &s.undecided_by_reason {
            let _ = writeln!(out, "undecided {reason}: {n}");
        }
        for fw in &self.failed_windows {
            let _ = writeln!(out, "{fw}");
        }
        for r in &self.races {
            let _ = writeln!(
                out,
                "race sig={:?} cop=({},{}) window={}..{} witness={}",
                r.signature,
                r.cop.first.0,
                r.cop.second.0,
                r.window.start,
                r.window.end,
                r.schedule,
            );
        }
        out
    }
}

impl fmt::Display for DetectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} race(s); {} window(s), QC={}, solved={} (sat={}, unsat={}, undecided={}), solver {:?}, wall {:?}",
            self.n_races(),
            self.stats.windows,
            self.stats.qc_signatures,
            self.stats.cops_solved,
            self.stats.sat,
            self.stats.unsat,
            self.stats.undecided,
            self.stats.solver_time,
            self.stats.wall_time,
        )?;
        let times = &self.stats.window_times;
        if !times.is_empty() {
            // Per-window wall time: the merge keeps every window's worker
            // time, so the report can point at the slowest window instead
            // of burying it in an aggregate.
            let min = times.iter().min().copied().unwrap_or_default();
            let max = times.iter().max().copied().unwrap_or_default();
            let total: Duration = times.iter().sum();
            let mean = total / times.len() as u32;
            let slowest = times
                .iter()
                .enumerate()
                .max_by_key(|(_, t)| **t)
                .map(|(i, _)| i)
                .unwrap_or(0);
            writeln!(
                f,
                "  window times: min {min:?}, mean {mean:?}, max {max:?} (slowest: window {slowest})",
            )?;
        }
        if self.stats.undecided > 0 {
            write!(f, "  undecided:")?;
            for (reason, n) in &self.stats.undecided_by_reason {
                write!(f, " {reason}={n}")?;
            }
            writeln!(f)?;
        }
        if self.stats.retried_cops > 0 {
            writeln!(
                f,
                "  retried {} in split windows, {} rescued",
                self.stats.retried_cops, self.stats.retry_rescued
            )?;
        }
        if self.stats.straddle_cops + self.stats.boundary_over_budget > 0 {
            writeln!(
                f,
                "  boundary: {} straddling COP(s), {} race(s), {} over budget, spill peak {} event(s)",
                self.stats.straddle_cops,
                self.stats.straddle_races,
                self.stats.boundary_over_budget,
                self.stats.spill_peak_events,
            )?;
        }
        for fw in &self.failed_windows {
            writeln!(f, "  {fw}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{EventId, Loc};

    #[test]
    fn signatures_deduplicate() {
        let sig = RaceSignature::new(Loc(1), Loc(2));
        let mk = |a: u32, b: u32| RaceReport {
            cop: Cop::new(EventId(a), EventId(b)),
            signature: sig,
            window: 0..10,
            schedule: Schedule(vec![]),
        };
        let rep = DetectionReport {
            races: vec![mk(0, 1), mk(2, 3)],
            failed_windows: Vec::new(),
            stats: Default::default(),
        };
        assert_eq!(rep.n_races(), 2);
        assert_eq!(rep.signatures().len(), 1);
    }

    #[test]
    fn undecided_accounting_and_degradation() {
        let mut rep = DetectionReport::default();
        assert!(!rep.is_degraded());
        rep.stats.record_undecided(UndecidedReason::Timeout);
        rep.stats.record_undecided(UndecidedReason::Timeout);
        rep.stats.record_undecided(UndecidedReason::EncodeError);
        assert_eq!(rep.stats.undecided, 3);
        assert_eq!(rep.stats.undecided_by_reason[&UndecidedReason::Timeout], 2);
        assert!(rep.is_degraded());
        let s = format!("{rep}");
        assert!(s.contains("undecided=3"), "{s}");
        assert!(s.contains("timeout=2"), "{s}");
        assert!(s.contains("encode-error=1"), "{s}");

        let mut rep = DetectionReport::default();
        rep.failed_windows.push(FailedWindow {
            window_index: 4,
            range: 40_000..50_000,
            reason: "boom".into(),
        });
        rep.stats.failed_windows = 1;
        assert!(rep.is_degraded());
        let s = format!("{rep}");
        assert!(
            s.contains("window 4 (events 40000..50000) failed: boom"),
            "{s}"
        );
        assert!(rep.deterministic_summary().contains("failed=1"));
    }

    #[test]
    fn display_summarizes() {
        let rep = DetectionReport::default();
        let s = format!("{rep}");
        assert!(s.contains("0 race(s)"));
        assert!(s.contains("QC=0"));
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_wall_time() {
        let mut a = DetectionStats {
            windows: 1,
            cops_solved: 3,
            sat: 1,
            unsat: 2,
            solver_time: Duration::from_millis(10),
            wall_time: Duration::from_millis(30),
            window_times: vec![Duration::from_millis(30)],
            ..Default::default()
        };
        let b = DetectionStats {
            windows: 2,
            cops_solved: 4,
            sat: 0,
            unsat: 4,
            solver_time: Duration::from_millis(5),
            wall_time: Duration::from_millis(50),
            window_times: vec![Duration::from_millis(20), Duration::from_millis(30)],
            ..Default::default()
        };
        a += &b;
        assert_eq!(a.windows, 3);
        assert_eq!(a.cops_solved, 7);
        assert_eq!((a.sat, a.unsat), (1, 6));
        let mut c = DetectionStats::default();
        c.record_undecided(UndecidedReason::ConflictBudget);
        a += &c;
        assert_eq!(a.undecided, 1);
        assert_eq!(a.undecided_by_reason[&UndecidedReason::ConflictBudget], 1);
        assert_eq!(a.solver_time, Duration::from_millis(15));
        assert_eq!(
            a.wall_time,
            Duration::from_millis(50),
            "concurrent runs: max"
        );
        assert_eq!(a.window_times.len(), 3);
    }
}
