//! Race reports and detection summaries.

use std::fmt;
use std::time::Duration;

use rvtrace::{Cop, RaceSignature, Schedule, Trace};

/// One detected race, with its certifying witness.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The concrete conflicting pair that was proven to race.
    pub cop: Cop,
    /// The static signature (location pair).
    pub signature: RaceSignature,
    /// The trace range of the window in which the race was found.
    pub window: std::ops::Range<usize>,
    /// A validated witness schedule ending with the two accesses adjacent.
    pub schedule: Schedule,
}

impl RaceReport {
    /// Renders the report with human-readable location names.
    pub fn display<'a>(&'a self, trace: &'a Trace) -> RaceReportDisplay<'a> {
        RaceReportDisplay {
            report: self,
            trace,
        }
    }
}

/// Human-readable rendering of a [`RaceReport`].
#[derive(Debug)]
pub struct RaceReportDisplay<'a> {
    report: &'a RaceReport,
    trace: &'a Trace,
}

impl fmt::Display for RaceReportDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.report;
        write!(
            f,
            "race {} between {} and {} (witness: {})",
            r.signature.display(self.trace),
            self.trace.event(r.cop.first),
            self.trace.event(r.cop.second),
            r.schedule,
        )
    }
}

/// Outcome counters of a detection run.
#[derive(Debug, Clone, Default)]
pub struct DetectionStats {
    /// Windows analyzed.
    pub windows: usize,
    /// Concrete COPs examined (pre quick check).
    pub pairs_considered: usize,
    /// Distinct signatures passing the quick check (Table 1's "QC").
    pub qc_signatures: usize,
    /// COPs sent to the solver.
    pub cops_solved: usize,
    /// Solver verdicts.
    pub sat: usize,
    /// Solver verdicts.
    pub unsat: usize,
    /// Budget exhaustions (treated as no-race).
    pub unknown: usize,
    /// Witness validations that failed (soundness gate trips; expected 0).
    pub witness_failures: usize,
    /// Summed time spent encoding and solving, across all workers. With
    /// `parallelism > 1` this exceeds [`DetectionStats::wall_time`].
    pub solver_time: Duration,
    /// Wall-clock detection time, start to finish.
    pub wall_time: Duration,
    /// Per-window worker time (enumerate + encode + solve), indexed by
    /// window.
    pub window_times: Vec<Duration>,
}

impl DetectionStats {
    /// Accumulates `other` into `self`: counters and solver time sum,
    /// per-window times concatenate, and wall time takes the maximum (two
    /// merged runs are assumed concurrent; re-measure around the merge for
    /// an end-to-end figure).
    pub fn merge(&mut self, other: &DetectionStats) {
        self.windows += other.windows;
        self.pairs_considered += other.pairs_considered;
        self.qc_signatures += other.qc_signatures;
        self.cops_solved += other.cops_solved;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.witness_failures += other.witness_failures;
        self.solver_time += other.solver_time;
        self.wall_time = self.wall_time.max(other.wall_time);
        self.window_times.extend_from_slice(&other.window_times);
    }
}

impl std::ops::AddAssign<&DetectionStats> for DetectionStats {
    fn add_assign(&mut self, other: &DetectionStats) {
        self.merge(other);
    }
}

/// The result of running a detector over a trace.
#[derive(Debug, Default)]
pub struct DetectionReport {
    /// Validated races, one per signature (when deduplication is on).
    pub races: Vec<RaceReport>,
    /// Counters.
    pub stats: DetectionStats,
}

impl DetectionReport {
    /// Number of distinct race signatures reported.
    pub fn n_races(&self) -> usize {
        self.races.len()
    }

    /// The distinct signatures reported.
    pub fn signatures(&self) -> Vec<RaceSignature> {
        let mut sigs: Vec<RaceSignature> = self.races.iter().map(|r| r.signature).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs
    }
}

impl fmt::Display for DetectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} race(s); {} window(s), QC={}, solved={} (sat={}, unsat={}, unknown={}), solver {:?}, wall {:?}",
            self.n_races(),
            self.stats.windows,
            self.stats.qc_signatures,
            self.stats.cops_solved,
            self.stats.sat,
            self.stats.unsat,
            self.stats.unknown,
            self.stats.solver_time,
            self.stats.wall_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtrace::{EventId, Loc};

    #[test]
    fn signatures_deduplicate() {
        let sig = RaceSignature::new(Loc(1), Loc(2));
        let mk = |a: u32, b: u32| RaceReport {
            cop: Cop::new(EventId(a), EventId(b)),
            signature: sig,
            window: 0..10,
            schedule: Schedule(vec![]),
        };
        let rep = DetectionReport {
            races: vec![mk(0, 1), mk(2, 3)],
            stats: Default::default(),
        };
        assert_eq!(rep.n_races(), 2);
        assert_eq!(rep.signatures().len(), 1);
    }

    #[test]
    fn display_summarizes() {
        let rep = DetectionReport::default();
        let s = format!("{rep}");
        assert!(s.contains("0 race(s)"));
        assert!(s.contains("QC=0"));
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_wall_time() {
        let mut a = DetectionStats {
            windows: 1,
            cops_solved: 3,
            sat: 1,
            unsat: 2,
            solver_time: Duration::from_millis(10),
            wall_time: Duration::from_millis(30),
            window_times: vec![Duration::from_millis(30)],
            ..Default::default()
        };
        let b = DetectionStats {
            windows: 2,
            cops_solved: 4,
            sat: 0,
            unsat: 4,
            solver_time: Duration::from_millis(5),
            wall_time: Duration::from_millis(50),
            window_times: vec![Duration::from_millis(20), Duration::from_millis(30)],
            ..Default::default()
        };
        a += &b;
        assert_eq!(a.windows, 3);
        assert_eq!(a.cops_solved, 7);
        assert_eq!((a.sat, a.unsat), (1, 6));
        assert_eq!(a.solver_time, Duration::from_millis(15));
        assert_eq!(
            a.wall_time,
            Duration::from_millis(50),
            "concurrent runs: max"
        );
        assert_eq!(a.window_times.len(), 3);
    }
}
