//! Microbenchmarks for the SMT substrate (`rvsmt`): the IDL theory solver,
//! the CDCL core, and full DPLL(T) solves on race-shaped formulas. These
//! underpin the paper's scalability argument (§5): "the core computation
//! takes place in the constraint solving phase".

use rvbench::micro::Runner;
use rvsmt::{Atom, BVar, Budget, FormulaBuilder, Idl, IntVar, Lit, SmtResult, Solver};

/// Asserting a long chain of strict orderings (one potential repair each).
fn bench_idl_chain(r: &mut Runner) {
    for n in [1_000usize, 10_000] {
        r.bench(&format!("idl/chain/{n}"), || {
            let mut idl = Idl::new(n);
            for i in 0..n - 1 {
                // Reverse order so every assert repairs potentials.
                let atom = Atom {
                    x: IntVar((n - 1 - i) as u32),
                    y: IntVar((n - 2 - i) as u32),
                    k: -1,
                };
                idl.assert(atom, Lit::pos(BVar(i as u32))).unwrap();
            }
            idl.n_edges()
        });
    }
}

/// Negative-cycle detection cost as the cycle length grows.
fn bench_idl_conflict(r: &mut Runner) {
    for n in [100usize, 1_000] {
        r.bench(&format!("idl/negative-cycle/{n}"), || {
            let mut idl = Idl::new(n);
            for i in 0..n - 1 {
                let atom = Atom {
                    x: IntVar(i as u32),
                    y: IntVar(i as u32 + 1),
                    k: -1,
                };
                idl.assert(atom, Lit::pos(BVar(i as u32))).unwrap();
            }
            let closing = Atom {
                x: IntVar(n as u32 - 1),
                y: IntVar(0),
                k: -1,
            };
            idl.assert(closing, Lit::pos(BVar(n as u32)))
                .unwrap_err()
                .len()
        });
    }
}

/// A race-shaped DPLL(T) instance: MHB chains for `t` threads plus lock
/// disjunctions, asking for adjacency of a cross-thread pair.
fn race_shaped_formula(threads: usize, per_thread: usize) -> (FormulaBuilder, Vec<Vec<IntVar>>) {
    let mut f = FormulaBuilder::new();
    let vars: Vec<Vec<IntVar>> = (0..threads)
        .map(|_| (0..per_thread).map(|_| f.int_var()).collect())
        .collect();
    for tv in &vars {
        for w in tv.windows(2) {
            let t = f.lt(w[0], w[1]);
            f.assert_term(t);
        }
    }
    // Pairwise "lock" disjunctions between region middles.
    for a in 0..threads {
        for b in a + 1..threads {
            let (r1, a2) = (vars[a][per_thread / 2], vars[b][per_thread / 4]);
            let (r2, a1) = (vars[b][per_thread / 2], vars[a][per_thread / 4]);
            let d1 = f.lt(r1, a2);
            let d2 = f.lt(r2, a1);
            let d = f.or2(d1, d2);
            f.assert_term(d);
        }
    }
    (f, vars)
}

fn bench_dpllt_race_shape(r: &mut Runner) {
    for (threads, per_thread) in [(4usize, 250usize), (8, 500)] {
        r.bench(&format!("dpllt/race-shape/{threads}x{per_thread}"), || {
            let (mut f, vars) = race_shaped_formula(threads, per_thread);
            // Adjacency of two cross-thread events via shared var is
            // emulated by equality-free gluing: compare ordering.
            let t = f.lt(vars[0][per_thread - 1], vars[1][0]);
            f.assert_term(t);
            let mut s = Solver::new(&f);
            assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
            s.stats().sat.conflicts
        });
    }
}

/// UNSAT refutation: an MHB cycle hidden behind lock disjunctions.
fn bench_dpllt_unsat(r: &mut Runner) {
    r.bench("dpllt/unsat-cycle", || {
        let (mut f, vars) = race_shaped_formula(4, 100);
        let t1 = f.lt(vars[0][99], vars[1][0]);
        f.assert_term(t1);
        let t2 = f.lt(vars[1][99], vars[0][0]);
        f.assert_term(t2);
        let mut s = Solver::new(&f);
        assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Unsat);
    });
}

fn main() {
    let mut r = Runner::from_env("solver");
    bench_idl_chain(&mut r);
    bench_idl_conflict(&mut r);
    bench_dpllt_race_shape(&mut r);
    bench_dpllt_unsat(&mut r);
    r.finish();
}
