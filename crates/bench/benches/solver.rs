//! Microbenchmarks for the SMT substrate (`rvsmt`): the IDL theory solver,
//! the CDCL core, and full DPLL(T) solves on race-shaped formulas. These
//! underpin the paper's scalability argument (§5): "the core computation
//! takes place in the constraint solving phase".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvsmt::{Atom, BVar, Budget, FormulaBuilder, Idl, IntVar, Lit, SmtResult, Solver};

/// Asserting a long chain of strict orderings (one potential repair each).
fn bench_idl_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("idl/chain");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut idl = Idl::new(n);
                for i in 0..n - 1 {
                    // Reverse order so every assert repairs potentials.
                    let atom = Atom {
                        x: IntVar((n - 1 - i) as u32),
                        y: IntVar((n - 2 - i) as u32),
                        k: -1,
                    };
                    idl.assert(atom, Lit::pos(BVar(i as u32))).unwrap();
                }
                idl.n_edges()
            })
        });
    }
    g.finish();
}

/// Negative-cycle detection cost as the cycle length grows.
fn bench_idl_conflict(c: &mut Criterion) {
    let mut g = c.benchmark_group("idl/negative-cycle");
    for n in [100usize, 1_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut idl = Idl::new(n);
                for i in 0..n - 1 {
                    let atom =
                        Atom { x: IntVar(i as u32), y: IntVar(i as u32 + 1), k: -1 };
                    idl.assert(atom, Lit::pos(BVar(i as u32))).unwrap();
                }
                let closing = Atom { x: IntVar(n as u32 - 1), y: IntVar(0), k: -1 };
                idl.assert(closing, Lit::pos(BVar(n as u32))).unwrap_err().len()
            })
        });
    }
    g.finish();
}

/// A race-shaped DPLL(T) instance: MHB chains for `t` threads plus lock
/// disjunctions, asking for adjacency of a cross-thread pair.
fn race_shaped_formula(threads: usize, per_thread: usize) -> (FormulaBuilder, Vec<Vec<IntVar>>) {
    let mut f = FormulaBuilder::new();
    let vars: Vec<Vec<IntVar>> =
        (0..threads).map(|_| (0..per_thread).map(|_| f.int_var()).collect()).collect();
    for tv in &vars {
        for w in tv.windows(2) {
            let t = f.lt(w[0], w[1]);
            f.assert_term(t);
        }
    }
    // Pairwise "lock" disjunctions between region middles.
    for a in 0..threads {
        for b in a + 1..threads {
            let (r1, a2) = (vars[a][per_thread / 2], vars[b][per_thread / 4]);
            let (r2, a1) = (vars[b][per_thread / 2], vars[a][per_thread / 4]);
            let d1 = f.lt(r1, a2);
            let d2 = f.lt(r2, a1);
            let d = f.or2(d1, d2);
            f.assert_term(d);
        }
    }
    (f, vars)
}

fn bench_dpllt_race_shape(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpllt/race-shape");
    for (threads, per_thread) in [(4usize, 250usize), (8, 500)] {
        let id = format!("{threads}x{per_thread}");
        g.bench_function(BenchmarkId::from_parameter(id), |b| {
            b.iter(|| {
                let (mut f, vars) = race_shaped_formula(threads, per_thread);
                // Adjacency of two cross-thread events via shared var
                // is emulated by equality-free gluing: compare ordering.
                let t = f.lt(vars[0][per_thread - 1], vars[1][0]);
                f.assert_term(t);
                let mut s = Solver::new(&f);
                assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Sat);
                s.stats().sat.conflicts
            })
        });
    }
    g.finish();
}

/// UNSAT refutation: an MHB cycle hidden behind lock disjunctions.
fn bench_dpllt_unsat(c: &mut Criterion) {
    c.bench_function("dpllt/unsat-cycle", |b| {
        b.iter(|| {
            let (mut f, vars) = race_shaped_formula(4, 100);
            let t1 = f.lt(vars[0][99], vars[1][0]);
            f.assert_term(t1);
            let t2 = f.lt(vars[1][99], vars[0][0]);
            f.assert_term(t2);
            let mut s = Solver::new(&f);
            assert_eq!(s.solve(&Budget::UNLIMITED), SmtResult::Unsat);
        })
    });
}

criterion_group!(
    benches,
    bench_idl_chain,
    bench_idl_conflict,
    bench_dpllt_race_shape,
    bench_dpllt_unsat
);
criterion_main!(benches);
