//! The windowing strategy (paper §4, "Handling long traces"): detection
//! cost and coverage as a function of window size. Larger windows find
//! cross-window races but generate (quadratically) heavier constraint
//! systems; the paper settles on 10K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads;

fn bench_window_sweep(c: &mut Criterion) {
    let profile = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "ftpserver")
        .expect("ftpserver profile")
        .scaled(0.5);
    let w = workloads::systems::generate(&profile);
    let mut g = c.benchmark_group("windowing/ftpserver-0.5x");
    g.sample_size(10);
    for window in [128usize, 256, 512, 1024, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &window| {
            let cfg = DetectorConfig { window_size: window, ..Default::default() };
            let det = RaceDetector::with_config(cfg);
            b.iter(|| det.detect(&w.trace).n_races())
        });
    }
    g.finish();
}

/// Trace-construction overhead of the windows themselves (the per-window
/// index build: clocks, locksets, critical sections).
fn bench_view_build(c: &mut Criterion) {
    use rvtrace::ViewExt;
    let profile = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "derby")
        .expect("derby profile");
    let w = workloads::systems::generate(&profile);
    let mut g = c.benchmark_group("windowing/view-build");
    for window in [256usize, 1024, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &window| {
            b.iter(|| w.trace.windows(window).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_window_sweep, bench_view_build);
criterion_main!(benches);
