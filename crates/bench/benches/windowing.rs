//! The windowing strategy (paper §4, "Handling long traces"): detection
//! cost and coverage as a function of window size. Larger windows find
//! cross-window races but generate (quadratically) heavier constraint
//! systems; the paper settles on 10K.

use std::time::Duration;

use rvbench::micro::Runner;
use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads;

fn bench_window_sweep(r: &mut Runner) {
    let profile = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "ftpserver")
        .expect("ftpserver profile")
        .scaled(0.5);
    let w = workloads::systems::generate(&profile);
    r.sample_target(Duration::from_millis(100));
    for window in [128usize, 256, 512, 1024, 4096] {
        let cfg = DetectorConfig {
            window_size: window,
            ..Default::default()
        };
        let det = RaceDetector::with_config(cfg);
        r.bench(&format!("windowing/ftpserver-0.5x/{window}"), || {
            det.detect(&w.trace).n_races()
        });
    }
}

/// Trace-construction overhead of the windows themselves (the per-window
/// index build: clocks, locksets, critical sections).
fn bench_view_build(r: &mut Runner) {
    use rvtrace::ViewExt;
    let profile = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "derby")
        .expect("derby profile");
    let w = workloads::systems::generate(&profile);
    for window in [256usize, 1024, 10_000] {
        r.bench(&format!("windowing/view-build/{window}"), || {
            w.trace.windows(window).len()
        });
    }
}

fn main() {
    let mut r = Runner::from_env("windowing");
    bench_window_sweep(&mut r);
    bench_view_build(&mut r);
    r.finish();
}
