//! Scaling of the parallel window driver: the same trace, the same
//! windows, solved with 1/2/4/8 workers. Reports per-run wall time,
//! throughput (events/s) and speedup over the serial driver; verifies on
//! the way that every thread count reports identical races (the merge-time
//! dedup contract of `RaceDetector::detect`).

use std::time::{Duration, Instant};

use rvbench::micro::fmt_duration;
use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads::{self, Workload};

/// Enough windows to keep 8 workers busy, enough constraint work per
/// window for solving (not view construction) to dominate.
fn workload() -> (Workload, usize) {
    let profile = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "derby")
        .expect("derby profile")
        .scaled(0.5);
    let w = workloads::systems::generate(&profile);
    let window_size = (w.trace.len() / 24).max(64);
    (w, window_size)
}

fn measure(
    w: &Workload,
    window_size: usize,
    parallelism: usize,
    reps: usize,
) -> (Duration, Vec<rvtrace::RaceSignature>) {
    let cfg = DetectorConfig {
        window_size,
        parallelism,
        ..Default::default()
    };
    let det = RaceDetector::with_config(cfg);
    let mut best = Duration::MAX;
    let mut sigs = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let report = det.detect(&w.trace);
        best = best.min(start.elapsed());
        sigs = report.signatures();
    }
    (best, sigs)
}

fn main() {
    let (w, window_size) = workload();
    let events = w.trace.len();
    let n_windows = events.div_ceil(window_size);
    println!("== parallel_scaling ==");
    println!(
        "workload {} ({events} events, {n_windows} windows of {window_size}), best of 3 runs",
        w.name
    );
    let (serial_time, serial_sigs) = measure(&w, window_size, 1, 3);
    println!(
        "  jobs=1  {:>10}  {:>12.0} events/s  1.00x",
        fmt_duration(serial_time),
        events as f64 / serial_time.as_secs_f64()
    );
    for jobs in [2usize, 4, 8] {
        let (time, sigs) = measure(&w, window_size, jobs, 3);
        assert_eq!(sigs, serial_sigs, "jobs={jobs} changed detected signatures");
        println!(
            "  jobs={jobs}  {:>10}  {:>12.0} events/s  {:.2}x",
            fmt_duration(time),
            events as f64 / time.as_secs_f64(),
            serial_time.as_secs_f64() / time.as_secs_f64()
        );
    }
}
