//! Detector throughput benches: the four techniques on identical traces
//! (Table 1 columns 13–16). HB and CP are expected orders of magnitude
//! faster than the SMT-based detectors, with RV faster than Said (§5,
//! "Scalability").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvbaselines::{CpDetector, HbDetector, MaximalDetector, RaceDetectorTool, SaidDetector};
use rvsim::workloads::{self, Workload};

fn benchmark_set() -> Vec<Workload> {
    vec![
        workloads::figures::figure1(),
        Workload::run("account", &workloads::contest::account(3, 4), 11),
        Workload::run("crypt", &workloads::grande::crypt(3, 8), 21),
    ]
}

fn bench_all_detectors(c: &mut Criterion) {
    let set = benchmark_set();
    for w in &set {
        let mut g = c.benchmark_group(format!("detect/{}", w.name));
        g.bench_function(BenchmarkId::from_parameter("RV"), |b| {
            let d = MaximalDetector::default();
            b.iter(|| d.detect_races(&w.trace).n_races())
        });
        g.bench_function(BenchmarkId::from_parameter("Said"), |b| {
            let d = SaidDetector::default();
            b.iter(|| d.detect_races(&w.trace).n_races())
        });
        g.bench_function(BenchmarkId::from_parameter("CP"), |b| {
            let d = CpDetector::default();
            b.iter(|| d.detect_races(&w.trace).n_races())
        });
        g.bench_function(BenchmarkId::from_parameter("HB"), |b| {
            let d = HbDetector::default();
            b.iter(|| d.detect_races(&w.trace).n_races())
        });
        g.finish();
    }
}

/// One system-class row at reduced scale: the derby-like constraint-heavy
/// profile the paper singles out as the most time-consuming case.
fn bench_system_row(c: &mut Criterion) {
    let profile = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "derby")
        .expect("derby profile")
        .scaled(0.25);
    let w = workloads::systems::generate(&profile);
    let mut g = c.benchmark_group("detect/derby-0.25x");
    g.sample_size(10);
    g.bench_function("RV", |b| {
        let d = MaximalDetector::default();
        b.iter(|| d.detect_races(&w.trace).n_races())
    });
    g.bench_function("CP", |b| {
        let d = CpDetector::default();
        b.iter(|| d.detect_races(&w.trace).n_races())
    });
    g.bench_function("HB", |b| {
        let d = HbDetector::default();
        b.iter(|| d.detect_races(&w.trace).n_races())
    });
    g.finish();
}

criterion_group!(benches, bench_all_detectors, bench_system_row);
criterion_main!(benches);
