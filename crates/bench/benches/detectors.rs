//! Detector throughput benches: the four techniques on identical traces
//! (Table 1 columns 13–16). HB and CP are expected orders of magnitude
//! faster than the SMT-based detectors, with RV faster than Said (§5,
//! "Scalability").

use std::time::Duration;

use rvbaselines::{CpDetector, HbDetector, MaximalDetector, RaceDetectorTool, SaidDetector};
use rvbench::micro::Runner;
use rvsim::workloads::{self, Workload};

fn benchmark_set() -> Vec<Workload> {
    vec![
        workloads::figures::figure1(),
        Workload::run("account", &workloads::contest::account(3, 4), 11),
        Workload::run("crypt", &workloads::grande::crypt(3, 8), 21),
    ]
}

fn bench_all_detectors(r: &mut Runner) {
    for w in &benchmark_set() {
        let rv = MaximalDetector::default();
        r.bench(&format!("detect/{}/RV", w.name), || {
            rv.detect_races(&w.trace).n_races()
        });
        let said = SaidDetector::default();
        r.bench(&format!("detect/{}/Said", w.name), || {
            said.detect_races(&w.trace).n_races()
        });
        let cp = CpDetector::default();
        r.bench(&format!("detect/{}/CP", w.name), || {
            cp.detect_races(&w.trace).n_races()
        });
        let hb = HbDetector::default();
        r.bench(&format!("detect/{}/HB", w.name), || {
            hb.detect_races(&w.trace).n_races()
        });
    }
}

/// One system-class row at reduced scale: the derby-like constraint-heavy
/// profile the paper singles out as the most time-consuming case.
fn bench_system_row(r: &mut Runner) {
    let profile = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "derby")
        .expect("derby profile")
        .scaled(0.25);
    let w = workloads::systems::generate(&profile);
    r.sample_target(Duration::from_millis(100));
    let rv = MaximalDetector::default();
    r.bench("detect/derby-0.25x/RV", || {
        rv.detect_races(&w.trace).n_races()
    });
    let cp = CpDetector::default();
    r.bench("detect/derby-0.25x/CP", || {
        cp.detect_races(&w.trace).n_races()
    });
    let hb = HbDetector::default();
    r.bench("detect/derby-0.25x/HB", || {
        hb.detect_races(&w.trace).n_races()
    });
}

fn main() {
    let mut r = Runner::from_env("detectors");
    bench_all_detectors(&mut r);
    bench_system_row(&mut r);
    r.finish();
}
