//! Ablations of the design choices the paper calls out:
//!
//! * the hybrid quick check (§4) — prunes COPs before constraint solving;
//! * MHB-based write-set pruning (§3.2, last paragraph) — shrinks `cf`;
//! * signature deduplication (§4) — skips same-signature COPs once racy;
//! * trace-order phase seeding (our solver's counterpart of a warm start).

use std::time::Duration;

use rvbench::micro::Runner;
use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads::{self, Workload};

fn workload() -> Workload {
    // Small enough that the unfiltered (no-quick-check) variant stays
    // benchable: without the §4 filter *every* conflicting pair reaches
    // the solver, which is exactly the cost the ablation demonstrates.
    let profile = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "xalan")
        .expect("xalan profile")
        .scaled(0.15);
    workloads::systems::generate(&profile)
}

fn bench_ablations(r: &mut Runner, w: &Workload) {
    let variants: Vec<(&str, DetectorConfig)> = vec![
        ("full", DetectorConfig::default()),
        (
            "no-quick-check",
            DetectorConfig {
                quick_check: false,
                ..Default::default()
            },
        ),
        (
            "no-write-prune",
            DetectorConfig {
                prune_write_sets: false,
                ..Default::default()
            },
        ),
        (
            "no-dedup",
            DetectorConfig {
                dedup_signatures: false,
                ..Default::default()
            },
        ),
        (
            "no-phase-hints",
            DetectorConfig {
                phase_hints: false,
                ..Default::default()
            },
        ),
        (
            "no-batching",
            DetectorConfig {
                batch_windows: false,
                ..Default::default()
            },
        ),
    ];
    r.sample_target(Duration::from_millis(100));
    for (name, cfg) in variants {
        let det = RaceDetector::with_config(cfg);
        r.bench(&format!("ablation/xalan-0.15x/{name}"), || {
            det.detect(&w.trace).n_races()
        });
    }
}

/// The ablations must not change *what* is detected, only how fast
/// (dedup changes multiplicity only; quick check is a pure filter for the
/// solver, which would reject the same pairs).
fn ablation_results_agree(w: &Workload) {
    let base = RaceDetector::new().detect(&w.trace).signatures();
    for cfg in [
        DetectorConfig {
            quick_check: false,
            ..Default::default()
        },
        DetectorConfig {
            prune_write_sets: false,
            ..Default::default()
        },
        DetectorConfig {
            phase_hints: false,
            ..Default::default()
        },
        DetectorConfig {
            batch_windows: false,
            ..Default::default()
        },
    ] {
        let got = RaceDetector::with_config(cfg).detect(&w.trace).signatures();
        assert_eq!(got, base, "ablation changed detected signatures");
    }
}

fn main() {
    let w = workload();
    ablation_results_agree(&w);
    let mut r = Runner::from_env("ablation");
    bench_ablations(&mut r, &w);
    r.finish();
}
