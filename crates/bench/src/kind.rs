//! Multi-class violation benchmark: the `BENCH_pr9.json` harness mode.
//!
//! Runs the `--kind` axis end to end: predictive deadlock detection on
//! lock-inversion workloads (with a gate-lock control that must be
//! *refuted*, not missed), atomicity detection on lost-update workloads,
//! and race detection over the extended event vocabulary (rwlock
//! read/write modes, channel send/recv links). Micro workloads small
//! enough for the brute-force maximal-causal-model oracle are arbitered
//! against it, and the committed document must show every arbitered
//! workload in agreement.
//!
//! ```sh
//! cargo run -p rvbench --release --bin kind_pipeline -- --out BENCH_pr9.json
//! ```
//!
//! # Document schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "pr9",
//!   "mode": "full",
//!   "jobs": 4,
//!   "oracle_checked": 5,
//!   "oracle_agreements": 5,
//!   "workloads": [
//!     {"name": "deadlock_micro", "kind": "deadlock", "events": 12,
//!      "expect_violations": true,
//!      "run": {"violations": 1, "candidates": 2, "sat": 1, "unsat": 1,
//!              "unknown": 0, "wall_time_us": 1234}}
//!   ]
//! }
//! ```
//!
//! Every workload's `unknown` must be zero (the micro traces are far under
//! any budget), `violations > 0` must match the workload's
//! `expect_violations` by construction, every control workload that
//! expects none must still show `unsat ≥ 1` (the candidate was refuted by
//! the solver, not missed by enumeration — except the race controls,
//! which may be screened before the solver), and `oracle_agreements`
//! must equal `oracle_checked` with at least two workloads arbitered.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rvcore::{
    oracle_atomicity, oracle_deadlocks, oracle_races, AtomicityDetector, DeadlockDetector,
    DetectorConfig, RaceDetector,
};
use rvsim::workloads::Workload;
use rvtrace::{parse_json, RaceSignature, ThreadId, TraceBuilder, ViewExt};

/// Version of the `BENCH_pr9.json` document. Bumped on any incompatible
/// change (key renames, section shape).
pub const KIND_BENCH_SCHEMA_VERSION: u64 = 1;

/// The suite tag stamped into every document this harness emits.
pub const KIND_BENCH_SUITE: &str = "pr9";

/// Detection knobs for a kind-bench run.
#[derive(Debug, Clone, Copy)]
pub struct KindBenchOptions {
    /// Per-candidate solver budget.
    pub solver_timeout: Duration,
    /// Worker threads for the race runs (the deadlock/atomicity passes
    /// are single-threaded by design).
    pub jobs: usize,
}

impl Default for KindBenchOptions {
    fn default() -> Self {
        KindBenchOptions {
            solver_timeout: Duration::from_secs(10),
            jobs: 4,
        }
    }
}

/// One benchmark entry: the workload, the violation class it exercises,
/// and what the analysis must conclude on it by construction.
#[derive(Debug)]
pub struct KindWorkload {
    /// The named trace.
    pub workload: Workload,
    /// The class the entry exercises: `race`, `deadlock` or `atomicity`.
    pub kind: &'static str,
    /// Whether the analysis must report at least one violation.
    pub expect_violations: bool,
    /// Whether the trace is small enough for the brute-force oracle and
    /// should be arbitered against it.
    pub oracle_checkable: bool,
}

/// Builds a lock-inversion workload: `inversions` independent pairs of
/// threads, each pair taking its own two locks in opposite orders — every
/// inversion is one predictable deadlock cycle.
pub fn deadlock_workload(name: &str, inversions: usize) -> Workload {
    assert!(inversions >= 1);
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    for k in 0..inversions {
        let la = b.new_lock(&format!("la{k}"));
        let lb = b.new_lock(&format!("lb{k}"));
        let t1 = b.fork(main);
        let t2 = b.fork(main);
        b.acquire(t1, la);
        b.acquire(t1, lb);
        b.release(t1, lb);
        b.release(t1, la);
        b.acquire(t2, lb);
        b.acquire(t2, la);
        b.release(t2, la);
        b.release(t2, lb);
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The gate-lock control: the same inversion as [`deadlock_workload`],
/// but both threads take a common gate lock around their nested pair —
/// the cycle candidate exists syntactically but no feasible reordering
/// reaches the circular wait. The analysis must *refute* it (`unsat ≥ 1`),
/// not fail to enumerate it.
pub fn gated_deadlock_workload(name: &str) -> Workload {
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let g = b.new_lock("g");
    let la = b.new_lock("la");
    let lb = b.new_lock("lb");
    let t1 = b.fork(main);
    let t2 = b.fork(main);
    for (t, (first, second)) in [(t1, (la, lb)), (t2, (lb, la))] {
        b.acquire(t, g);
        b.acquire(t, first);
        b.acquire(t, second);
        b.release(t, second);
        b.release(t, first);
        b.release(t, g);
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// Builds a lost-update workload: `counters` shared variables, each
/// updated by an unprotected read-modify-write pair on two threads —
/// every counter is at least one predictable atomicity violation.
pub fn atomicity_workload(name: &str, counters: usize) -> Workload {
    assert!(counters >= 1);
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    for k in 0..counters {
        let x = b.var(&format!("x{k}"));
        let t1 = b.fork(main);
        let t2 = b.fork(main);
        b.read(t1, x, 0);
        b.write(t1, x, 1);
        b.read(t2, x, 1);
        b.write(t2, x, 2);
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// Builds an rwlock workload: one writer updating `x` under the write
/// mode, `readers` reader threads loading it under the read mode. The
/// write/read-mode exclusion serializes every access pair — race-free by
/// construction.
pub fn rwlock_workload(name: &str, readers: usize) -> Workload {
    assert!(readers >= 1);
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let l = b.new_lock("l");
    let x = b.var("x");
    let ts: Vec<_> = (0..readers).map(|_| b.fork(main)).collect();
    b.acquire(main, l);
    b.write(main, x, 1);
    b.release(main, l);
    for t in ts {
        b.acquire_read(t, l);
        b.read(t, x, 1);
        b.release_read(t, l);
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The racy rwlock variant: the writer *also* uses the read mode, so two
/// read-mode critical sections overlap and the write/read pair races —
/// read mode is shared, and the model must say so.
pub fn rwlock_racy_workload(name: &str) -> Workload {
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let l = b.new_lock("l");
    let x = b.var("x");
    let t = b.fork(main);
    b.acquire_read(main, l);
    b.write(main, x, 1);
    b.release_read(main, l);
    b.acquire_read(t, l);
    b.read(t, x, 1);
    b.release_read(t, l);
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// Builds a channel workload: a producer writes `x_i` then sends on the
/// channel; the consumer receives (linked) then reads `x_i`. Every
/// cross-thread access pair is ordered by a message link — race-free by
/// construction.
pub fn channel_workload(name: &str, messages: usize) -> Workload {
    assert!(messages >= 1);
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let c = b.new_chan("c");
    let consumer = b.fork(main);
    for i in 0..messages {
        let x = b.var(&format!("x{i}"));
        b.write(main, x, i as i64);
        let s = b.send(main, c);
        b.recv(consumer, c, Some(s));
        b.read(consumer, x, i as i64);
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The smoke set: one micro workload per class plus the refutation and
/// vocabulary controls — seconds, for CI.
pub fn smoke_kind_workloads() -> Vec<KindWorkload> {
    vec![
        KindWorkload {
            workload: deadlock_workload("deadlock_micro", 1),
            kind: "deadlock",
            expect_violations: true,
            oracle_checkable: true,
        },
        KindWorkload {
            workload: gated_deadlock_workload("deadlock_gated"),
            kind: "deadlock",
            expect_violations: false,
            oracle_checkable: true,
        },
        KindWorkload {
            workload: atomicity_workload("atomicity_micro", 1),
            kind: "atomicity",
            expect_violations: true,
            oracle_checkable: true,
        },
        KindWorkload {
            workload: rwlock_workload("rwlock_guarded", 2),
            kind: "race",
            expect_violations: false,
            oracle_checkable: true,
        },
        KindWorkload {
            workload: rwlock_racy_workload("rwlock_shared_readers"),
            kind: "race",
            expect_violations: true,
            oracle_checkable: true,
        },
        KindWorkload {
            workload: channel_workload("channel_pipeline", 2),
            kind: "race",
            expect_violations: false,
            oracle_checkable: true,
        },
    ]
}

/// The full set: the smoke workloads plus multi-cycle and multi-counter
/// versions of each class.
pub fn full_kind_workloads() -> Vec<KindWorkload> {
    let mut all = smoke_kind_workloads();
    all.push(KindWorkload {
        workload: deadlock_workload("deadlock_many", 6),
        kind: "deadlock",
        expect_violations: true,
        oracle_checkable: false,
    });
    all.push(KindWorkload {
        workload: atomicity_workload("atomicity_many", 8),
        kind: "atomicity",
        expect_violations: true,
        oracle_checkable: false,
    });
    all.push(KindWorkload {
        workload: channel_workload("channel_long", 40),
        kind: "race",
        expect_violations: false,
        oracle_checkable: false,
    });
    all
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

struct KindRunCounts {
    violations: u64,
    candidates: u64,
    sat: u64,
    unsat: u64,
    unknown: u64,
    wall: Duration,
}

/// Runs one workload under its class's detector and, when the entry is
/// oracle-checkable, returns whether the detector agreed with the
/// brute-force oracle.
fn run_once(entry: &KindWorkload, opts: &KindBenchOptions) -> (KindRunCounts, Option<bool>) {
    let trace = &entry.workload.trace;
    let cfg = DetectorConfig {
        solver_timeout: opts.solver_timeout,
        parallelism: opts.jobs,
        ..Default::default()
    };
    let t0 = Instant::now();
    match entry.kind {
        "deadlock" => {
            let report = DeadlockDetector { config: cfg }.detect(trace);
            let wall = t0.elapsed();
            let agreed = entry.oracle_checkable.then(|| {
                let got: BTreeSet<_> = report.cycles.iter().map(|c| c.locks.clone()).collect();
                got == oracle_deadlocks(&trace.full_view(), 24)
            });
            (
                KindRunCounts {
                    violations: report.n_cycles() as u64,
                    candidates: report.candidates as u64,
                    sat: report.sat as u64,
                    unsat: report.unsat as u64,
                    unknown: report.unknown as u64,
                    wall,
                },
                agreed,
            )
        }
        "atomicity" => {
            let report = AtomicityDetector { config: cfg }.detect(trace);
            let wall = t0.elapsed();
            let agreed = entry.oracle_checkable.then(|| {
                let real = oracle_atomicity(&trace.full_view(), 24);
                (!report.violations.is_empty()) == (!real.is_empty())
            });
            (
                KindRunCounts {
                    violations: report.violations.len() as u64,
                    candidates: report.candidates as u64,
                    sat: report.sat as u64,
                    unsat: report.unsat as u64,
                    unknown: report.unknown as u64,
                    wall,
                },
                agreed,
            )
        }
        "race" => {
            let report = RaceDetector::with_config(cfg).detect(trace);
            let wall = t0.elapsed();
            let agreed = entry.oracle_checkable.then(|| {
                let real: BTreeSet<RaceSignature> = oracle_races(&trace.full_view(), 24)
                    .into_iter()
                    .map(|cop| RaceSignature::of_cop(trace, cop))
                    .collect();
                let got: BTreeSet<RaceSignature> = report.signatures().into_iter().collect();
                got == real
            });
            (
                KindRunCounts {
                    violations: report.n_races() as u64,
                    candidates: report.stats.pairs_considered as u64,
                    sat: report.stats.sat as u64,
                    unsat: report.stats.unsat as u64,
                    unknown: report.stats.undecided as u64,
                    wall,
                },
                agreed,
            )
        }
        other => unreachable!("unknown kind {other}"),
    }
}

/// Runs each workload under its class's detector and returns the
/// versioned document described in the module docs.
pub fn run_kind_pipeline(entries: &[KindWorkload], opts: &KindBenchOptions, mode: &str) -> String {
    let mut body = String::new();
    let mut oracle_checked = 0u64;
    let mut oracle_agreements = 0u64;
    for (i, entry) in entries.iter().enumerate() {
        let (run, agreed) = run_once(entry, opts);
        if let Some(agreed) = agreed {
            oracle_checked += 1;
            oracle_agreements += agreed as u64;
        }
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "\n    {{\"name\": \"{}\", \"kind\": \"{}\", \"events\": {}, \
             \"expect_violations\": {},\n     \"run\": {{\"violations\": {}, \
             \"candidates\": {}, \"sat\": {}, \"unsat\": {}, \"unknown\": {}, \
             \"wall_time_us\": {}}}}}",
            entry.workload.name,
            entry.kind,
            entry.workload.trace.len(),
            entry.expect_violations,
            run.violations,
            run.candidates,
            run.sat,
            run.unsat,
            run.unknown,
            us(run.wall),
        );
    }
    let mut out = String::with_capacity(body.len() + 256);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {KIND_BENCH_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"suite\": \"{KIND_BENCH_SUITE}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(out, "  \"oracle_checked\": {oracle_checked},");
    let _ = writeln!(out, "  \"oracle_agreements\": {oracle_agreements},");
    out.push_str("  \"workloads\": [");
    out.push_str(&body);
    out.push_str("\n  ]\n}\n");
    out
}

/// Integer fields each run sub-object must carry, all non-negative.
const RUN_INT_KEYS: [&str; 6] = [
    "violations",
    "candidates",
    "sat",
    "unsat",
    "unknown",
    "wall_time_us",
];

/// Validates a `BENCH_pr9.json` document: version/suite/mode tags, the
/// required run keys as non-negative integers, `unknown == 0` everywhere,
/// `violations > 0` matching each workload's `expect_violations`,
/// `unsat ≥ 1` on every deadlock/atomicity control that expects none
/// (refuted, not missed), full oracle agreement with at least two
/// workloads arbitered, and at least one workload per class. Returns a
/// description of the first violation.
pub fn validate_kind_bench_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .and_then(|v| v.as_int())
        .map_err(|e| e.to_string())?;
    if version != KIND_BENCH_SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version is {version}, expected {KIND_BENCH_SCHEMA_VERSION}"
        ));
    }
    let suite = doc
        .field("suite")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if suite != KIND_BENCH_SUITE {
        return Err(format!("suite is `{suite}`, expected `{KIND_BENCH_SUITE}`"));
    }
    let mode = doc
        .field("mode")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode is `{mode}`, expected `smoke` or `full`"));
    }
    let jobs = doc
        .field("jobs")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("jobs: {e}"))?;
    if jobs <= 0 {
        return Err(format!("jobs must be positive, got {jobs}"));
    }
    let checked = doc
        .field("oracle_checked")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("oracle_checked: {e}"))?;
    let agreements = doc
        .field("oracle_agreements")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("oracle_agreements: {e}"))?;
    if checked < 2 {
        return Err(format!(
            "only {checked} workload(s) were oracle-arbitered; at least 2 required"
        ));
    }
    if agreements != checked {
        return Err(format!(
            "oracle_agreements is {agreements} of {checked}: the detector disagreed \
             with the brute-force oracle"
        ));
    }
    let entries = doc
        .field("workloads")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .map_err(|e| format!("workloads: {e}"))?;
    if entries.is_empty() {
        return Err("workloads array is empty".into());
    }
    let mut kinds_seen = BTreeSet::new();
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("workloads[{i}].name: {e}"))?;
        let kind = entry
            .field("kind")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("workload `{name}`: kind: {e}"))?;
        if !["race", "deadlock", "atomicity"].contains(&kind.as_str()) {
            return Err(format!("workload `{name}`: unknown kind `{kind}`"));
        }
        kinds_seen.insert(kind.clone());
        let events = entry
            .field("events")
            .and_then(|v| v.as_int())
            .map_err(|e| format!("workload `{name}`: events: {e}"))?;
        if events < 0 {
            return Err(format!("workload `{name}`: events is negative ({events})"));
        }
        let expect = entry
            .field("expect_violations")
            .and_then(|v| v.as_bool())
            .map_err(|e| format!("workload `{name}`: expect_violations: {e}"))?;
        let run = entry
            .field("run")
            .map_err(|e| format!("workload `{name}`: run: {e}"))?;
        let mut vals = [0i64; 6];
        for (k, key) in RUN_INT_KEYS.into_iter().enumerate() {
            let v = run
                .field(key)
                .and_then(|v| v.as_int())
                .map_err(|e| format!("workload `{name}`: run.{key}: {e}"))?;
            if v < 0 {
                return Err(format!("workload `{name}`: run.{key} is negative ({v})"));
            }
            vals[k] = v;
        }
        let [violations, _candidates, _sat, unsat, unknown, _wall] = vals;
        if unknown != 0 {
            return Err(format!(
                "workload `{name}`: {unknown} unknown verdict(s) — the micro \
                 workloads must decide every candidate"
            ));
        }
        if (violations > 0) != expect {
            return Err(format!(
                "workload `{name}`: expected violations={expect}, got {violations}"
            ));
        }
        if !expect && kind != "race" && unsat < 1 {
            return Err(format!(
                "workload `{name}`: the control expects no violations but shows no \
                 refutation (unsat=0) — the candidate was missed, not refuted"
            ));
        }
    }
    for required in ["race", "deadlock", "atomicity"] {
        if !kinds_seen.contains(required) {
            return Err(format!("no `{required}` workload in the document"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let d = deadlock_workload("d", 2);
        assert_eq!(d.trace.n_locks(), 4);
        let g = gated_deadlock_workload("g");
        assert_eq!(g.trace.n_locks(), 3);
        let c = channel_workload("c", 3);
        assert_eq!(c.trace.n_chans(), 1);
        assert!(rvtrace::check_consistency(&d.trace).is_empty());
        assert!(rvtrace::check_consistency(&g.trace).is_empty());
        assert!(rvtrace::check_consistency(&c.trace).is_empty());
        assert!(rvtrace::check_consistency(&rwlock_workload("r", 2).trace).is_empty());
        assert!(rvtrace::check_consistency(&rwlock_racy_workload("rr").trace).is_empty());
        assert!(rvtrace::check_consistency(&atomicity_workload("a", 2).trace).is_empty());
    }

    #[test]
    fn smoke_kind_pipeline_emits_valid_document() {
        let json = run_kind_pipeline(
            &smoke_kind_workloads(),
            &KindBenchOptions::default(),
            "smoke",
        );
        validate_kind_bench_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"suite\": \"pr9\""), "{json}");
        assert!(json.contains("\"name\": \"deadlock_micro\""), "{json}");
        assert!(json.contains("\"name\": \"deadlock_gated\""), "{json}");
        assert!(json.contains("\"name\": \"channel_pipeline\""), "{json}");
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let json = run_kind_pipeline(
            &smoke_kind_workloads(),
            &KindBenchOptions::default(),
            "smoke",
        );
        let wrong_version = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate_kind_bench_json(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let wrong_suite = json.replace("\"suite\": \"pr9\"", "\"suite\": \"pr8\"");
        assert!(validate_kind_bench_json(&wrong_suite)
            .unwrap_err()
            .contains("suite"));
        let disagreeing = json.replace("\"oracle_agreements\": 6", "\"oracle_agreements\": 3");
        assert!(validate_kind_bench_json(&disagreeing)
            .unwrap_err()
            .contains("oracle"));
        assert!(validate_kind_bench_json("not json").is_err());
        assert!(validate_kind_bench_json("{}").is_err());
    }
}
